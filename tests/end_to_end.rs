//! Cross-crate integration tests: the full pipeline from model zoo through
//! rewrite engine, cost model, baselines and the X-RLflow system.

use xrlflow::core::{XrlflowConfig, XrlflowSystem};
use xrlflow::cost::{discrepancy, CostModel, DeviceProfile, InferenceSimulator};
use xrlflow::egraph::{TensatConfig, TensatOptimizer};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::rewrite::RuleSet;
use xrlflow::taso::{BacktrackingOptimizer, GreedyOptimizer, SearchConfig};

fn profile() -> DeviceProfile {
    DeviceProfile::gtx1080()
}

#[test]
fn every_evaluated_model_has_rewrite_opportunities() {
    let rules = RuleSet::standard();
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let candidates = rules.generate_candidates(&graph, 64);
        assert!(!candidates.is_empty(), "{kind} has no rewrite candidates");
        for c in &candidates {
            assert!(c.graph(&graph).validate().is_ok(), "{kind}: candidate from {} invalid", c.rule_name);
        }
    }
}

#[test]
fn taso_improves_cost_model_and_preserves_validity_on_all_models() {
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let optimizer = GreedyOptimizer::new(
            RuleSet::standard(),
            CostModel::new(profile()),
            SearchConfig { budget: 20, max_candidates: 32, alpha: 1.05 },
        );
        let result = optimizer.optimize(&graph);
        assert!(result.graph.validate().is_ok(), "{kind}: TASO output invalid");
        assert!(
            result.final_cost_ms <= result.initial_cost_ms + 1e-9,
            "{kind}: TASO regressed the cost model"
        );
    }
}

#[test]
fn cost_model_discrepancy_motivation_holds() {
    // Table 1's motivation: the cost model and the end-to-end latency differ.
    let cm = CostModel::new(profile());
    let sim = InferenceSimulator::new(profile());
    let mut any_discrepancy = false;
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::ResNext50] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let d = discrepancy(kind.name(), &graph, &cm, &sim);
        if d.diff_percent() > 3.0 {
            any_discrepancy = true;
        }
    }
    assert!(any_discrepancy, "expected a visible cost-model / E2E discrepancy");
}

#[test]
fn tensat_and_taso_both_beat_the_unoptimised_graph_on_squeezenet() {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let sim = InferenceSimulator::new(profile());
    let before = sim.measure_ms(&graph, 0);

    let taso = BacktrackingOptimizer::new(
        RuleSet::standard(),
        CostModel::new(profile()),
        SearchConfig { budget: 40, max_candidates: 32, alpha: 1.05 },
    );
    let taso_after = sim.measure_ms(&taso.optimize(&graph).graph, 0);

    let tensat = TensatOptimizer::new(TensatConfig::default(), profile());
    let tensat_after = sim.measure_ms(&tensat.optimize(&graph).unwrap().graph, 0);

    assert!(taso_after < before, "TASO should reduce simulated latency");
    assert!(tensat_after < before, "Tensat should reduce simulated latency");
}

#[test]
fn xrlflow_full_pipeline_on_squeezenet() {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
    let (report, result) = system.train_and_optimize(&graph, 2);
    assert_eq!(report.episodes.len(), 2);
    assert!(!report.updates.is_empty());
    assert!(result.graph.validate().is_ok());
    assert!(result.final_latency_ms > 0.0);
    // The optimised graph must still compute the same outputs structurally:
    // same number of graph outputs with the same shapes.
    assert_eq!(result.graph.outputs().len(), graph.outputs().len());
    for (a, b) in result.graph.outputs().iter().zip(graph.outputs()) {
        assert_eq!(
            result.graph.tensor_shape(*a).unwrap(),
            graph.tensor_shape(*b).unwrap(),
            "output shape changed during optimisation"
        );
    }
}

#[test]
fn rewrites_preserve_output_shapes_along_random_trajectories() {
    // Property-style integration check: follow arbitrary candidate choices
    // and verify the graph stays valid with unchanged output shapes.
    let rules = RuleSet::standard();
    for &kind in &[ModelKind::SqueezeNet, ModelKind::Bert] {
        let original = build_model(kind, ModelScale::Bench).unwrap();
        let original_shapes: Vec<_> =
            original.outputs().iter().map(|r| original.tensor_shape(*r).unwrap().clone()).collect();
        let mut current = original.clone();
        for step in 0..6 {
            let candidates = rules.generate_candidates(&current, 32);
            if candidates.is_empty() {
                break;
            }
            let pick = (step * 13 + 5) % candidates.len();
            current = candidates[pick].materialize(&current).unwrap();
            assert!(current.validate().is_ok(), "{kind}: invalid graph at step {step}");
            let shapes: Vec<_> =
                current.outputs().iter().map(|r| current.tensor_shape(*r).unwrap().clone()).collect();
            assert_eq!(shapes, original_shapes, "{kind}: output shapes changed at step {step}");
        }
    }
}

#[test]
fn curriculum_generalisation_pipeline_spans_the_model_zoo() {
    // The multi-model workload end to end at the umbrella-crate level: one
    // shared agent trains across a curriculum of zoo models (parallel
    // collection, per-model advantage normalisation), is evaluated greedily
    // on a held-out model it never saw, and every produced graph stays
    // valid.
    use xrlflow::core::XrlflowAgent;
    use xrlflow::rollout::{evaluate_curriculum, Curriculum, ParallelTrainer};

    let config = XrlflowConfig::smoke_test();
    let full = Curriculum::from_model_zoo(
        &[ModelKind::SqueezeNet, ModelKind::ResNet18, ModelKind::Bert],
        ModelScale::Bench,
        profile(),
        config.env.clone(),
    )
    .unwrap();
    let (train, held_out) = full.hold_out(2);
    assert_eq!(held_out.name, "BERT");

    let mut agent = XrlflowAgent::new(&config, 5);
    let mut trainer = ParallelTrainer::new(config.clone(), 5);
    let report = trainer.train_curriculum(&mut agent, &train, 2).unwrap();
    assert_eq!(report.episodes.len(), train.len() * 2);
    assert_eq!(report.per_model.len(), train.len());
    for breakdown in &report.per_model {
        assert_eq!(breakdown.episodes, 2);
        assert!(breakdown.mean_reward.is_finite());
    }

    let evals = evaluate_curriculum(&agent, &full, 0);
    assert_eq!(evals.len(), full.len());
    let names: Vec<&str> = evals.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"BERT"), "held-out model must be evaluated");
    for eval in &evals {
        assert!(eval.stats.final_latency_ms > 0.0, "{}: no latency measured", eval.name);
        assert!(eval.speedup_percent().is_finite(), "{}: bad speedup", eval.name);
    }
}
