//! Property-based tests (proptest) over core data structures and invariants.

use proptest::prelude::*;
use xrlflow::cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow::graph::{Graph, OpAttributes, OpKind, TensorShape};
use xrlflow::rewrite::RuleSet;
use xrlflow::rl::{gae, MaskedCategorical};
use xrlflow::tensor::{Tensor, XorShiftRng};

/// Builds a random MLP-style chain graph from a dimension list.
fn chain_graph(dims: &[usize], relu_mask: &[bool]) -> Graph {
    let mut g = Graph::new();
    let mut prev = g.add_input(TensorShape::new(vec![1, dims[0]])).into();
    for (i, pair) in dims.windows(2).enumerate() {
        let w = g.add_weight(TensorShape::new(vec![pair[0], pair[1]]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![prev, w.into()]).unwrap();
        prev = if relu_mask.get(i).copied().unwrap_or(false) {
            g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap().into()
        } else {
            mm.into()
        };
    }
    g.mark_output(prev);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_matches_reference(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let mut rng = XorShiftRng::new(seed);
        let a = Tensor::from_vec((0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[k, n]);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.get(&[i, p]) * b.get(&[p, j]);
                }
                prop_assert!((c.get(&[i, j]) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transpose_is_involutive(m in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let mut rng = XorShiftRng::new(seed);
        let t = Tensor::from_vec((0..m * n).map(|_| rng.uniform(-5.0, 5.0)).collect(), &[m, n]);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn broadcast_is_commutative(a in proptest::collection::vec(1usize..5, 1..4),
                                b in proptest::collection::vec(1usize..5, 1..4)) {
        let sa = TensorShape::new(a);
        let sb = TensorShape::new(b);
        prop_assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa));
    }

    #[test]
    fn chain_graphs_always_validate_and_candidates_stay_valid(
        dims in proptest::collection::vec(1usize..64, 2..6),
        relus in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let g = chain_graph(&dims, &relus);
        prop_assert!(g.validate().is_ok());
        let rules = RuleSet::standard();
        for c in rules.generate_candidates(&g, 16) {
            prop_assert!(c.graph.validate().is_ok());
            // Rewrites never change the graph output shape.
            prop_assert_eq!(
                c.graph.tensor_shape(c.graph.outputs()[0]).unwrap(),
                g.tensor_shape(g.outputs()[0]).unwrap()
            );
        }
    }

    #[test]
    fn cost_model_and_simulator_are_positive_and_finite(
        dims in proptest::collection::vec(1usize..64, 2..6),
        relus in proptest::collection::vec(any::<bool>(), 5),
    ) {
        let g = chain_graph(&dims, &relus);
        let cm = CostModel::new(DeviceProfile::gtx1080());
        let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
        let cost = cm.graph_cost_ms(&g);
        let e2e = sim.measure_ms(&g, 0);
        prop_assert!(cost >= 0.0 && cost.is_finite());
        prop_assert!(e2e > 0.0 && e2e.is_finite());
        // Launch overhead means E2E is never cheaper than the pure compute estimate.
        prop_assert!(e2e >= cost * 0.5);
    }

    #[test]
    fn masked_categorical_never_samples_invalid(
        logits in proptest::collection::vec(-5.0f32..5.0, 2..10),
        seed in 0u64..500,
    ) {
        let mut mask = vec![true; logits.len()];
        // Invalidate every other action, keeping at least one valid.
        for i in (1..mask.len()).step_by(2) {
            mask[i] = false;
        }
        let dist = MaskedCategorical::new(logits, mask.clone());
        let mut rng = XorShiftRng::new(seed);
        for _ in 0..50 {
            prop_assert!(mask[dist.sample(&mut rng)]);
        }
        let sum: f32 = dist.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gae_is_zero_for_perfect_value_function(values in proptest::collection::vec(0.0f32..1.0, 1..20)) {
        // If rewards are exactly the TD-consistent values with gamma = 0, the
        // advantage is zero everywhere.
        let rewards = values.clone();
        let dones = vec![true; values.len()];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.0, 0.95);
        for a in adv {
            prop_assert!(a.abs() < 1e-5);
        }
    }

    #[test]
    fn graph_canonical_hash_is_stable_under_clone_and_compaction(
        dims in proptest::collection::vec(1usize..32, 2..6),
    ) {
        let g = chain_graph(&dims, &[true, true, true, true, true]);
        let mut clone = g.clone();
        prop_assert_eq!(g.canonical_hash(), clone.canonical_hash());
        clone.compact();
        prop_assert_eq!(g.canonical_hash(), clone.canonical_hash());
    }
}
