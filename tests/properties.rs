//! Property-style tests over core data structures and invariants.
//!
//! The container has no access to crates.io, so instead of `proptest` these
//! are deterministic sweeps: every test draws its cases from a seeded
//! [`XorShiftRng`] (or enumerates a structured case grid), which keeps the
//! coverage style of property testing while staying dependency-free and
//! reproducible.

use xrlflow::cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::graph::{Graph, GraphPatch, OpAttributes, OpKind, PatchRef, TensorShape};
use xrlflow::rewrite::{rules::standard_rules, RuleSet};
use xrlflow::rl::{gae, MaskedCategorical};
use xrlflow::tensor::{Tensor, XorShiftRng};

/// Builds a random MLP-style chain graph from a dimension list.
fn chain_graph(dims: &[usize], relu_mask: &[bool]) -> Graph {
    let mut g = Graph::new();
    let mut prev = g.add_input(TensorShape::new(vec![1, dims[0]])).into();
    for (i, pair) in dims.windows(2).enumerate() {
        let w = g.add_weight(TensorShape::new(vec![pair[0], pair[1]]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![prev, w.into()]).unwrap();
        prev = if relu_mask.get(i).copied().unwrap_or(false) {
            g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap().into()
        } else {
            mm.into()
        };
    }
    g.mark_output(prev);
    g
}

/// Draws a random dimension list / relu mask pair.
fn random_chain(rng: &mut XorShiftRng) -> (Vec<usize>, Vec<bool>) {
    let layers = 2 + (rng.uniform(0.0, 1.0) * 4.0) as usize;
    let dims: Vec<usize> = (0..layers).map(|_| 1 + (rng.uniform(0.0, 1.0) * 63.0) as usize).collect();
    let relus: Vec<bool> = (0..5).map(|_| rng.uniform(0.0, 1.0) > 0.5).collect();
    (dims, relus)
}

#[test]
fn matmul_matches_reference() {
    for seed in 0..32u64 {
        let mut rng = XorShiftRng::new(seed);
        let m = 1 + (rng.uniform(0.0, 1.0) * 5.0) as usize;
        let k = 1 + (rng.uniform(0.0, 1.0) * 5.0) as usize;
        let n = 1 + (rng.uniform(0.0, 1.0) * 5.0) as usize;
        let a = Tensor::from_vec((0..m * k).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[m, k]);
        let b = Tensor::from_vec((0..k * n).map(|_| rng.uniform(-1.0, 1.0)).collect(), &[k, n]);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.get(&[i, p]) * b.get(&[p, j]);
                }
                assert!((c.get(&[i, j]) - acc).abs() < 1e-4, "seed {seed}: mismatch at ({i},{j})");
            }
        }
    }
}

#[test]
fn transpose_is_involutive() {
    for seed in 0..32u64 {
        let mut rng = XorShiftRng::new(seed);
        let m = 1 + (rng.uniform(0.0, 1.0) * 7.0) as usize;
        let n = 1 + (rng.uniform(0.0, 1.0) * 7.0) as usize;
        let t = Tensor::from_vec((0..m * n).map(|_| rng.uniform(-5.0, 5.0)).collect(), &[m, n]);
        assert_eq!(t.transpose().transpose(), t);
    }
}

#[test]
fn broadcast_is_commutative() {
    let mut rng = XorShiftRng::new(11);
    for _ in 0..64 {
        let rank_a = 1 + (rng.uniform(0.0, 1.0) * 3.0) as usize;
        let rank_b = 1 + (rng.uniform(0.0, 1.0) * 3.0) as usize;
        let a: Vec<usize> = (0..rank_a).map(|_| 1 + (rng.uniform(0.0, 1.0) * 4.0) as usize).collect();
        let b: Vec<usize> = (0..rank_b).map(|_| 1 + (rng.uniform(0.0, 1.0) * 4.0) as usize).collect();
        let sa = TensorShape::new(a);
        let sb = TensorShape::new(b);
        assert_eq!(sa.broadcast(&sb), sb.broadcast(&sa), "{sa} vs {sb}");
    }
}

#[test]
fn chain_graphs_always_validate_and_candidates_stay_valid() {
    let rules = RuleSet::standard();
    for seed in 0..16u64 {
        let mut rng = XorShiftRng::new(seed);
        let (dims, relus) = random_chain(&mut rng);
        let g = chain_graph(&dims, &relus);
        assert!(g.validate().is_ok(), "seed {seed}: chain graph invalid");
        for c in rules.generate_candidates(&g, 16) {
            let out = c.graph(&g);
            assert!(out.validate().is_ok(), "seed {seed}: candidate from {} invalid", c.rule_name);
            // Rewrites never change the graph output shape.
            assert_eq!(
                out.tensor_shape(out.outputs()[0]).unwrap(),
                g.tensor_shape(g.outputs()[0]).unwrap(),
                "seed {seed}: output shape changed by {}",
                c.rule_name
            );
        }
    }
}

/// Replays a patch through the pre-patch eager mutation path — the public
/// `Graph` API a rule used to call directly (`add_node` re-running shape
/// inference, `replace_all_uses`, `eliminate_dead_nodes`) — giving an
/// independent reference semantics for `Graph::apply_patch`, which instead
/// splices pre-inferred nodes without re-running inference.
fn eager_reference_apply(base: &Graph, patch: &GraphPatch) -> Graph {
    let mut g = base.clone();
    let mut new_ids = Vec::new();
    for pn in patch.added_nodes() {
        if pn.op == OpKind::Constant && pn.inputs.is_empty() {
            new_ids.push(g.add_constant(pn.outputs[0].clone()));
            continue;
        }
        let inputs =
            pn.inputs.iter().map(|r| r.resolve(&new_ids).expect("patch refs resolve in order")).collect();
        let id = g
            .add_node(pn.op, pn.attrs.clone(), inputs)
            .expect("eager replay re-infers the same shapes the builder inferred");
        new_ids.push(id);
    }
    for (from, to) in patch.rewires() {
        let to = to.resolve(&new_ids).expect("rewire target resolves");
        g.replace_all_uses(*from, to).expect("builder checked rewire shapes");
    }
    g.eliminate_dead_nodes();
    g
}

#[test]
fn apply_patch_matches_eager_clone_path_for_every_rule() {
    // For every rule and every application site on the evaluated workloads,
    // materialising the patch must produce a graph with the same canonical
    // hash as the eager clone-and-mutate path (and identical pre-inferred
    // shapes, since the replay re-runs shape inference from scratch).
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let g = build_model(kind, ModelScale::Bench).unwrap();
        let mut sites_checked = 0usize;
        for rule in standard_rules() {
            for site in rule.find_matches(&g) {
                let Ok(patch) = rule.build_patch(&g, &site) else { continue };
                let patched = g.apply_patch(&patch).expect("patch applies to its base");
                let reference = eager_reference_apply(&g, &patch);
                assert_eq!(
                    patched.canonical_hash(),
                    reference.canonical_hash(),
                    "{kind}: {} diverges from the eager path",
                    rule.name()
                );
                assert!(patched.validate().is_ok(), "{kind}: {} patch output invalid", rule.name());
                sites_checked += 1;
            }
        }
        assert!(sites_checked >= 5, "{kind}: expected several rule application sites, got {sites_checked}");
    }
}

#[test]
fn patch_structural_hash_deduplicates_consistently() {
    // Identical patches hash identically; distinct sites hash distinctly
    // (within one base graph) — the invariant candidate deduplication uses.
    let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    for rule in standard_rules() {
        let sites = rule.find_matches(&g);
        let mut hashes = std::collections::HashSet::new();
        for site in &sites {
            let Ok(patch) = rule.build_patch(&g, site) else { continue };
            let rebuilt = rule.build_patch(&g, site).unwrap();
            assert_eq!(
                patch.structural_hash(),
                rebuilt.structural_hash(),
                "{} not deterministic",
                rule.name()
            );
            hashes.insert(patch.structural_hash());
        }
        if sites.len() > 1 {
            assert!(hashes.len() > 1, "{}: all sites collapsed to one patch hash", rule.name());
        }
    }
}

#[test]
fn cost_model_and_simulator_are_positive_and_finite() {
    let cm = CostModel::new(DeviceProfile::gtx1080());
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
    for seed in 100..116u64 {
        let mut rng = XorShiftRng::new(seed);
        let (dims, relus) = random_chain(&mut rng);
        let g = chain_graph(&dims, &relus);
        let cost = cm.graph_cost_ms(&g);
        let e2e = sim.measure_ms(&g, 0);
        assert!(cost >= 0.0 && cost.is_finite(), "seed {seed}");
        assert!(e2e > 0.0 && e2e.is_finite(), "seed {seed}");
        // Launch overhead means E2E is never cheaper than the pure compute estimate.
        assert!(e2e >= cost * 0.5, "seed {seed}: e2e {e2e} vs cost {cost}");
    }
}

#[test]
fn masked_categorical_never_samples_invalid() {
    for seed in 0..24u64 {
        let mut rng = XorShiftRng::new(seed);
        let n = 2 + (seed as usize % 8);
        let logits: Vec<f32> = (0..n).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let mut mask = vec![true; n];
        // Invalidate every other action, keeping at least one valid.
        for i in (1..mask.len()).step_by(2) {
            mask[i] = false;
        }
        let dist = MaskedCategorical::new(logits, mask.clone());
        for _ in 0..50 {
            assert!(mask[dist.sample(&mut rng)], "seed {seed}: sampled an invalid action");
        }
        let sum: f32 = dist.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "seed {seed}");
    }
}

#[test]
fn gae_is_zero_for_perfect_value_function() {
    // If rewards are exactly the TD-consistent values with gamma = 0, the
    // advantage is zero everywhere.
    for seed in 0..16u64 {
        let mut rng = XorShiftRng::new(seed);
        let len = 1 + (seed as usize % 19);
        let values: Vec<f32> = (0..len).map(|_| rng.uniform(0.0, 1.0)).collect();
        let rewards = values.clone();
        let dones = vec![true; values.len()];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.0, 0.95);
        for a in adv {
            assert!(a.abs() < 1e-5, "seed {seed}");
        }
    }
}

#[test]
fn graph_canonical_hash_is_stable_under_clone_and_compaction() {
    for seed in 50..66u64 {
        let mut rng = XorShiftRng::new(seed);
        let (dims, _) = random_chain(&mut rng);
        let g = chain_graph(&dims, &[true, true, true, true, true]);
        let mut clone = g.clone();
        assert_eq!(g.canonical_hash(), clone.canonical_hash());
        clone.compact();
        assert_eq!(g.canonical_hash(), clone.canonical_hash());
    }
}

#[test]
fn patch_refs_roundtrip_and_noop_detection() {
    let g = chain_graph(&[8, 8], &[true]);
    let outputs = g.outputs()[0];
    // A rewire of a tensor onto itself is detectably a no-op.
    let mut b = xrlflow::graph::PatchBuilder::new(&g);
    b.replace_all_uses(outputs, PatchRef::Base(outputs)).unwrap();
    assert!(b.finish().is_noop());
}
