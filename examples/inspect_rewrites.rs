//! Explores the substitution engine directly: lists the candidates available
//! on a BERT attention block and shows how the cost model and the end-to-end
//! simulator rank them differently (the paper's core motivation).
//!
//! Run with: `cargo run --release --example inspect_rewrites`

use xrlflow::cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::rewrite::RuleSet;

fn main() {
    let graph = build_model(ModelKind::Bert, ModelScale::Bench).expect("model builds");
    let rules = RuleSet::standard();
    let cm = CostModel::new(DeviceProfile::gtx1080());
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());

    let base_cost = cm.graph_cost_ms(&graph);
    let base_e2e = sim.measure_ms(&graph, 0);
    println!("BERT: cost-model {base_cost:.3} ms, end-to-end {base_e2e:.3} ms");
    println!("{} rewrite rules active\n", rules.len());

    let candidates = rules.generate_candidates(&graph, 64);
    println!("{} one-step candidates; per-candidate effect:", candidates.len());
    println!("{:<28} {:>12} {:>12}", "rule", "Δcost (ms)", "ΔE2E (ms)");
    for c in candidates.iter().take(20) {
        let transformed = c.graph(&graph);
        let d_cost = cm.graph_cost_ms(&transformed) - base_cost;
        let d_e2e = sim.measure_ms(&transformed, 0) - base_e2e;
        println!("{:<28} {:>12.4} {:>12.4}", c.rule_name, d_cost, d_e2e);
    }
    println!("\nNote how some candidates look neutral to the cost model but improve (or hurt)");
    println!("the end-to-end latency — the discrepancy X-RLflow exploits via its reward signal.");
}
