//! Optimisation-as-a-service walkthrough: stand up an `OptimizeService`
//! from a policy snapshot, submit graphs as JSON (the wire format a network
//! front end would receive), watch repeat requests hit the result cache,
//! then persist the cache and prove a "restarted" service stays warm.
//!
//! Run with: `cargo run --release --example optimize_service`
//!
//! Knobs (all optional):
//! * `XRLFLOW_SERVICE_EPISODES=N` — training episodes before the policy is
//!   snapshotted (default 2; 0 serves an untrained policy).

use xrlflow::core::{XrlflowConfig, XrlflowSystem};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::serve::OptimizeService;
use xrlflow::XrlflowError;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), XrlflowError> {
    // 1. Produce a policy snapshot. In production this comes from a long
    //    curriculum run's checkpoint; a couple of episodes keep the example
    //    quick while exercising the same train -> snapshot -> serve path.
    let config = XrlflowConfig::builder()
        .training_episodes(env_usize("XRLFLOW_SERVICE_EPISODES", 2).max(1))
        .build()?;
    let mut system = XrlflowSystem::new(config.clone(), 42);
    let train_graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench)?;
    system.train_on(&train_graph, config.training_episodes);
    let snapshot = system.agent().snapshot();

    // 2. Stand the service up on the frozen snapshot. The replica is
    //    read-only: serving never mutates the policy.
    let service = OptimizeService::from_snapshot(&config, &snapshot)?;
    println!("service up: {} GAT layers, heads {:?}\n", config.encoder.num_gat_layers, config.head_dims);

    // 3. Clients ship graphs as JSON. The importer fully validates every
    //    document — malformed input is a typed error, never a panic.
    let err = service.optimize_json("{\"format\": \"not-a-graph\"}").unwrap_err();
    println!("malformed request rejected: {err}\n");

    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let request_body = build_model(kind, ModelScale::Bench)?.to_json();
        let response = service.optimize_json(&request_body)?;
        println!(
            "{:<22} {:>7.3} ms -> {:>7.3} ms  ({:+.1}%, {} substitutions, cache_hit={})",
            kind.name(),
            response.initial_latency_ms,
            response.final_latency_ms,
            response.speedup_percent(),
            response.steps,
            response.cache_hit,
        );

        // The same graph again — structurally identical, so the canonical
        // hash matches and the answer comes from the cache.
        let again = service.optimize_json(&request_body)?;
        assert!(again.cache_hit);
        println!("{:<22} repeat request answered from cache", kind.name());
    }
    let stats = service.stats();
    println!(
        "\n{} requests, {} cache hits, {} policy episodes",
        stats.requests, stats.cache_hits, stats.policy_invocations
    );

    // 4. Persist the cache and reload it into a fresh service instance —
    //    the restart story: no policy episode is spent re-answering graphs
    //    the old process already optimised.
    let cache_path = std::env::temp_dir().join("xrlflow-optimize-service-cache.json");
    service.save_cache(&cache_path)?;
    let restarted = OptimizeService::from_snapshot(&config, &snapshot)?;
    restarted.load_cache(&cache_path)?;
    std::fs::remove_file(&cache_path).ok();

    let replay = restarted.optimize(&build_model(ModelKind::Bert, ModelScale::Bench)?)?;
    assert!(replay.cache_hit);
    assert_eq!(restarted.stats().policy_invocations, 0);
    println!(
        "restarted service answered BERT from the persisted cache ({} entries) without the policy",
        restarted.cache_len()
    );
    Ok(())
}
