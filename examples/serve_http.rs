//! The serving deployment end to end, over a real socket: bind the HTTP
//! front end on an ephemeral port, drive it with the bundled client —
//! optimise, hit the cache, read `/metrics`, hot-swap a checkpoint — and
//! leave the server up for manual poking if asked.
//!
//! Run with: `cargo run --release --example serve_http`
//!
//! Knobs (all optional):
//! * `XRLFLOW_HTTP_ADDR=host:port` — bind address (default `127.0.0.1:0`,
//!   an ephemeral port printed at startup).
//! * `XRLFLOW_HTTP_HOLD_SECS=N` — keep serving for N seconds after the
//!   scripted walkthrough so you can curl it yourself.
//! * `XRLFLOW_CACHE_MAX_ENTRIES` / `XRLFLOW_CACHE_MAX_BYTES` — result-cache
//!   budgets (see docs/OPERATIONS.md).
//! * `XRLFLOW_HTTP_MAX_BODY_BYTES` / `XRLFLOW_HTTP_MAX_HEADER_BYTES` /
//!   `XRLFLOW_HTTP_IO_TIMEOUT_MS` — HTTP boundary bounds.

use std::sync::Arc;

use xrlflow::core::{XrlflowAgent, XrlflowConfig};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::graph::JsonValue;
use xrlflow::serve::{http_call, CacheConfig, OptimizeServer, OptimizeService, ServerConfig};
use xrlflow::XrlflowError;

fn main() -> Result<(), XrlflowError> {
    // 1. A service on a frozen policy replica, budgets from the environment.
    let config = XrlflowConfig::smoke_test();
    let snapshot = XrlflowAgent::new(&config, 42).snapshot();
    let service = Arc::new(OptimizeService::from_snapshot(&config, &snapshot)?);
    service.set_cache_config(CacheConfig::from_env()?);

    // 2. On the network. Port 0 asks the OS for an ephemeral port; the real
    //    address is printed so scripts (and the serve-smoke CI job) can
    //    parse it.
    let bind_addr = std::env::var("XRLFLOW_HTTP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let server = OptimizeServer::bind_with_config(service, &bind_addr[..], ServerConfig::from_env()?)?;
    let addr = server.local_addr();
    println!("serving on http://{addr}");
    println!("  POST /optimize     graph JSON in, optimised graph out");
    println!("  GET  /metrics      telemetry snapshot");
    println!("  GET  /healthz      liveness probe");
    println!("  POST /admin/swap   hot checkpoint swap (XRLFSNAP bytes)\n");

    // 3. The scripted walkthrough, via the bundled one-shot client.
    let health = http_call(addr, "GET", "/healthz", &[])?;
    assert_eq!(health.status, 200);
    println!("GET /healthz       -> {} {}", health.status, health.body);

    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench)?;
    let body = graph.to_json();
    let field = |reply: &str, name: &str| {
        JsonValue::parse(reply).ok().and_then(|v| v.get(name).and_then(JsonValue::as_f64)).unwrap_or(f64::NAN)
    };
    let first = http_call(addr, "POST", "/optimize", body.as_bytes())?;
    assert_eq!(first.status, 200);
    println!(
        "POST /optimize     -> {} ({:.3} ms -> {:.3} ms, cold)",
        first.status,
        field(&first.body, "initial_latency_ms"),
        field(&first.body, "final_latency_ms"),
    );

    let second = http_call(addr, "POST", "/optimize", body.as_bytes())?;
    let hit = JsonValue::parse(&second.body)
        .ok()
        .and_then(|v| v.get("cache_hit").and_then(JsonValue::as_bool))
        .unwrap_or(false);
    assert!(hit, "repeat request must be a cache hit");
    println!("POST /optimize     -> {} (repeat request: cache_hit={hit})", second.status);

    // A malformed request is a typed 400, and the server shrugs it off.
    let bad = http_call(addr, "POST", "/optimize", b"{\"format\": \"bogus\"}")?;
    assert_eq!(bad.status, 400);
    println!("POST /optimize     -> {} (malformed request, body {})", bad.status, bad.body);

    // 4. Hot-swap a retrained checkpoint while the server is live.
    let retrained = XrlflowAgent::new(&config, 1337).snapshot();
    let swap = http_call(addr, "POST", "/admin/swap", &retrained.to_bytes())?;
    assert_eq!(swap.status, 200);
    println!("POST /admin/swap   -> {} {}", swap.status, swap.body);

    // 5. The telemetry snapshot has seen all of it.
    let metrics = http_call(addr, "GET", "/metrics", &[])?;
    assert_eq!(metrics.status, 200);
    let parsed = JsonValue::parse(&metrics.body).expect("metrics JSON parses");
    let counter = |name: &str| {
        parsed.get("counters").and_then(|c| c.get(name)).and_then(JsonValue::as_f64).unwrap_or(0.0)
    };
    println!(
        "GET /metrics       -> {} (http_requests={}, cache_hit={}, policy_invocation={}, swaps={})",
        metrics.status,
        counter("serve/http_requests"),
        counter("serve/cache_hit"),
        counter("serve/policy_invocation"),
        counter("serve/snapshot_swaps"),
    );
    assert!(counter("serve/http_requests") >= 5.0, "metrics must reflect the traffic");
    assert!(counter("serve/cache_hit") >= 1.0);
    assert!(counter("serve/policy_invocation") >= 1.0);
    assert!(counter("serve/snapshot_swaps") >= 1.0);

    let hold = std::env::var("XRLFLOW_HTTP_HOLD_SECS").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    if hold > 0 {
        println!("\nholding the server open for {hold}s — try: curl http://{addr}/healthz");
        std::thread::sleep(std::time::Duration::from_secs(hold));
    }
    println!("\nserve_http walkthrough complete: cache hit observed, metrics non-zero, checkpoint swapped");
    Ok(())
}
