//! Compares every optimiser in the repository — TASO greedy, TASO
//! backtracking, Tensat (equality saturation), PET-style and X-RLflow — on
//! the same workload, reporting cost-model and end-to-end improvements.
//!
//! Run with: `cargo run --release --example compare_optimizers [model]`
//! where `model` is one of: squeezenet, bert, inceptionv3, resnext50.

use xrlflow::core::{XrlflowConfig, XrlflowSystem};
use xrlflow::cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow::egraph::{TensatConfig, TensatOptimizer};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::rewrite::RuleSet;
use xrlflow::taso::{BacktrackingOptimizer, GreedyOptimizer, PetOptimizer, SearchConfig};

fn main() {
    let model = std::env::args().nth(1).unwrap_or_else(|| "squeezenet".to_string());
    let kind = match model.to_lowercase().as_str() {
        "bert" => ModelKind::Bert,
        "inceptionv3" => ModelKind::InceptionV3,
        "resnext50" => ModelKind::ResNext50,
        _ => ModelKind::SqueezeNet,
    };
    let graph = build_model(kind, ModelScale::Bench).expect("model builds");
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
    let cm = CostModel::new(DeviceProfile::gtx1080());
    let before_e2e = sim.measure_ms(&graph, 0);
    println!("workload: {kind} ({} nodes), unoptimised latency {before_e2e:.3} ms\n", graph.num_nodes());

    let config = SearchConfig { budget: 40, max_candidates: 48, alpha: 1.05 };
    let report = |name: &str, optimised: &xrlflow::graph::Graph, seconds: f64| {
        let e2e = sim.measure_ms(optimised, 0);
        println!(
            "{name:<20} e2e {e2e:.3} ms ({:+.2}%)   cost-model {:.3} ms   search {seconds:.2}s",
            (before_e2e / e2e - 1.0) * 100.0,
            cm.graph_cost_ms(optimised),
        );
    };

    let greedy =
        GreedyOptimizer::new(RuleSet::standard(), CostModel::new(DeviceProfile::gtx1080()), config.clone());
    let r = greedy.optimize(&graph);
    report("TASO (greedy)", &r.graph, r.optimisation_time_s);

    let backtracking = BacktrackingOptimizer::new(
        RuleSet::standard(),
        CostModel::new(DeviceProfile::gtx1080()),
        config.clone(),
    );
    let r = backtracking.optimize(&graph);
    report("TASO (backtracking)", &r.graph, r.optimisation_time_s);

    let pet = PetOptimizer::new(DeviceProfile::gtx1080(), config);
    let r = pet.optimize(&graph);
    report("PET-style", &r.graph, r.optimisation_time_s);

    match TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080()).optimize(&graph) {
        Ok(r) => report("Tensat (e-graph)", &r.graph, r.optimisation_time_s),
        Err(e) => println!("Tensat (e-graph)     unsupported graph: {e}"),
    }

    let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 1);
    let (_train, r) = system.train_and_optimize(&graph, 4);
    report("X-RLflow", &r.graph, r.optimisation_time_s);
}
