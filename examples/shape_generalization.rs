//! Reproduces the Figure 7 protocol on a small scale: train X-RLflow on BERT
//! at one sequence length, then reuse the trained policy on other sequence
//! lengths without retraining.
//!
//! Run with: `cargo run --release --example shape_generalization`

use xrlflow::core::{run_generalization, XrlflowConfig, XrlflowSystem};
use xrlflow::graph::models::{ModelKind, ModelScale};

fn main() {
    let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 5);
    let report = run_generalization(
        &mut system,
        ModelKind::Bert,
        ModelScale::Bench,
        /* train on sequence length */ 64,
        /* evaluate on */ &[32, 64, 128],
        /* training episodes */ 4,
    )
    .expect("generalisation run");

    println!("agent trained on BERT-64, evaluated without retraining:");
    for p in &report.points {
        let marker = if p.trained_on { " (trained shape)" } else { "" };
        println!(
            "  BERT-{:<4} speedup {:+.2}%  latency {:.3} ms  {} substitutions{marker}",
            p.input_size,
            p.result.speedup_percent(),
            p.result.final_latency_ms,
            p.result.steps,
        );
    }
    println!(
        "\ntrained-shape speedup {:.2}%, mean unseen-shape speedup {:.2}%",
        report.trained_speedup(),
        report.unseen_mean_speedup()
    );
}
