//! Quickstart: train ONE X-RLflow agent across a model-zoo curriculum with
//! the parallel rollout engine, evaluate its generalisation on a held-out
//! model it never saw during training, checkpoint it, and optimise a graph
//! with the reloaded policy.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Knobs (all optional):
//! * `XRLFLOW_WORKERS=N` — worker count sizing both phases (parallel episode
//!   collection and the data-parallel PPO update); any value produces
//!   bit-identical training, only wall-clock time changes.
//! * `XRLFLOW_QUICKSTART_EPISODES=N` — training episodes per curriculum
//!   model (default 4; the CI `quickstart-smoke` job sets a tiny value).
//! * `XRLFLOW_METRICS_JSON=path` — write the end-of-run telemetry snapshot
//!   (every counter, gauge and span histogram the run recorded) as a
//!   metrics JSON document to `path`.
//! * `XRLFLOW_CHECKPOINT_DIR=dir` — write durable `TrainState` checkpoints
//!   (parameters + optimiser state + schedule position) after each training
//!   round; the example then proves the newest one resumes bit-identically.

use xrlflow::core::{XrlflowAgent, XrlflowConfig, XrlflowSystem};
use xrlflow::cost::DeviceProfile;
use xrlflow::graph::models::{ModelKind, ModelScale};
use xrlflow::rollout::{evaluate_curriculum, Curriculum, ParallelTrainer};
use xrlflow::serve::OptimizeService;

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    // 1. Build a curriculum from the model zoo (structure + shapes only) and
    //    hold the last model out: the agent trains on N-1 models and is then
    //    evaluated on the one it never saw — the generalisation the paper's
    //    per-DNN agents cannot attempt.
    let config = XrlflowConfig::bench();
    let kinds = [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::ResNet18];
    let full =
        Curriculum::from_model_zoo(&kinds, ModelScale::Bench, DeviceProfile::gtx1080(), config.env.clone())
            .expect("model zoo builds");
    let (train_curriculum, held_out) = full.hold_out(full.len() - 1);
    println!("curriculum: train on {:?}, hold out {:?}", train_curriculum.names(), held_out.name);

    // 2. Create the single shared agent and the parallel trainer. Workers
    //    collect (spec, episode) work items from snapshot-built replicas, so
    //    the worker count never changes a learned number.
    let mut agent = XrlflowAgent::new(&config, 42);
    let mut trainer = ParallelTrainer::new(config.clone(), 42);
    println!("agent has {} parameters; {} rollout workers", agent.num_parameters(), trainer.num_workers());

    // 3. Train across the curriculum, watching the collect/update split per
    //    PPO round (each round merges every model's episodes and normalises
    //    advantages per model, so big graphs don't drown small ones).
    let episodes_per_model = env_usize("XRLFLOW_QUICKSTART_EPISODES", 4);
    let report = trainer
        .train_curriculum(&mut agent, &train_curriculum, episodes_per_model)
        .expect("agent matches trainer config");
    for (i, (update, timing)) in report.updates.iter().zip(&report.timings).enumerate() {
        println!(
            "update {i}: collect {:7.1} ms (sim {:6.1} ms, candgen {:6.1} ms across workers) | update {:7.1} ms ({}w) | mean episode reward {:+.3}",
            timing.collect_ms,
            timing.sim_ms,
            timing.candidate_gen_ms,
            timing.update_ms,
            timing.update_workers,
            update.mean_episode_reward
        );
    }
    for breakdown in &report.per_model {
        println!(
            "trained on {:>12}: {} episodes | mean reward {:+.3} | mean latency reduction {:+.2}%",
            breakdown.name,
            breakdown.episodes,
            breakdown.mean_reward,
            breakdown.mean_latency_reduction_percent
        );
    }

    // 4. Generalisation: evaluate the shared policy greedily on every model,
    //    including the held-out one it never trained on.
    println!("\ngeneralisation (greedy policy, no further training):");
    for eval in evaluate_curriculum(&agent, &full, 0) {
        let marker = if eval.name == held_out.name { "  <- held out" } else { "" };
        println!(
            "  {:>12}: {:.3} ms -> {:.3} ms ({:+.1}% speedup, {} rewrites){marker}",
            eval.name,
            eval.stats.initial_latency_ms,
            eval.stats.final_latency_ms,
            eval.speedup_percent(),
            eval.stats.steps,
        );
    }

    // 5. Checkpoint the trained agent — the snapshot format is what long
    //    runs resume from.
    let checkpoint = std::env::temp_dir().join("xrlflow-quickstart").join("agent.snap");
    trainer.save_checkpoint(&agent, &checkpoint).expect("checkpoint writes");
    println!("\ncheckpointed {} parameters to {}", agent.num_parameters(), checkpoint.display());

    // 5b. Durable exact-resume: when `XRLFLOW_CHECKPOINT_DIR` is set, the
    //     training above also wrote versioned `TrainState` checkpoints —
    //     parameters, Adam moments and the episode-schedule position, each
    //     written atomically. Prove the newest one resumes: a fresh trainer
    //     and agent restored from it match the live agent bit for bit.
    if let Some(dir) = trainer.checkpointing().map(|c| c.dir.clone()) {
        let mut resumed_trainer = ParallelTrainer::new(config.clone(), 0);
        let mut resumed_agent = XrlflowAgent::new(&config, 0);
        let resumed_at = resumed_trainer
            .resume_from_latest(&mut resumed_agent, &dir)
            .expect("train state scans and loads")
            .expect("training above wrote at least one train state");
        assert_eq!(
            resumed_agent.snapshot().to_bytes(),
            agent.snapshot().to_bytes(),
            "resumed parameters must match the live agent bit for bit"
        );
        println!(
            "durable resume: restored TrainState at episode {resumed_at} from {} — parameters bit-identical",
            dir.display()
        );
    }

    // 6. Reload the checkpoint into a fresh system and optimise the held-out
    //    model's graph with the restored policy acting greedily.
    let graph = held_out.spec.graph.as_ref();
    let mut system = XrlflowSystem::new(config, 0);
    trainer.load_checkpoint(system.agent_mut(), &checkpoint).expect("checkpoint loads");
    let result = system.optimize(graph);
    println!(
        "optimised {}: {} -> {} nodes, latency {:.3} ms -> {:.3} ms ({:+.1}% speedup) in {:.2}s",
        held_out.name,
        graph.num_nodes(),
        result.graph.num_nodes(),
        result.initial_latency_ms,
        result.final_latency_ms,
        result.speedup_percent(),
        result.optimisation_time_s,
    );
    println!("rules applied: {:?}", result.rule_applications);

    // 7. Serve the trained policy: one cold request (runs the policy) and
    //    one repeat (answered from the result cache), so the run trace below
    //    includes serve request-latency buckets and cache counters.
    let snapshot = agent.snapshot();
    let service = OptimizeService::from_snapshot(system.config(), &snapshot).expect("service builds");
    let cold = service.optimize(graph).expect("serve request succeeds");
    let warm = service.optimize(graph).expect("repeat serve request succeeds");
    let stats = service.stats();
    println!(
        "\nserved {} twice: cold {:.3} ms -> {:.3} ms, warm cache_hit={} | {} requests = {} hits + {} policy runs",
        held_out.name,
        cold.initial_latency_ms,
        cold.final_latency_ms,
        warm.cache_hit,
        stats.requests,
        stats.cache_hits,
        stats.policy_invocations,
    );

    // 8. Export the whole run's telemetry — per-phase spans, worker
    //    utilisation, simulator-memo hit ratio, serve latency histograms —
    //    as one structured JSON trace.
    let metrics = xrlflow::obs::Registry::global().snapshot();
    println!(
        "telemetry: {} episodes collected | worker utilization {:.0}% | simulator memo hit ratio {:.0}%",
        metrics.counter("rollout/episodes").unwrap_or(0),
        metrics.gauge("rollout/worker_utilization").unwrap_or(0.0) * 100.0,
        metrics.gauge("cost/simulator/memo_hit_ratio").unwrap_or(0.0) * 100.0,
    );
    if let Ok(path) = std::env::var("XRLFLOW_METRICS_JSON") {
        metrics.save(&path).expect("metrics snapshot writes");
        println!("metrics snapshot written to {path}");
    }
}
