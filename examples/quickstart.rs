//! Quickstart: build a DNN from the model zoo, train an X-RLflow agent with
//! the parallel rollout engine, checkpoint it, and optimise the graph with
//! the reloaded policy.
//!
//! Run with: `cargo run --release --example quickstart`
//! (`XRLFLOW_WORKERS=N` overrides the rollout worker count; any value
//! produces bit-identical training, only wall-clock time changes.)

use xrlflow::core::{XrlflowAgent, XrlflowConfig, XrlflowSystem};
use xrlflow::cost::DeviceProfile;
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
use xrlflow::rewrite::RuleSet;
use xrlflow::rollout::{EnvSpec, ParallelTrainer};

fn main() {
    // 1. Build the computation graph of SqueezeNet (structure + shapes only).
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).expect("model builds");
    println!("SqueezeNet: {} operator nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // 2. Create the agent and the parallel trainer. Workers collect episodes
    //    from snapshot-built replicas, so the worker count never changes a
    //    learned number.
    let config = XrlflowConfig::bench();
    let mut agent = XrlflowAgent::new(&config, 42);
    let mut trainer = ParallelTrainer::new(config.clone(), 42);
    println!("agent has {} parameters; {} rollout workers", agent.num_parameters(), trainer.num_workers());

    // 3. Train for a handful of episodes, watching the collect/update split
    //    per PPO round (parallel collection shrinks the collect column).
    let spec = EnvSpec::new(graph.clone(), RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone());
    let episodes = 8;
    let report = trainer.train(&mut agent, &spec, episodes).expect("agent matches trainer config");
    for (i, (update, timing)) in report.updates.iter().zip(&report.timings).enumerate() {
        println!(
            "update {i}: collect {:7.1} ms | update {:7.1} ms | mean episode reward {:+.3}",
            timing.collect_ms, timing.update_ms, update.mean_episode_reward
        );
    }

    // 4. Checkpoint the trained agent — the snapshot format is what long
    //    runs resume from.
    let checkpoint = std::env::temp_dir().join("xrlflow-quickstart").join("agent.snap");
    trainer.save_checkpoint(&agent, &checkpoint).expect("checkpoint writes");
    println!("checkpointed {} parameters to {}", agent.num_parameters(), checkpoint.display());

    // 5. Reload the checkpoint into a fresh system and optimise the graph
    //    with the restored policy acting greedily.
    let mut system = XrlflowSystem::new(config, 0);
    trainer.load_checkpoint(system.agent_mut(), &checkpoint).expect("checkpoint loads");
    let result = system.optimize(&graph);
    println!(
        "optimised graph: {} -> {} nodes, latency {:.3} ms -> {:.3} ms ({:+.1}% speedup) in {:.2}s",
        graph.num_nodes(),
        result.graph.num_nodes(),
        result.initial_latency_ms,
        result.final_latency_ms,
        result.speedup_percent(),
        result.optimisation_time_s,
    );
    println!("rules applied: {:?}", result.rule_applications);
}
