//! Quickstart: build a DNN from the model zoo, train an X-RLflow agent for a
//! few episodes and optimise the graph with the learned policy.
//!
//! Run with: `cargo run --release --example quickstart`

use xrlflow::core::{XrlflowConfig, XrlflowSystem};
use xrlflow::graph::models::{build_model, ModelKind, ModelScale};

fn main() {
    // 1. Build the computation graph of SqueezeNet (structure + shapes only).
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).expect("model builds");
    println!("SqueezeNet: {} operator nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // 2. Create the X-RLflow system (GNN encoder + PPO agent + environment).
    let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 42);
    println!("agent has {} parameters", system.agent().num_parameters());

    // 3. Train for a handful of episodes on this graph.
    let episodes = 4;
    let report = system.train_on(&graph, episodes);
    println!(
        "trained for {} episodes; mean reward of last update: {:.3}",
        report.episodes.len(),
        report.updates.last().map(|u| u.mean_episode_reward).unwrap_or(0.0)
    );

    // 4. Optimise the graph with the learned policy acting greedily.
    let result = system.optimize(&graph);
    println!(
        "optimised graph: {} -> {} nodes, latency {:.3} ms -> {:.3} ms ({:+.1}% speedup) in {:.2}s",
        graph.num_nodes(),
        result.graph.num_nodes(),
        result.initial_latency_ms,
        result.final_latency_ms,
        result.speedup_percent(),
        result.optimisation_time_s,
    );
    println!("rules applied: {:?}", result.rule_applications);
}
