//! Named-tensor snapshots of a [`ParamStore`](crate::ParamStore).
//!
//! A [`ParamSnapshot`] is an ordered list of `(name, value)` pairs — the
//! trainable parameters of an agent at one instant, without gradients or
//! optimiser state. It serves two purposes:
//!
//! * **Parameter broadcast.** The parallel rollout engine snapshots the
//!   trainer's live `ParamStore` once per PPO update and hands each worker a
//!   cheap read-only replica built from the snapshot; workers never share a
//!   live store or a `Tape`.
//! * **Checkpointing.** [`ParamSnapshot::save`] / [`ParamSnapshot::load`]
//!   persist the snapshot in a small versioned binary format so long
//!   training runs can resume and trained agents can be shipped.
//!
//! Loading a snapshot back into a store
//! ([`ParamStore::load_snapshot`](crate::ParamStore::load_snapshot)) is
//! strict: parameter count, names (in registration order) and shapes must
//! all match, and nothing is written on mismatch.

use std::fmt;
use std::path::Path;

use crate::tensor::Tensor;

/// Magic bytes identifying a snapshot file.
const MAGIC: &[u8; 8] = b"XRLFSNAP";
/// Current on-disk format version.
const FORMAT_VERSION: u32 = 1;

/// An immutable named-tensor snapshot of a parameter store.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// store.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
/// let snapshot = store.snapshot();
/// assert_eq!(snapshot.len(), 1);
/// assert_eq!(snapshot.num_scalars(), 2);
///
/// // A freshly built store with the same architecture adopts the values.
/// let mut replica = ParamStore::new();
/// let id = replica.register("w", Tensor::zeros(&[2]));
/// replica.load_snapshot(&snapshot).unwrap();
/// assert_eq!(replica.value(id).data(), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSnapshot {
    entries: Vec<(String, Tensor)>,
}

impl ParamSnapshot {
    /// Creates a snapshot from explicit `(name, value)` pairs, in store
    /// registration order.
    pub fn new(entries: Vec<(String, Tensor)>) -> Self {
        Self { entries }
    }

    /// The `(name, value)` pairs, in registration order.
    pub fn entries(&self) -> &[(String, Tensor)] {
        &self.entries
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the snapshot holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar values across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }

    /// Checks that `candidate` could replace this snapshot: same parameter
    /// count, same names in registration order, same shapes.
    ///
    /// This is the validation a deployment performs before hot-swapping a
    /// checkpoint into a live service: vet the candidate against the
    /// currently-serving snapshot *without* constructing an agent, and keep
    /// the old parameters serving when the check fails. It applies exactly
    /// the strictness of
    /// [`ParamStore::load_snapshot`](crate::ParamStore::load_snapshot), so a
    /// candidate that passes here will also load into any store built from
    /// `self`'s architecture.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::CountMismatch`], [`SnapshotError::NameMismatch`]
    /// or [`SnapshotError::ShapeMismatch`] describing the first divergence.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{ParamSnapshot, Tensor};
    ///
    /// let live = ParamSnapshot::new(vec![("w".to_string(), Tensor::zeros(&[2, 3]))]);
    /// let good = ParamSnapshot::new(vec![("w".to_string(), Tensor::ones(&[2, 3]))]);
    /// let bad = ParamSnapshot::new(vec![("w".to_string(), Tensor::ones(&[3, 2]))]);
    /// assert!(live.compatible_with(&good).is_ok());
    /// assert!(live.compatible_with(&bad).is_err());
    /// ```
    pub fn compatible_with(&self, candidate: &ParamSnapshot) -> Result<(), SnapshotError> {
        if self.entries.len() != candidate.entries.len() {
            return Err(SnapshotError::CountMismatch {
                expected: self.entries.len(),
                found: candidate.entries.len(),
            });
        }
        for (index, ((name, value), (other_name, other_value))) in
            self.entries.iter().zip(candidate.entries.iter()).enumerate()
        {
            if name != other_name {
                return Err(SnapshotError::NameMismatch {
                    index,
                    expected: name.clone(),
                    found: other_name.clone(),
                });
            }
            if value.shape() != other_value.shape() {
                return Err(SnapshotError::ShapeMismatch {
                    name: name.clone(),
                    expected: value.shape().to_vec(),
                    found: other_value.shape().to_vec(),
                });
            }
        }
        Ok(())
    }

    /// Serialises the snapshot to its on-disk byte representation
    /// (magic, format version, then length-prefixed name / shape / `f32`
    /// little-endian data per tensor).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, value) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(value.shape().len() as u32).to_le_bytes());
            for &dim in value.shape() {
                out.extend_from_slice(&(dim as u32).to_le_bytes());
            }
            for &v in value.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses a snapshot from its on-disk byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Format`] on bad magic, an unsupported
    /// version, truncation or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let magic = cursor.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapshotError::Format("bad magic: not a snapshot file".to_string()));
        }
        let version = cursor.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let count = cursor.u32()? as usize;
        // Every length field below is untrusted (the file may be truncated or
        // bit-rotted): bound each one against the bytes actually remaining
        // *before* allocating, so corruption yields a Format error rather
        // than a huge allocation or an arithmetic overflow.
        if count > cursor.remaining() / 8 {
            return Err(SnapshotError::Format(format!(
                "entry count {count} exceeds what {} remaining bytes can hold",
                cursor.remaining()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let name_len = cursor.u32()? as usize;
            let name = String::from_utf8(cursor.take(name_len)?.to_vec())
                .map_err(|_| SnapshotError::Format(format!("entry {i}: name is not valid UTF-8")))?;
            let ndim = cursor.u32()? as usize;
            if ndim > cursor.remaining() / 4 {
                return Err(SnapshotError::Format(format!(
                    "entry {i}: rank {ndim} exceeds what {} remaining bytes can hold",
                    cursor.remaining()
                )));
            }
            let mut shape = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                shape.push(cursor.u32()? as usize);
            }
            let data_len = shape
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .and_then(|numel| numel.checked_mul(4))
                .ok_or_else(|| {
                    SnapshotError::Format(format!("entry {i}: shape {shape:?} overflows the element count"))
                })?;
            let raw = cursor.take(data_len)?;
            let data: Vec<f32> =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            entries.push((name, Tensor::from_vec(data, &shape)));
        }
        if cursor.pos != bytes.len() {
            return Err(SnapshotError::Format(format!(
                "{} trailing bytes after the last entry",
                bytes.len() - cursor.pos
            )));
        }
        Ok(Self { entries })
    }

    /// Writes the snapshot to `path` (creating parent directories).
    ///
    /// The write goes through [`crate::atomic_write`], so a crash mid-save
    /// never truncates a previously saved checkpoint at the same path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::fsio::atomic_write(path, self.to_bytes())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be read and
    /// [`SnapshotError::Format`] when its contents are not a valid snapshot.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(SnapshotError::Io)?;
        Self::from_bytes(&bytes)
    }
}

/// Byte-slice cursor used by [`ParamSnapshot::from_bytes`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Format(format!(
                "truncated snapshot: needed {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Errors produced when loading or applying a [`ParamSnapshot`].
#[derive(Debug)]
pub enum SnapshotError {
    /// The snapshot file could not be read.
    Io(std::io::Error),
    /// The bytes are not a valid snapshot (bad magic, version, truncation).
    Format(String),
    /// The snapshot holds a different number of parameters than the store.
    CountMismatch {
        /// Parameters registered in the store.
        expected: usize,
        /// Parameters present in the snapshot.
        found: usize,
    },
    /// A parameter name differs between the store and the snapshot.
    NameMismatch {
        /// Position in registration order.
        index: usize,
        /// Name registered in the store.
        expected: String,
        /// Name found in the snapshot.
        found: String,
    },
    /// A parameter's shape differs between the store and the snapshot.
    ShapeMismatch {
        /// The parameter's name.
        name: String,
        /// Shape registered in the store.
        expected: Vec<usize>,
        /// Shape found in the snapshot.
        found: Vec<usize>,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::CountMismatch { expected, found } => {
                write!(f, "snapshot has {found} parameters, the store expects {expected}")
            }
            SnapshotError::NameMismatch { index, expected, found } => {
                write!(f, "parameter {index} is named {found:?} in the snapshot, {expected:?} in the store")
            }
            SnapshotError::ShapeMismatch { name, expected, found } => {
                write!(f, "parameter {name:?} has shape {found:?} in the snapshot, {expected:?} in the store")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::ParamStore;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.register("layer.weight", Tensor::from_vec(vec![1.5, -2.0, 0.25, 7.0, 0.0, -0.5], &[2, 3]));
        store.register("layer.bias", Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]));
        store
    }

    #[test]
    fn byte_round_trip_is_bit_identical() {
        let snapshot = sample_store().snapshot();
        let decoded = ParamSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();
        assert_eq!(decoded, snapshot);
    }

    #[test]
    fn file_round_trip_is_bit_identical() {
        let snapshot = sample_store().snapshot();
        let path = std::env::temp_dir().join("xrlflow_snapshot_test/roundtrip.snap");
        snapshot.save(&path).unwrap();
        let loaded = ParamSnapshot::load(&path).unwrap();
        assert_eq!(loaded, snapshot);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn load_snapshot_restores_values() {
        let store = sample_store();
        let snapshot = store.snapshot();
        let mut replica = ParamStore::new();
        let w = replica.register("layer.weight", Tensor::zeros(&[2, 3]));
        let b = replica.register("layer.bias", Tensor::zeros(&[3]));
        replica.load_snapshot(&snapshot).unwrap();
        assert_eq!(replica.value(w).data(), snapshot.entries()[0].1.data());
        assert_eq!(replica.value(b).data(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn compatible_with_mirrors_load_strictness() {
        let live = sample_store().snapshot();

        // A same-architecture snapshot with different values is compatible.
        let mut retrained = ParamStore::new();
        retrained.register("layer.weight", Tensor::ones(&[2, 3]));
        retrained.register("layer.bias", Tensor::ones(&[3]));
        assert!(live.compatible_with(&retrained.snapshot()).is_ok());

        // Count, name and shape divergences report the first mismatch.
        let short = ParamSnapshot::new(vec![live.entries()[0].clone()]);
        assert!(matches!(
            live.compatible_with(&short),
            Err(SnapshotError::CountMismatch { expected: 2, found: 1 })
        ));

        let renamed = ParamSnapshot::new(vec![
            live.entries()[0].clone(),
            ("other.bias".to_string(), Tensor::zeros(&[3])),
        ]);
        assert!(matches!(live.compatible_with(&renamed), Err(SnapshotError::NameMismatch { index: 1, .. })));

        let reshaped = ParamSnapshot::new(vec![
            ("layer.weight".to_string(), Tensor::zeros(&[3, 2])),
            live.entries()[1].clone(),
        ]);
        assert!(matches!(live.compatible_with(&reshaped), Err(SnapshotError::ShapeMismatch { .. })));
    }

    #[test]
    fn mismatches_are_rejected_without_partial_writes() {
        let snapshot = sample_store().snapshot();

        // Count mismatch.
        let mut store = ParamStore::new();
        store.register("layer.weight", Tensor::zeros(&[2, 3]));
        assert!(matches!(
            store.load_snapshot(&snapshot),
            Err(SnapshotError::CountMismatch { expected: 1, found: 2 })
        ));

        // Name mismatch.
        let mut store = ParamStore::new();
        store.register("layer.weight", Tensor::zeros(&[2, 3]));
        let b = store.register("other.bias", Tensor::zeros(&[3]));
        assert!(matches!(store.load_snapshot(&snapshot), Err(SnapshotError::NameMismatch { index: 1, .. })));
        // The matching first parameter must not have been written.
        assert_eq!(store.value(b).data(), &[0.0, 0.0, 0.0]);

        // Shape mismatch.
        let mut store = ParamStore::new();
        store.register("layer.weight", Tensor::zeros(&[3, 2]));
        store.register("layer.bias", Tensor::zeros(&[3]));
        match store.load_snapshot(&snapshot) {
            Err(SnapshotError::ShapeMismatch { name, expected, found }) => {
                assert_eq!(name, "layer.weight");
                assert_eq!(expected, vec![3, 2]);
                assert_eq!(found, vec![2, 3]);
            }
            other => panic!("expected a shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert!(matches!(ParamSnapshot::from_bytes(b"not a snapshot"), Err(SnapshotError::Format(_))));
        // Bad version.
        let mut bytes = sample_store().snapshot().to_bytes();
        bytes[8] = 99;
        assert!(matches!(ParamSnapshot::from_bytes(&bytes), Err(SnapshotError::Format(_))));
        // Truncation.
        let bytes = sample_store().snapshot().to_bytes();
        assert!(matches!(
            ParamSnapshot::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Format(_))
        ));
        // Trailing garbage.
        let mut bytes = sample_store().snapshot().to_bytes();
        bytes.push(0);
        assert!(matches!(ParamSnapshot::from_bytes(&bytes), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn corrupted_length_fields_error_instead_of_allocating() {
        // A flipped entry-count field must not drive Vec::with_capacity into
        // a gigantic allocation (which aborts the process).
        let mut bytes = sample_store().snapshot().to_bytes();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(ParamSnapshot::from_bytes(&bytes), Err(SnapshotError::Format(_))));

        // A corrupted rank field likewise.
        let snapshot = sample_store().snapshot();
        let mut bytes = snapshot.to_bytes();
        let ndim_offset = 16 + 4 + snapshot.entries()[0].0.len();
        bytes[ndim_offset..ndim_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(ParamSnapshot::from_bytes(&bytes), Err(SnapshotError::Format(_))));

        // Dimensions whose product overflows usize must be a Format error,
        // not an arithmetic panic/wrap.
        let huge = u32::MAX;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"XRLFSNAP");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(b"w");
        bytes.extend_from_slice(&3u32.to_le_bytes());
        for _ in 0..3 {
            bytes.extend_from_slice(&huge.to_le_bytes());
        }
        assert!(matches!(ParamSnapshot::from_bytes(&bytes), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn load_missing_file_is_an_io_error() {
        let err = ParamSnapshot::load("/nonexistent/xrlflow/definitely_missing.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
