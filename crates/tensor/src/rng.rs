//! Deterministic pseudo-random number generation.
//!
//! Experiments in the paper are repeated five times with different seeds; a
//! small self-contained xorshift generator keeps every run bit-reproducible
//! regardless of platform or dependency versions.

/// SplitMix64 finaliser: a fast, high-quality bit mixer used to derive
/// decorrelated deterministic seeds from structured inputs (episode indices,
/// update counters, epoch numbers) — sequential inputs map to statistically
/// independent outputs.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::splitmix64;
///
/// assert_eq!(splitmix64(7), splitmix64(7));
/// assert_ne!(splitmix64(7), splitmix64(8));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small, fast, deterministic xorshift64* random number generator.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::XorShiftRng;
///
/// let mut rng = XorShiftRng::new(42);
/// let x = rng.uniform(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because the all-zero state is a fixed point.
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard-normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = self.next_f32().max(1e-7);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }

    /// Samples an index from an (unnormalised, non-negative) weight vector.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn sample_weighted(&mut self, weights: &[f32]) -> usize {
        let total: f32 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "weights must be non-empty with positive sum");
        let mut r = self.next_f32() * total;
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return i;
            }
            r -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(123);
        let mut b = XorShiftRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        let same = (0..20).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = XorShiftRng::new(7);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = XorShiftRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = XorShiftRng::new(5);
        for _ in 0..1000 {
            assert!(rng.gen_range(7) < 7);
        }
    }

    #[test]
    fn sample_weighted_prefers_heavy_weights() {
        let mut rng = XorShiftRng::new(9);
        let weights = [0.01, 0.01, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[rng.sample_weighted(&weights)] += 1;
        }
        assert!(counts[2] > 900);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShiftRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn splitmix64_decorrelates_sequential_inputs() {
        let outputs: std::collections::HashSet<u64> = (0..256).map(splitmix64).collect();
        assert_eq!(outputs.len(), 256, "sequential inputs must map to distinct outputs");
        // Adjacent inputs differ in many bits, not just the low ones.
        let diff = (splitmix64(1) ^ splitmix64(2)).count_ones();
        assert!(diff > 16, "adjacent outputs share too many bits ({diff} differ)");
    }
}
