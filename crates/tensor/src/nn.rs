//! Small neural-network building blocks on top of the autodiff tape.
//!
//! The blocks here are exactly what the X-RLflow agent needs: dense layers
//! with configurable activation and multi-layer perceptrons for the policy
//! and value heads (two hidden layers of `[256, 64]` in the paper's
//! Table 4).

use crate::rng::XorShiftRng;
use crate::tape::{FusedActivation, ParamId, ParamStore, Tape, VarId};
use crate::tensor::Tensor;

/// Activation function applied after an affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Identity (no activation).
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit with slope 0.2 (GAT convention).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a tape variable.
    pub fn apply(self, tape: &mut Tape, x: VarId) -> VarId {
        match self {
            Activation::Linear => x,
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu => tape.leaky_relu(x, 0.2),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
        }
    }

    /// The [`FusedActivation`] equivalent, for fusing into
    /// [`Tape::add_bias_act`] (bit-identical to `add_bias` + [`Activation::apply`]).
    pub fn fused(self) -> FusedActivation {
        match self {
            Activation::Linear => FusedActivation::Identity,
            Activation::Relu => FusedActivation::Relu,
            Activation::LeakyRelu => FusedActivation::LeakyRelu(0.2),
            Activation::Tanh => FusedActivation::Tanh,
            Activation::Sigmoid => FusedActivation::Sigmoid,
        }
    }
}

/// Glorot/Xavier-uniform initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut XorShiftRng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data: Vec<f32> = (0..fan_in * fan_out).map(|_| rng.uniform(-limit, limit)).collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// A dense (fully connected) layer `y = act(x W + b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a dense layer, registering its parameters in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut XorShiftRng,
    ) -> Self {
        let weight = store.register(&format!("{name}.weight"), xavier_uniform(in_dim, out_dim, rng));
        let bias = store.register(&format!("{name}.bias"), Tensor::zeros(&[out_dim]));
        Self { weight, bias, activation, in_dim, out_dim }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Runs the layer on a `[rows, in_dim]` variable, producing `[rows, out_dim]`.
    ///
    /// Bias add and activation run as one fused op, so each dense layer
    /// materialises one intermediate (`xW`) instead of three.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: VarId) -> VarId {
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        let xw = tape.matmul(x, w);
        tape.add_bias_act(xw, b, self.activation.fused())
    }
}

/// A multi-layer perceptron with hidden ReLU layers and a linear output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with the given hidden sizes.
    ///
    /// `dims = [in, h1, h2, ..., out]`; hidden layers use ReLU, the last
    /// layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize], rng: &mut XorShiftRng) -> Self {
        assert!(dims.len() >= 2, "Mlp requires at least input and output dims");
        let mut layers = Vec::new();
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() { Activation::Linear } else { Activation::Relu };
            layers.push(Linear::new(store, &format!("{name}.{i}"), dims[i], dims[i + 1], act, rng));
        }
        Self { layers }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(Linear::in_dim).unwrap_or(0)
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(Linear::out_dim).unwrap_or(0)
    }

    /// Runs the MLP on a `[rows, in_dim]` variable.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: VarId) -> VarId {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(tape, store, h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Adam;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(7);
        let layer = Linear::new(&mut store, "l", 4, 3, Activation::Relu, &mut rng);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[5, 4]));
        let y = layer.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), &[5, 3]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = XorShiftRng::new(3);
        let t = xavier_uniform(10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        for &v in t.data() {
            assert!(v.abs() <= limit + 1e-6);
        }
        // Should not be all zeros.
        assert!(t.sq_norm() > 0.0);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(42);
        let mlp = Mlp::new(&mut store, "xor", &[2, 16, 1], &mut rng);
        assert_eq!(mlp.in_dim(), 2);
        assert_eq!(mlp.out_dim(), 1);
        let xs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let ys = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]);
        let mut adam = Adam::new(0.02);
        let mut final_loss = f32::INFINITY;
        for _ in 0..800 {
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let y = tape.constant(ys.clone());
            let pred = mlp.forward(&mut tape, &store, x);
            let pred = tape.sigmoid(pred);
            let diff = tape.sub(pred, y);
            let sq = tape.mul(diff, diff);
            let loss = tape.mean_all(sq);
            final_loss = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!(final_loss < 0.05, "MLP failed to learn XOR: loss={final_loss}");
    }

    #[test]
    fn activations_apply() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let r = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.value(r).data(), &[0.0, 2.0]);
        let l = Activation::LeakyRelu.apply(&mut tape, x);
        assert!((tape.value(l).data()[0] + 0.2).abs() < 1e-6);
        let t = Activation::Tanh.apply(&mut tape, x);
        assert!(tape.value(t).data()[1] < 1.0);
        let s = Activation::Sigmoid.apply(&mut tape, x);
        assert!(tape.value(s).data()[0] < 0.5);
        let id = Activation::Linear.apply(&mut tape, x);
        assert_eq!(id, x);
    }
}
