//! Reverse-mode automatic differentiation on a per-forward-pass tape.
//!
//! The X-RLflow agent rebuilds its computation graph on every forward pass
//! (the input dataflow graph changes at every environment step), so the
//! autodiff design is a *dynamic tape*: each call to [`Tape::new`] starts an
//! empty tape, operations append nodes, and [`Tape::backward`] walks the tape
//! in reverse accumulating gradients into a shared [`ParamStore`].
//!
//! Parameters live in the [`ParamStore`] across forward passes; each forward
//! pass imports them as leaves via [`Tape::param`].

use crate::snapshot::{ParamSnapshot, SnapshotError};
use crate::tensor::Tensor;

/// Identifier of a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

/// Persistent storage for trainable parameters and their Adam state.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

#[derive(Debug, Clone)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    m: Tensor,
    v: Tensor,
}

/// Identifier of a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A dense gradient accumulator detached from any [`ParamStore`]: one tensor
/// per registered parameter, in registration order.
///
/// This is the unit of the data-parallel PPO update's determinism contract:
/// each transition's loss is back-propagated into its own zero-initialised
/// buffer ([`Tape::backward_into`]) on whatever thread evaluated it, and the
/// trainer merges the buffers **by transition index** ([`GradBuffer::merge`])
/// before loading the result into the live store
/// ([`ParamStore::apply_grads`]). Because every per-transition buffer starts
/// from zeros and the merge order is fixed, the merged gradient is
/// bit-identical no matter how many worker threads produced the pieces.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::{GradBuffer, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
///
/// // Two independent loss contributions, each into its own buffer.
/// let mut buffers = Vec::new();
/// for scale in [1.0f32, 2.0] {
///     let mut tape = Tape::new();
///     let wv = tape.param(&store, w);
///     let sq = tape.mul(wv, wv);
///     let loss = tape.scale(sq, scale); // d/dw = scale * 2w
///     let mut grads = GradBuffer::zeros_like(&store);
///     tape.backward_into(loss, &mut grads);
///     buffers.push(grads);
/// }
///
/// // Merge in index order, then load into the store.
/// let mut merged = GradBuffer::zeros_like(&store);
/// for buffer in &buffers {
///     merged.merge(buffer);
/// }
/// store.apply_grads(&merged);
/// assert_eq!(store.grad(w).item(), 6.0 + 12.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// Creates a zero-filled buffer shaped like every parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self { grads: store.entries.iter().map(|e| Tensor::zeros(e.value.shape())).collect() }
    }

    /// Number of parameter slots (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Returns `true` when the buffer holds no parameter slots.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// The accumulated gradient of one parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `grad` into the parameter's slot (the [`Tape::backward_into`]
    /// sink; mirrors the accumulation a [`ParamStore`] performs in
    /// [`Tape::backward`]).
    ///
    /// # Panics
    ///
    /// Panics when the shapes mismatch.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.grads[id.0].add_assign(grad);
    }

    /// Adds every slot of `other` into this buffer, element-wise, in
    /// parameter-registration order — the ordered-merge primitive of the
    /// data-parallel update. `merge` is deliberately *not* commutative at the
    /// bit level (f32 addition is order-sensitive), so callers must merge
    /// shards in a fixed index order, never completion order.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{GradBuffer, ParamStore, Tensor};
    ///
    /// let mut store = ParamStore::new();
    /// let w = store.register("w", Tensor::from_vec(vec![0.0, 0.0], &[2]));
    /// let mut acc = GradBuffer::zeros_like(&store);
    /// let mut one = GradBuffer::zeros_like(&store);
    /// one.accumulate(w, &Tensor::from_vec(vec![1.0, -2.0], &[2]));
    /// acc.merge(&one);
    /// acc.merge(&one);
    /// assert_eq!(acc.grad(w).data(), &[2.0, -4.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the buffers hold different parameter counts or shapes.
    pub fn merge(&mut self, other: &GradBuffer) {
        assert_eq!(self.grads.len(), other.grads.len(), "GradBuffer parameter count mismatch");
        for (own, theirs) in self.grads.iter_mut().zip(&other.grads) {
            own.add_assign(theirs);
        }
    }

    /// Global L2 norm of the buffered gradients (matches
    /// [`ParamStore::grad_norm`] after [`ParamStore::apply_grads`]).
    pub fn norm(&self) -> f32 {
        self.grads.iter().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }
}

impl ParamStore {
    /// Creates an empty parameter store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its id.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        let shape = value.shape().to_vec();
        self.entries.push(ParamEntry {
            name: name.to_string(),
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
            value,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Returns the current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Returns the accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Returns the name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Overwrites the value of a parameter (e.g. when loading a checkpoint).
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.entries[id.0].value.shape(),
            "set_value shape mismatch for parameter {}",
            self.entries[id.0].name
        );
        self.entries[id.0].value = value;
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// Sets every accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad = Tensor::zeros(e.value.shape());
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries.iter().map(|e| e.grad.sq_norm()).sum::<f32>().sqrt()
    }

    /// Clips gradients so their global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                e.grad = e.grad.scale(scale);
            }
        }
    }

    fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.entries[id.0].grad.add_assign(grad);
    }

    /// Overwrites every parameter's accumulated gradient with the
    /// corresponding slot of `grads` — the trainer-side half of the
    /// data-parallel update: workers back-propagate into detached
    /// [`GradBuffer`]s, the trainer merges them in index order and loads the
    /// result here before clipping and stepping the optimiser.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{GradBuffer, ParamStore, Tensor};
    ///
    /// let mut store = ParamStore::new();
    /// let w = store.register("w", Tensor::from_vec(vec![1.0], &[1]));
    /// let mut grads = GradBuffer::zeros_like(&store);
    /// grads.accumulate(w, &Tensor::from_vec(vec![0.5], &[1]));
    /// store.apply_grads(&grads);
    /// assert_eq!(store.grad(w).item(), 0.5);
    /// assert_eq!(store.grad_norm(), grads.norm());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `grads` was built for a store with a different parameter
    /// count or different shapes.
    pub fn apply_grads(&mut self, grads: &GradBuffer) {
        assert_eq!(self.entries.len(), grads.grads.len(), "apply_grads parameter count mismatch");
        for (e, g) in self.entries.iter_mut().zip(&grads.grads) {
            assert_eq!(e.value.shape(), g.shape(), "apply_grads shape mismatch for parameter {}", e.name);
            // The grad slot already has the right shape — copy element-wise
            // instead of allocating a clone per parameter per minibatch.
            e.grad.data_mut().copy_from_slice(g.data());
        }
    }

    /// Captures a [`ParamSnapshot`] of every parameter's current value, in
    /// registration order (gradients and Adam state are not captured).
    ///
    /// The parallel rollout engine broadcasts one snapshot per PPO update so
    /// worker threads can build read-only agent replicas without ever
    /// sharing a live store; the same snapshot type backs checkpointing.
    pub fn snapshot(&self) -> ParamSnapshot {
        ParamSnapshot::new(self.entries.iter().map(|e| (e.name.clone(), e.value.clone())).collect())
    }

    /// Overwrites every parameter's value from a snapshot captured on a
    /// store with the identical architecture.
    ///
    /// The check is strict — same parameter count, same names in
    /// registration order, same shapes — and nothing is written when any
    /// entry mismatches, so a failed load leaves the store untouched.
    /// Gradients and Adam state are left as they are.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::CountMismatch`], [`SnapshotError::NameMismatch`]
    /// or [`SnapshotError::ShapeMismatch`] describing the first difference.
    pub fn load_snapshot(&mut self, snapshot: &ParamSnapshot) -> Result<(), SnapshotError> {
        let entries = snapshot.entries();
        if entries.len() != self.entries.len() {
            return Err(SnapshotError::CountMismatch { expected: self.entries.len(), found: entries.len() });
        }
        for (index, (own, (name, value))) in self.entries.iter().zip(entries).enumerate() {
            if own.name != *name {
                return Err(SnapshotError::NameMismatch {
                    index,
                    expected: own.name.clone(),
                    found: name.clone(),
                });
            }
            if own.value.shape() != value.shape() {
                return Err(SnapshotError::ShapeMismatch {
                    name: name.clone(),
                    expected: own.value.shape().to_vec(),
                    found: value.shape().to_vec(),
                });
            }
        }
        for (own, (_, value)) in self.entries.iter_mut().zip(entries) {
            own.value = value.clone();
        }
        Ok(())
    }
}

/// Adam optimiser over a [`ParamStore`].
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::{Adam, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::from_vec(vec![2.0], &[1]));
/// let mut adam = Adam::new(0.1);
/// for _ in 0..200 {
///     let mut tape = Tape::new();
///     let wv = tape.param(&store, w);
///     // minimise (w - 5)^2
///     let target = tape.constant(Tensor::from_vec(vec![5.0], &[1]));
///     let diff = tape.sub(wv, target);
///     let loss = tape.mul(diff, diff);
///     store.zero_grad();
///     tape.backward(loss, &mut store);
///     adam.step(&mut store);
/// }
/// assert!((store.value(w).item() - 5.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: usize,
}

impl Adam {
    /// Creates an Adam optimiser with the given learning rate and standard
    /// defaults for the remaining hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Applies one Adam update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for e in &mut store.entries {
            let g = &e.grad;
            e.m = e.m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            e.v = e.v.scale(self.beta2).add(&g.mul(g).scale(1.0 - self.beta2));
            let m_hat = e.m.scale(1.0 / bc1);
            let v_hat = e.v.scale(1.0 / bc2);
            let update = m_hat.zip(&v_hat, |m, v| m / (v.sqrt() + self.eps)).scale(self.lr);
            e.value = e.value.sub(&update);
        }
    }

    /// Number of optimisation steps performed so far.
    pub fn steps(&self) -> usize {
        self.t
    }
}

/// Plain SGD optimiser (used in tests and ablations).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one SGD update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        for e in &mut store.entries {
            e.value = e.value.sub(&e.grad.scale(self.lr));
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    AddBias(VarId, VarId),
    Scale(VarId, f32),
    AddScalar(VarId),
    Neg(VarId),
    MatMul(VarId, VarId),
    Relu(VarId),
    LeakyRelu(VarId, f32),
    Tanh(VarId),
    Sigmoid(VarId),
    Exp(VarId),
    Log(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    SumRows(VarId),
    MeanRows(VarId),
    ConcatCols(VarId, VarId),
    ConcatRows(Vec<VarId>),
    GatherRows(VarId, Vec<usize>),
    ScatterAddRows(VarId, Vec<usize>),
    SegmentMeanRows(VarId, Vec<usize>, usize),
    SegmentSoftmax(VarId, Vec<usize>, usize),
    Transpose(VarId),
    BroadcastMulCol(VarId, VarId),
    LogSoftmaxRow(VarId),
    Pick(VarId, usize),
    Clamp(VarId, f32, f32),
    Minimum(VarId, VarId),
    Maximum(VarId, VarId),
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// Dynamic autodiff tape.
///
/// Every method that takes `VarId` arguments appends a new node recording the
/// operation and its forward value; [`Tape::backward`] later replays the tape
/// in reverse to accumulate parameter gradients.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the forward value of a variable.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value });
        VarId(self.nodes.len() - 1)
    }

    /// Adds a constant (non-trainable) leaf.
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(Op::Constant, value)
    }

    /// Imports a parameter from the store as a trainable leaf.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Element-wise addition of two variables with identical shapes.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise multiplication.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// Adds a rank-1 bias of size `n` to every row of a `[m, n]` matrix.
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> VarId {
        let av = self.value(a);
        let bv = self.value(bias);
        let (rows, cols) = (av.rows(), av.cols());
        assert_eq!(bv.numel(), cols, "bias size must equal number of columns");
        let mut out = Tensor::zeros(&[rows, cols]);
        for r in 0..rows {
            for c in 0..cols {
                let val = av.data()[r * cols + c] + bv.data()[c];
                out.data_mut()[r * cols + c] = val;
            }
        }
        self.push(Op::AddBias(a, bias), out)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push(Op::Scale(a, s), v)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).map(|x| x + s);
        self.push(Op::AddScalar(a), v)
    }

    /// Negates every element.
    pub fn neg(&mut self, a: VarId) -> VarId {
        let v = self.value(a).scale(-1.0);
        self.push(Op::Neg(a), v)
    }

    /// Matrix multiplication of rank-2 variables.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Element-wise natural logarithm.
    pub fn log(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(1e-12).ln());
        self.push(Op::Log(a), v)
    }

    /// Sum of all elements, producing a scalar.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(Op::MeanAll(a), v)
    }

    /// Sums over the row axis, producing a `[1, cols]` matrix.
    pub fn sum_rows(&mut self, a: VarId) -> VarId {
        let av = self.value(a);
        let (rows, cols) = (av.rows(), av.cols());
        let mut out = Tensor::zeros(&[1, cols]);
        for r in 0..rows {
            for c in 0..cols {
                out.data_mut()[c] += av.data()[r * cols + c];
            }
        }
        self.push(Op::SumRows(a), out)
    }

    /// Averages over the row axis, producing a `[1, cols]` matrix.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let av = self.value(a);
        let (rows, cols) = (av.rows(), av.cols());
        let mut out = Tensor::zeros(&[1, cols]);
        for r in 0..rows {
            for c in 0..cols {
                out.data_mut()[c] += av.data()[r * cols + c];
            }
        }
        let out = out.scale(1.0 / rows.max(1) as f32);
        self.push(Op::MeanRows(a), out)
    }

    /// Concatenates two matrices with equal row counts along the column axis.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let v = Tensor::concat_cols(&[self.value(a), self.value(b)]);
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Stacks matrices with equal column counts along the row axis.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_rows(&tensors);
        self.push(Op::ConcatRows(parts.to_vec()), v)
    }

    /// Gathers rows of a matrix by index (rows may repeat).
    pub fn gather_rows(&mut self, a: VarId, indices: &[usize]) -> VarId {
        let av = self.value(a);
        let cols = av.cols();
        let mut out = Tensor::zeros(&[indices.len(), cols]);
        for (i, &idx) in indices.iter().enumerate() {
            out.data_mut()[i * cols..(i + 1) * cols].copy_from_slice(av.row(idx));
        }
        self.push(Op::GatherRows(a, indices.to_vec()), out)
    }

    /// Scatter-adds rows of a `[k, cols]` matrix into an `[out_rows, cols]`
    /// matrix according to `indices` (length `k`).
    pub fn scatter_add_rows(&mut self, a: VarId, indices: &[usize], out_rows: usize) -> VarId {
        let av = self.value(a);
        let cols = av.cols();
        assert_eq!(av.rows(), indices.len(), "scatter_add_rows index length mismatch");
        let mut out = Tensor::zeros(&[out_rows, cols]);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < out_rows, "scatter index {} out of bounds ({})", idx, out_rows);
            for c in 0..cols {
                out.data_mut()[idx * cols + c] += av.data()[i * cols + c];
            }
        }
        self.push(Op::ScatterAddRows(a, indices.to_vec()), out)
    }

    /// Segment-wise sum pooling over a batch index: sums the rows of a
    /// `[k, cols]` matrix that share a segment id into a `[num_segments,
    /// cols]` matrix. This is the readout primitive of block-diagonal batched
    /// graph encoding — `segments` maps each node row to its graph index, and
    /// the result holds one pooled row per graph.
    ///
    /// Rows of a segment are accumulated in row order, so a single-segment
    /// call is bit-identical to [`Tape::sum_rows`].
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// // Two graphs stacked row-wise: graph 0 has rows 0-1, graph 1 has row 2.
    /// let h = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
    /// let pooled = tape.segment_sum_rows(h, &[0, 0, 1], 2);
    /// assert_eq!(tape.value(pooled).data(), &[4.0, 6.0, 5.0, 6.0]);
    /// ```
    pub fn segment_sum_rows(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        self.scatter_add_rows(a, segments, num_segments)
    }

    /// Segment-wise mean pooling over a batch index: like
    /// [`Tape::segment_sum_rows`] but averaging each segment's rows. Empty
    /// segments produce zero rows.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// let h = tape.constant(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[2, 2]));
    /// let pooled = tape.segment_mean_rows(h, &[0, 0], 1);
    /// assert_eq!(tape.value(pooled).data(), &[3.0, 5.0]);
    /// ```
    pub fn segment_mean_rows(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        let av = self.value(a);
        let cols = av.cols();
        assert_eq!(av.rows(), segments.len(), "segment_mean_rows index length mismatch");
        let mut counts = vec![0usize; num_segments];
        for &s in segments {
            assert!(s < num_segments, "segment index {} out of bounds ({})", s, num_segments);
            counts[s] += 1;
        }
        let mut out = Tensor::zeros(&[num_segments, cols]);
        for (i, &s) in segments.iter().enumerate() {
            for c in 0..cols {
                out.data_mut()[s * cols + c] += av.data()[i * cols + c];
            }
        }
        for (s, &count) in counts.iter().enumerate() {
            if count > 1 {
                let inv = 1.0 / count as f32;
                for c in 0..cols {
                    out.data_mut()[s * cols + c] *= inv;
                }
            }
        }
        self.push(Op::SegmentMeanRows(a, segments.to_vec(), num_segments), out)
    }

    /// Batched (stacked) matrix multiplication over row blocks: stacks `B`
    /// blocks of shape `[N_i, k]` into one `[sum N_i, k]` matrix and
    /// multiplies by a shared `[k, n]` right-hand side in a single matmul —
    /// the `[B, N, H]`-style batched matmul for running separately-held row
    /// blocks through one shared linear layer. (The graph encoder keeps its
    /// batches pre-stacked and calls [`Tape::matmul`] directly; this is the
    /// convenience form for callers holding per-block variables.) Each output
    /// row is computed exactly as it would be in a per-block matmul, so
    /// results are bit-identical to the serial path.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// let block_a = tape.constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]));
    /// let block_b = tape.constant(Tensor::from_vec(vec![0.0, 1.0, 1.0, 1.0], &[2, 2]));
    /// let rhs = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
    /// let out = tape.stacked_matmul(&[block_a, block_b], rhs);
    /// assert_eq!(tape.value(out).shape(), &[3, 2]);
    /// assert_eq!(tape.value(out).row(0), &[1.0, 2.0]);
    /// ```
    pub fn stacked_matmul(&mut self, blocks: &[VarId], rhs: VarId) -> VarId {
        let stacked = self.concat_rows(blocks);
        self.matmul(stacked, rhs)
    }

    /// Transposes a rank-2 variable, turning `[m, n]` into `[n, m]` (used to
    /// reshape a batched `[K, 1]` score column into a `[1, K]` logit row).
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Softmax over segments of a `[k, 1]` column vector: entries sharing the
    /// same segment id are normalised together. Used for GAT attention
    /// coefficients grouped by destination node.
    pub fn segment_softmax(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        let av = self.value(a);
        assert_eq!(av.cols(), 1, "segment_softmax expects a column vector");
        assert_eq!(av.rows(), segments.len(), "segment length mismatch");
        let out = segment_softmax_forward(av, segments, num_segments);
        self.push(Op::SegmentSoftmax(a, segments.to_vec(), num_segments), out)
    }

    /// Multiplies each row of a `[k, n]` matrix by the matching entry of a
    /// `[k, 1]` column vector.
    pub fn broadcast_mul_col(&mut self, col: VarId, mat: VarId) -> VarId {
        let cv = self.value(col);
        let mv = self.value(mat);
        assert_eq!(cv.cols(), 1, "broadcast_mul_col expects a column vector");
        assert_eq!(cv.rows(), mv.rows(), "row mismatch");
        let cols = mv.cols();
        let mut out = Tensor::zeros(&[mv.rows(), cols]);
        for r in 0..mv.rows() {
            let s = cv.data()[r];
            for c in 0..cols {
                out.data_mut()[r * cols + c] = mv.data()[r * cols + c] * s;
            }
        }
        self.push(Op::BroadcastMulCol(col, mat), out)
    }

    /// Log-softmax over the flattened elements of a variable (treated as one
    /// categorical distribution).
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let av = self.value(a);
        let max = av.max();
        let exps: Vec<f32> = av.data().iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let log_sum = sum.ln() + max;
        let out = Tensor::from_vec(av.data().iter().map(|&x| x - log_sum).collect(), av.shape());
        self.push(Op::LogSoftmaxRow(a), out)
    }

    /// Picks a single element by flat index, producing a scalar.
    pub fn pick(&mut self, a: VarId, index: usize) -> VarId {
        let v = Tensor::scalar(self.value(a).data()[index]);
        self.push(Op::Pick(a, index), v)
    }

    /// Clamps every element to `[lo, hi]`; gradients are zero outside the range.
    pub fn clamp(&mut self, a: VarId, lo: f32, hi: f32) -> VarId {
        let v = self.value(a).map(|x| x.clamp(lo, hi));
        self.push(Op::Clamp(a, lo, hi), v)
    }

    /// Element-wise minimum of two variables.
    pub fn minimum(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).zip(self.value(b), f32::min);
        self.push(Op::Minimum(a, b), v)
    }

    /// Element-wise maximum of two variables.
    pub fn maximum(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).zip(self.value(b), f32::max);
        self.push(Op::Maximum(a, b), v)
    }

    /// Runs reverse-mode differentiation from `loss` (a scalar) and
    /// accumulates gradients of all parameters into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element variable.
    pub fn backward(&self, loss: VarId, store: &mut ParamStore) {
        self.backward_with(loss, &mut |pid, grad| store.accumulate(pid, grad));
    }

    /// Runs reverse-mode differentiation from `loss` (a scalar) and
    /// accumulates parameter gradients into a detached [`GradBuffer`]
    /// instead of a live [`ParamStore`].
    ///
    /// This is the worker-side primitive of the data-parallel PPO update:
    /// each worker evaluates its transition shard on a private tape over a
    /// snapshot-built replica and back-propagates into its own buffer, so no
    /// thread ever mutates the shared store. Accumulation is identical to
    /// [`Tape::backward`] (same reverse walk, same per-parameter add order),
    /// so backing a loss into a zeroed buffer and
    /// [`ParamStore::apply_grads`]-ing it produces bit-identical gradients
    /// to backing the same tape into a freshly zeroed store.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element variable, or when `grads`
    /// was built for a different architecture.
    pub fn backward_into(&self, loss: VarId, grads: &mut GradBuffer) {
        self.backward_with(loss, &mut |pid, grad| grads.accumulate(pid, grad));
    }

    /// The shared reverse walk behind [`Tape::backward`] and
    /// [`Tape::backward_into`]: `sink` receives every parameter-gradient
    /// contribution, in reverse tape order.
    fn backward_with(&self, loss: VarId, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(self.value(loss).numel(), 1, "backward requires a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let grad = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            match &node.op {
                Op::Constant => {}
                Op::Param(pid) => sink(*pid, &grad),
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, &grad);
                    accumulate(&mut grads, b.0, &grad);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, &grad);
                    accumulate(&mut grads, b.0, &grad.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = grad.mul(&self.nodes[b.0].value);
                    let gb = grad.mul(&self.nodes[a.0].value);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::AddBias(a, bias) => {
                    accumulate(&mut grads, a.0, &grad);
                    let cols = self.nodes[bias.0].value.numel();
                    let rows = grad.numel() / cols;
                    let mut gb = Tensor::zeros(self.nodes[bias.0].value.shape());
                    for r in 0..rows {
                        for c in 0..cols {
                            gb.data_mut()[c] += grad.data()[r * cols + c];
                        }
                    }
                    accumulate(&mut grads, bias.0, &gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, a.0, &grad.scale(*s)),
                Op::AddScalar(a) => accumulate(&mut grads, a.0, &grad),
                Op::Neg(a) => accumulate(&mut grads, a.0, &grad.scale(-1.0)),
                Op::MatMul(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = grad.matmul(&bv.transpose());
                    let gb = av.transpose().matmul(&grad);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Relu(a) => {
                    let av = &self.nodes[a.0].value;
                    let ga = grad.zip(av, |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let av = &self.nodes[a.0].value;
                    let s = *slope;
                    let ga = grad.zip(av, |g, x| if x > 0.0 { g } else { s * g });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Tanh(a) => {
                    let yv = &node.value;
                    let ga = grad.zip(yv, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Sigmoid(a) => {
                    let yv = &node.value;
                    let ga = grad.zip(yv, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Exp(a) => {
                    let ga = grad.mul(&node.value);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Log(a) => {
                    let av = &self.nodes[a.0].value;
                    let ga = grad.zip(av, |g, x| g / x.max(1e-12));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SumAll(a) => {
                    let g = grad.item();
                    let ga = Tensor::full(self.nodes[a.0].value.shape(), g);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a.0].value.numel().max(1) as f32;
                    let g = grad.item() / n;
                    let ga = Tensor::full(self.nodes[a.0].value.shape(), g);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SumRows(a) | Op::MeanRows(a) => {
                    let av = &self.nodes[a.0].value;
                    let (rows, cols) = (av.rows(), av.cols());
                    let scale =
                        if matches!(node.op, Op::MeanRows(_)) { 1.0 / rows.max(1) as f32 } else { 1.0 };
                    let mut ga = Tensor::zeros(&[rows, cols]);
                    for r in 0..rows {
                        for c in 0..cols {
                            ga.data_mut()[r * cols + c] = grad.data()[c] * scale;
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ConcatCols(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let (rows, ca, cb) = (av.rows(), av.cols(), bv.cols());
                    let mut ga = Tensor::zeros(&[rows, ca]);
                    let mut gb = Tensor::zeros(&[rows, cb]);
                    let total = ca + cb;
                    for r in 0..rows {
                        for c in 0..ca {
                            ga.data_mut()[r * ca + c] = grad.data()[r * total + c];
                        }
                        for c in 0..cb {
                            gb.data_mut()[r * cb + c] = grad.data()[r * total + ca + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::ConcatRows(parts) => {
                    let cols = node.value.cols();
                    let mut offset = 0;
                    for &p in parts {
                        let rows = self.nodes[p.0].value.rows();
                        let mut gp = Tensor::zeros(&[rows, cols]);
                        gp.data_mut().copy_from_slice(&grad.data()[offset * cols..(offset + rows) * cols]);
                        accumulate(&mut grads, p.0, &gp);
                        offset += rows;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let av = &self.nodes[a.0].value;
                    let cols = av.cols();
                    let mut ga = Tensor::zeros(&[av.rows(), cols]);
                    for (i, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            ga.data_mut()[idx * cols + c] += grad.data()[i * cols + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ScatterAddRows(a, indices) => {
                    let av = &self.nodes[a.0].value;
                    let cols = av.cols();
                    let mut ga = Tensor::zeros(&[av.rows(), cols]);
                    for (i, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            ga.data_mut()[i * cols + c] = grad.data()[idx * cols + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SegmentMeanRows(a, segments, num_segments) => {
                    let av = &self.nodes[a.0].value;
                    let cols = av.cols();
                    let mut counts = vec![0usize; *num_segments];
                    for &s in segments {
                        counts[s] += 1;
                    }
                    let mut ga = Tensor::zeros(av.shape());
                    for (i, &s) in segments.iter().enumerate() {
                        let inv = 1.0 / counts[s] as f32;
                        for c in 0..cols {
                            ga.data_mut()[i * cols + c] = grad.data()[s * cols + c] * inv;
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Transpose(a) => {
                    accumulate(&mut grads, a.0, &grad.transpose());
                }
                Op::SegmentSoftmax(a, segments, num_segments) => {
                    let y = &node.value;
                    // dL/dx_i = y_i * (g_i - sum_{j in seg(i)} g_j y_j)
                    let mut seg_dot = vec![0.0f32; *num_segments];
                    for (i, &s) in segments.iter().enumerate() {
                        seg_dot[s] += grad.data()[i] * y.data()[i];
                    }
                    let mut ga = Tensor::zeros(y.shape());
                    for (i, &s) in segments.iter().enumerate() {
                        ga.data_mut()[i] = y.data()[i] * (grad.data()[i] - seg_dot[s]);
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::BroadcastMulCol(col, mat) => {
                    let cv = &self.nodes[col.0].value;
                    let mv = &self.nodes[mat.0].value;
                    let cols = mv.cols();
                    let mut gcol = Tensor::zeros(cv.shape());
                    let mut gmat = Tensor::zeros(mv.shape());
                    for r in 0..mv.rows() {
                        let mut dot = 0.0;
                        for c in 0..cols {
                            dot += grad.data()[r * cols + c] * mv.data()[r * cols + c];
                            gmat.data_mut()[r * cols + c] = grad.data()[r * cols + c] * cv.data()[r];
                        }
                        gcol.data_mut()[r] = dot;
                    }
                    accumulate(&mut grads, col.0, &gcol);
                    accumulate(&mut grads, mat.0, &gmat);
                }
                Op::LogSoftmaxRow(a) => {
                    // y = x - logsumexp(x); dx = g - softmax(x) * sum(g)
                    let y = &node.value;
                    let g_sum: f32 = grad.data().iter().sum();
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(y.data().iter())
                            .map(|(&g, &yv)| g - yv.exp() * g_sum)
                            .collect(),
                        y.shape(),
                    );
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Pick(a, index) => {
                    let av = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(av.shape());
                    ga.data_mut()[*index] = grad.item();
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Clamp(a, lo, hi) => {
                    let av = &self.nodes[a.0].value;
                    let (lo, hi) = (*lo, *hi);
                    let ga = grad.zip(av, |g, x| if x > lo && x < hi { g } else { 0.0 });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Minimum(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&g, (&x, &y))| if x <= y { g } else { 0.0 })
                            .collect(),
                        av.shape(),
                    );
                    let gb = grad.sub(&ga);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Maximum(a, b) => {
                    let av = &self.nodes[a.0].value;
                    let bv = &self.nodes[b.0].value;
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&g, (&x, &y))| if x >= y { g } else { 0.0 })
                            .collect(),
                        av.shape(),
                    );
                    let gb = grad.sub(&ga);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, grad: &Tensor) {
    match &mut grads[idx] {
        Some(g) => *g = g.add(grad),
        slot @ None => *slot = Some(grad.clone()),
    }
}

fn segment_softmax_forward(values: &Tensor, segments: &[usize], num_segments: usize) -> Tensor {
    let mut seg_max = vec![f32::NEG_INFINITY; num_segments];
    for (i, &s) in segments.iter().enumerate() {
        seg_max[s] = seg_max[s].max(values.data()[i]);
    }
    let mut exps = vec![0.0f32; values.rows()];
    let mut seg_sum = vec![0.0f32; num_segments];
    for (i, &s) in segments.iter().enumerate() {
        let e = (values.data()[i] - seg_max[s]).exp();
        exps[i] = e;
        seg_sum[s] += e;
    }
    let out: Vec<f32> = segments.iter().enumerate().map(|(i, &s)| exps[i] / seg_sum[s].max(1e-12)).collect();
    Tensor::from_vec(out, values.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks the gradient of a scalar function of one parameter.
    fn check_gradient(
        build: impl Fn(&mut Tape, &ParamStore, ParamId) -> VarId,
        initial: Tensor,
        tolerance: f32,
    ) {
        let mut store = ParamStore::new();
        let pid = store.register("p", initial.clone());

        let mut tape = Tape::new();
        let x = tape.param(&store, pid);
        let loss = build(&mut tape, &store, pid);
        let _ = x;
        store.zero_grad();
        tape.backward(loss, &mut store);
        let analytic = store.grad(pid).clone();

        let eps = 1e-3;
        for i in 0..initial.numel() {
            let mut plus = initial.clone();
            plus.data_mut()[i] += eps;
            let mut minus = initial.clone();
            minus.data_mut()[i] -= eps;

            let eval = |t: &Tensor| -> f32 {
                let mut s = ParamStore::new();
                let pid = s.register("p", t.clone());
                let mut tape = Tape::new();
                let loss = build(&mut tape, &s, pid);
                tape.value(loss).item()
            };
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tolerance * numeric.abs().max(1.0),
                "gradient mismatch at {}: analytic={}, numeric={}",
                i,
                a,
                numeric
            );
        }
    }

    #[test]
    fn grad_of_square() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let y = tape.mul(x, x);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![2.0, -3.0], &[2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_matmul_chain() {
        check_gradient(
            |tape, store, pid| {
                let w = tape.param(store, pid);
                let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
                let y = tape.matmul(x, w);
                let z = tape.relu(y);
                tape.sum_all(z)
            },
            Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.3, -1.0, 0.7], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_tanh_sigmoid_exp_log() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let t = tape.tanh(x);
                let s = tape.sigmoid(t);
                let e = tape.exp(s);
                let l = tape.log(e);
                tape.sum_all(l)
            },
            Tensor::from_vec(vec![0.2, -0.7, 1.5], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_log_softmax_pick() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let ls = tape.log_softmax(x);
                tape.pick(ls, 1)
            },
            Tensor::from_vec(vec![0.1, 0.9, -0.3, 0.4], &[1, 4]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_gather_scatter() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let g = tape.gather_rows(x, &[0, 1, 1, 2]);
                let s = tape.scatter_add_rows(g, &[0, 0, 1, 1], 2);
                let sq = tape.mul(s, s);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_segment_softmax() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let sm = tape.segment_softmax(x, &[0, 0, 1, 1, 1], 2);
                let w = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5], &[5, 1]));
                let y = tape.mul(sm, w);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1, -0.5], &[5, 1]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_bias_and_concat() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let b = tape.constant(Tensor::from_vec(vec![0.5, -0.5], &[2]));
                let y = tape.add_bias(x, b);
                let z = tape.concat_cols(x, y);
                let s = tape.mul(z, z);
                tape.sum_all(s)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_minimum_clamp() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let c = tape.constant(Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]));
                let m = tape.minimum(x, c);
                let cl = tape.clamp(m, -0.4, 0.45);
                tape.sum_all(cl)
            },
            Tensor::from_vec(vec![0.2, 0.7, -0.6], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_broadcast_mul_col() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let col = tape.constant(Tensor::from_vec(vec![2.0, -1.0], &[2, 1]));
                let y = tape.broadcast_mul_col(col, x);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_segment_sum_and_mean_rows() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let pooled = tape.segment_sum_rows(x, &[0, 0, 1], 2);
                let sq = tape.mul(pooled, pooled);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let pooled = tape.segment_mean_rows(x, &[0, 0, 1], 2);
                let sq = tape.mul(pooled, pooled);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_transpose_and_stacked_matmul() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let t = tape.transpose(x);
                let rhs = tape.constant(Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 1.5, -1.0], &[3, 2]));
                let y = tape.stacked_matmul(&[t, t], rhs);
                let sq = tape.mul(y, y);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn segment_sum_rows_matches_sum_rows_for_one_segment() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.5, -2.0, 0.25, 4.0, 3.0, -1.0], &[3, 2]));
        let seg = tape.segment_sum_rows(x, &[0, 0, 0], 1);
        let sum = tape.sum_rows(x);
        assert_eq!(tape.value(seg), tape.value(sum));
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![10.0, -4.0], &[2]));
        let mut adam = Adam::new(0.2);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let target = tape.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
            let diff = tape.sub(wv, target);
            let sq = tape.mul(diff, diff);
            let loss = tape.sum_all(sq);
            store.zero_grad();
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let v = store.value(w);
        assert!((v.data()[0] - 1.0).abs() < 0.05, "got {:?}", v);
        assert!((v.data()[1] - 2.0).abs() < 0.05, "got {:?}", v);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
        let mut sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let sq = tape.mul(wv, wv);
            let loss = tape.sum_all(sq);
            store.zero_grad();
            tape.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        assert!(store.value(w).item().abs() < 1e-3);
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![100.0, 100.0], &[2]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        tape.backward(loss, &mut store);
        assert!(store.grad_norm() > 10.0);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn param_store_bookkeeping() {
        let mut store = ParamStore::new();
        assert!(store.is_empty());
        let a = store.register("a", Tensor::zeros(&[2, 3]));
        let b = store.register("b", Tensor::zeros(&[4]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.name(b), "b");
        store.set_value(b, Tensor::ones(&[4]));
        assert_eq!(store.value(b).sum(), 4.0);
    }

    /// Builds a two-parameter store plus a tape computing a loss touching
    /// both parameters (one of them twice, so accumulation order matters).
    fn grad_buffer_fixture() -> (ParamStore, ParamId, ParamId, Tape, VarId) {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![1.5, -2.0], &[2]));
        let b = store.register("b", Tensor::from_vec(vec![0.5], &[1]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let wv2 = tape.param(&store, w);
        let bv = tape.param(&store, b);
        let prod = tape.mul(wv, wv2);
        let sum = tape.sum_all(prod);
        let bsq = tape.mul(bv, bv);
        let bloss = tape.sum_all(bsq);
        let loss = tape.add(sum, bloss);
        (store, w, b, tape, loss)
    }

    #[test]
    fn backward_into_matches_backward_bit_for_bit() {
        let (mut store, w, b, tape, loss) = grad_buffer_fixture();
        store.zero_grad();
        tape.backward(loss, &mut store);
        let mut buffer = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut buffer);
        assert_eq!(store.grad(w).data(), buffer.grad(w).data());
        assert_eq!(store.grad(b).data(), buffer.grad(b).data());
        assert_eq!(store.grad_norm().to_bits(), buffer.norm().to_bits());
    }

    #[test]
    fn grad_buffer_merge_accumulates_in_order() {
        let (store, w, b, tape, loss) = grad_buffer_fixture();
        let mut single = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut single);

        // Merging k copies in index order equals k sequential accumulations
        // of the same contribution.
        let mut acc = GradBuffer::zeros_like(&store);
        let mut expected_w = Tensor::zeros(&[2]);
        let mut expected_b = Tensor::zeros(&[1]);
        for _ in 0..3 {
            acc.merge(&single);
            expected_w = expected_w.add(single.grad(w));
            expected_b = expected_b.add(single.grad(b));
        }
        assert_eq!(acc.grad(w).data(), expected_w.data());
        assert_eq!(acc.grad(b).data(), expected_b.data());
        assert_eq!(acc.len(), store.len());
        assert!(!acc.is_empty());
    }

    #[test]
    fn apply_grads_overwrites_the_store_gradients() {
        let (mut store, w, b, tape, loss) = grad_buffer_fixture();
        // Pre-existing gradients must not leak into the applied result.
        store.zero_grad();
        tape.backward(loss, &mut store);
        let mut buffer = GradBuffer::zeros_like(&store);
        buffer.accumulate(w, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        store.apply_grads(&buffer);
        assert_eq!(store.grad(w).data(), &[1.0, 2.0]);
        assert_eq!(store.grad(b).data(), &[0.0]);
        assert_eq!(store.grad_norm().to_bits(), buffer.norm().to_bits());
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn apply_grads_rejects_mismatched_buffers() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[2]));
        let other = ParamStore::new();
        let buffer = GradBuffer::zeros_like(&other);
        store.apply_grads(&buffer);
    }

    #[test]
    fn gradients_flow_through_shared_parameter() {
        // The same parameter used twice must accumulate both contributions.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
        let mut tape = Tape::new();
        let a = tape.param(&store, w);
        let b = tape.param(&store, w);
        let prod = tape.mul(a, b); // w^2 -> grad 2w = 6
        let loss = tape.sum_all(prod);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!((store.grad(w).item() - 6.0).abs() < 1e-5);
    }
}
