//! Reverse-mode automatic differentiation on a per-forward-pass tape.
//!
//! The X-RLflow agent rebuilds its computation graph on every forward pass
//! (the input dataflow graph changes at every environment step), so the
//! autodiff design is a *dynamic tape*: each call to [`Tape::new`] starts an
//! empty tape, operations append nodes, and [`Tape::backward`] walks the tape
//! in reverse accumulating gradients into a shared [`ParamStore`].
//!
//! Parameters live in the [`ParamStore`] across forward passes; each forward
//! pass imports them as leaves via [`Tape::param`].

use crate::snapshot::{ParamSnapshot, SnapshotError};
use crate::tensor::{matmul_into, Shape, Tensor};
use std::sync::Arc;

/// Identifier of a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

/// Persistent storage for trainable parameters and their Adam state.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

#[derive(Debug, Clone)]
struct ParamEntry {
    name: String,
    /// `Arc`-backed so [`Tape::param`] imports the tensor as a shared leaf
    /// (one refcount bump) instead of deep-cloning it on every forward pass.
    /// Mutation always replaces the `Arc` wholesale, never writes through it,
    /// so outstanding tape leaves keep the value they imported.
    value: Arc<Tensor>,
    grad: Tensor,
    m: Tensor,
    v: Tensor,
}

/// Identifier of a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A dense gradient accumulator detached from any [`ParamStore`]: one tensor
/// per registered parameter, in registration order.
///
/// This is the unit of the data-parallel PPO update's determinism contract:
/// each transition's loss is back-propagated into its own zero-initialised
/// buffer ([`Tape::backward_into`]) on whatever thread evaluated it, and the
/// trainer merges the buffers **by transition index** ([`GradBuffer::merge`])
/// before loading the result into the live store
/// ([`ParamStore::apply_grads`]). Because every per-transition buffer starts
/// from zeros and the merge order is fixed, the merged gradient is
/// bit-identical no matter how many worker threads produced the pieces.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::{GradBuffer, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
///
/// // Two independent loss contributions, each into its own buffer.
/// let mut buffers = Vec::new();
/// for scale in [1.0f32, 2.0] {
///     let mut tape = Tape::new();
///     let wv = tape.param(&store, w);
///     let sq = tape.mul(wv, wv);
///     let loss = tape.scale(sq, scale); // d/dw = scale * 2w
///     let mut grads = GradBuffer::zeros_like(&store);
///     tape.backward_into(loss, &mut grads);
///     buffers.push(grads);
/// }
///
/// // Merge in index order, then load into the store.
/// let mut merged = GradBuffer::zeros_like(&store);
/// for buffer in &buffers {
///     merged.merge(buffer);
/// }
/// store.apply_grads(&merged);
/// assert_eq!(store.grad(w).item(), 6.0 + 12.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// Creates a zero-filled buffer shaped like every parameter of `store`.
    pub fn zeros_like(store: &ParamStore) -> Self {
        Self { grads: store.entries.iter().map(|e| Tensor::zeros(e.value.shape())).collect() }
    }

    /// Number of parameter slots (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Returns `true` when the buffer holds no parameter slots.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// The accumulated gradient of one parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `grad` into the parameter's slot (the [`Tape::backward_into`]
    /// sink; mirrors the accumulation a [`ParamStore`] performs in
    /// [`Tape::backward`]).
    ///
    /// # Panics
    ///
    /// Panics when the shapes mismatch.
    pub fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.grads[id.0].add_assign(grad);
    }

    /// Adds every slot of `other` into this buffer, element-wise, in
    /// parameter-registration order — the ordered-merge primitive of the
    /// data-parallel update. `merge` is deliberately *not* commutative at the
    /// bit level (f32 addition is order-sensitive), so callers must merge
    /// shards in a fixed index order, never completion order.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{GradBuffer, ParamStore, Tensor};
    ///
    /// let mut store = ParamStore::new();
    /// let w = store.register("w", Tensor::from_vec(vec![0.0, 0.0], &[2]));
    /// let mut acc = GradBuffer::zeros_like(&store);
    /// let mut one = GradBuffer::zeros_like(&store);
    /// one.accumulate(w, &Tensor::from_vec(vec![1.0, -2.0], &[2]));
    /// acc.merge(&one);
    /// acc.merge(&one);
    /// assert_eq!(acc.grad(w).data(), &[2.0, -4.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the buffers hold different parameter counts or shapes.
    pub fn merge(&mut self, other: &GradBuffer) {
        assert_eq!(self.grads.len(), other.grads.len(), "GradBuffer parameter count mismatch");
        for (own, theirs) in self.grads.iter_mut().zip(&other.grads) {
            own.add_assign(theirs);
        }
    }

    /// Global L2 norm of the buffered gradients (matches
    /// [`ParamStore::grad_norm`] after [`ParamStore::apply_grads`]).
    pub fn norm(&self) -> f32 {
        self.grads.iter().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Resets every slot to zero **in place**, keeping the allocated buffers.
    ///
    /// This is the pooling primitive of the update path: instead of building
    /// a fresh [`GradBuffer::zeros_like`] per transition, callers keep one
    /// buffer per concurrent backward pass, `zero_fill` it and re-accumulate.
    /// A zero-filled buffer is indistinguishable from a freshly constructed
    /// one, so the index-ordered merge stays bit-identical.
    pub fn zero_fill(&mut self) {
        for g in &mut self.grads {
            g.data_mut().fill(0.0);
        }
    }
}

impl ParamStore {
    /// Creates an empty parameter store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its id.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        let shape = value.shape().to_vec();
        self.entries.push(ParamEntry {
            name: name.to_string(),
            grad: Tensor::zeros(&shape),
            m: Tensor::zeros(&shape),
            v: Tensor::zeros(&shape),
            value: Arc::new(value),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Returns the current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    fn value_arc(&self, id: ParamId) -> &Arc<Tensor> {
        &self.entries[id.0].value
    }

    /// Returns the accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Returns the name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Overwrites the value of a parameter (e.g. when loading a checkpoint).
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            value.shape(),
            self.entries[id.0].value.shape(),
            "set_value shape mismatch for parameter {}",
            self.entries[id.0].name
        );
        self.entries[id.0].value = Arc::new(value);
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// Sets every accumulated gradient to zero (in place — the grad tensors
    /// keep their buffers across updates).
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries.iter().map(|e| e.grad.sq_norm()).sum::<f32>().sqrt()
    }

    /// Clips gradients so their global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                // In-place `x * scale` — the same arithmetic as
                // `Tensor::scale` without a fresh tensor per parameter.
                for x in e.grad.data_mut() {
                    *x *= scale;
                }
            }
        }
    }

    fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        self.entries[id.0].grad.add_assign(grad);
    }

    /// Overwrites every parameter's accumulated gradient with the
    /// corresponding slot of `grads` — the trainer-side half of the
    /// data-parallel update: workers back-propagate into detached
    /// [`GradBuffer`]s, the trainer merges them in index order and loads the
    /// result here before clipping and stepping the optimiser.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{GradBuffer, ParamStore, Tensor};
    ///
    /// let mut store = ParamStore::new();
    /// let w = store.register("w", Tensor::from_vec(vec![1.0], &[1]));
    /// let mut grads = GradBuffer::zeros_like(&store);
    /// grads.accumulate(w, &Tensor::from_vec(vec![0.5], &[1]));
    /// store.apply_grads(&grads);
    /// assert_eq!(store.grad(w).item(), 0.5);
    /// assert_eq!(store.grad_norm(), grads.norm());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `grads` was built for a store with a different parameter
    /// count or different shapes.
    pub fn apply_grads(&mut self, grads: &GradBuffer) {
        assert_eq!(self.entries.len(), grads.grads.len(), "apply_grads parameter count mismatch");
        for (e, g) in self.entries.iter_mut().zip(&grads.grads) {
            assert_eq!(e.value.shape(), g.shape(), "apply_grads shape mismatch for parameter {}", e.name);
            // The grad slot already has the right shape — copy element-wise
            // instead of allocating a clone per parameter per minibatch.
            e.grad.data_mut().copy_from_slice(g.data());
        }
    }

    /// Captures a [`ParamSnapshot`] of every parameter's current value, in
    /// registration order (gradients and Adam state are not captured).
    ///
    /// The parallel rollout engine broadcasts one snapshot per PPO update so
    /// worker threads can build read-only agent replicas without ever
    /// sharing a live store; the same snapshot type backs checkpointing.
    pub fn snapshot(&self) -> ParamSnapshot {
        ParamSnapshot::new(self.entries.iter().map(|e| (e.name.clone(), e.value.as_ref().clone())).collect())
    }

    /// Overwrites every parameter's value from a snapshot captured on a
    /// store with the identical architecture.
    ///
    /// The check is strict — same parameter count, same names in
    /// registration order, same shapes — and nothing is written when any
    /// entry mismatches, so a failed load leaves the store untouched.
    /// Gradients and Adam state are left as they are.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::CountMismatch`], [`SnapshotError::NameMismatch`]
    /// or [`SnapshotError::ShapeMismatch`] describing the first difference.
    pub fn load_snapshot(&mut self, snapshot: &ParamSnapshot) -> Result<(), SnapshotError> {
        let entries = snapshot.entries();
        if entries.len() != self.entries.len() {
            return Err(SnapshotError::CountMismatch { expected: self.entries.len(), found: entries.len() });
        }
        for (index, (own, (name, value))) in self.entries.iter().zip(entries).enumerate() {
            if own.name != *name {
                return Err(SnapshotError::NameMismatch {
                    index,
                    expected: own.name.clone(),
                    found: name.clone(),
                });
            }
            if own.value.shape() != value.shape() {
                return Err(SnapshotError::ShapeMismatch {
                    name: name.clone(),
                    expected: own.value.shape().to_vec(),
                    found: value.shape().to_vec(),
                });
            }
        }
        for (own, (_, value)) in self.entries.iter_mut().zip(entries) {
            own.value = Arc::new(value.clone());
        }
        Ok(())
    }

    /// Captures the Adam moment buffers as a pair of snapshots — first
    /// moments, then second moments — named and ordered exactly like
    /// [`ParamStore::snapshot`].
    ///
    /// Together with the parameter snapshot and [`Adam::steps`] this is the
    /// complete optimiser state: a store restored from all three continues
    /// training bit-identically to one that was never interrupted, which is
    /// what the `TrainState` exact-resume checkpoint relies on.
    pub fn adam_snapshot(&self) -> (ParamSnapshot, ParamSnapshot) {
        let first = ParamSnapshot::new(self.entries.iter().map(|e| (e.name.clone(), e.m.clone())).collect());
        let second = ParamSnapshot::new(self.entries.iter().map(|e| (e.name.clone(), e.v.clone())).collect());
        (first, second)
    }

    /// Overwrites the Adam moment buffers from snapshots captured by
    /// [`ParamStore::adam_snapshot`] on a store with the identical
    /// architecture.
    ///
    /// Validation is strict and happens for **both** snapshots before either
    /// is adopted — same count, names and shapes as the live store — so a
    /// failed load leaves every moment buffer untouched. There is no partial
    /// adoption: optimiser state is restored completely or not at all.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::CountMismatch`], [`SnapshotError::NameMismatch`]
    /// or [`SnapshotError::ShapeMismatch`] describing the first difference.
    pub fn load_adam_snapshot(
        &mut self,
        first: &ParamSnapshot,
        second: &ParamSnapshot,
    ) -> Result<(), SnapshotError> {
        for snapshot in [first, second] {
            let entries = snapshot.entries();
            if entries.len() != self.entries.len() {
                return Err(SnapshotError::CountMismatch {
                    expected: self.entries.len(),
                    found: entries.len(),
                });
            }
            for (index, (own, (name, value))) in self.entries.iter().zip(entries).enumerate() {
                if own.name != *name {
                    return Err(SnapshotError::NameMismatch {
                        index,
                        expected: own.name.clone(),
                        found: name.clone(),
                    });
                }
                if own.value.shape() != value.shape() {
                    return Err(SnapshotError::ShapeMismatch {
                        name: name.clone(),
                        expected: own.value.shape().to_vec(),
                        found: value.shape().to_vec(),
                    });
                }
            }
        }
        for (own, (_, m)) in self.entries.iter_mut().zip(first.entries()) {
            own.m = m.clone();
        }
        for (own, (_, v)) in self.entries.iter_mut().zip(second.entries()) {
            own.v = v.clone();
        }
        Ok(())
    }
}

/// Adam optimiser over a [`ParamStore`].
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::{Adam, ParamStore, Tape, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.register("w", Tensor::from_vec(vec![2.0], &[1]));
/// let mut adam = Adam::new(0.1);
/// for _ in 0..200 {
///     let mut tape = Tape::new();
///     let wv = tape.param(&store, w);
///     // minimise (w - 5)^2
///     let target = tape.constant(Tensor::from_vec(vec![5.0], &[1]));
///     let diff = tape.sub(wv, target);
///     let loss = tape.mul(diff, diff);
///     store.zero_grad();
///     tape.backward(loss, &mut store);
///     adam.step(&mut store);
/// }
/// assert!((store.value(w).item() - 5.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: usize,
}

impl Adam {
    /// Creates an Adam optimiser with the given learning rate and standard
    /// defaults for the remaining hyper-parameters.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Applies one Adam update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for e in &mut store.entries {
            let g = &e.grad;
            e.m = e.m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            e.v = e.v.scale(self.beta2).add(&g.mul(g).scale(1.0 - self.beta2));
            let m_hat = e.m.scale(1.0 / bc1);
            let v_hat = e.v.scale(1.0 / bc2);
            let update = m_hat.zip(&v_hat, |m, v| m / (v.sqrt() + self.eps)).scale(self.lr);
            e.value = Arc::new(e.value.sub(&update));
        }
    }

    /// Number of optimisation steps performed so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// Restores the step counter from a checkpoint.
    ///
    /// The counter drives Adam's bias correction, so an exact resume must
    /// restore it together with the moment buffers
    /// ([`ParamStore::load_adam_snapshot`]) — a resumed run with `t` reset
    /// to zero would re-apply the early-step correction and diverge from the
    /// uninterrupted run.
    pub fn set_steps(&mut self, steps: usize) {
        self.t = steps;
    }
}

/// Plain SGD optimiser (used in tests and ablations).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimiser with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// Applies one SGD update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        for e in &mut store.entries {
            e.value = Arc::new(e.value.sub(&e.grad.scale(self.lr)));
        }
    }
}

/// Activation fused into [`Tape::add_bias_act`], applied element-wise to
/// `x + bias` in the same pass that adds the bias.
///
/// Each variant's derivative is computed **from the fused output** during the
/// backward pass, which is exact for every variant here: ReLU and leaky ReLU
/// (positive slope) preserve the sign of their input, and tanh/sigmoid
/// derivatives are standard functions of the output. Fusion therefore changes
/// neither the forward bits (same per-element `act(x + b)` arithmetic as the
/// unfused two-op sequence) nor the backward bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedActivation {
    /// No activation: `y = x + b`.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit with the given positive negative-side
    /// slope (the GAT convention is `0.2`).
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl FusedActivation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            FusedActivation::Identity => x,
            FusedActivation::Relu => x.max(0.0),
            FusedActivation::LeakyRelu(s) => {
                if x > 0.0 {
                    x
                } else {
                    s * x
                }
            }
            FusedActivation::Tanh => x.tanh(),
            FusedActivation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative-times-upstream-gradient, computed from the fused output
    /// `y` (valid because `y > 0 ⇔ x > 0` for ReLU/leaky-ReLU with positive
    /// slope, and tanh/sigmoid gradients are functions of `y`).
    #[inline]
    fn grad_from_output(self, g: f32, y: f32) -> f32 {
        match self {
            FusedActivation::Identity => g,
            FusedActivation::Relu => {
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            FusedActivation::LeakyRelu(s) => {
                if y > 0.0 {
                    g
                } else {
                    s * g
                }
            }
            FusedActivation::Tanh => g * (1.0 - y * y),
            FusedActivation::Sigmoid => g * y * (1.0 - y),
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Constant,
    Param(ParamId),
    Add(VarId, VarId),
    Sub(VarId, VarId),
    Mul(VarId, VarId),
    AddBias(VarId, VarId),
    AddBiasAct(VarId, VarId, FusedActivation),
    Scale(VarId, f32),
    AddScalar(VarId),
    Neg(VarId),
    MatMul(VarId, VarId),
    Relu(VarId),
    LeakyRelu(VarId, f32),
    Tanh(VarId),
    Sigmoid(VarId),
    Exp(VarId),
    Log(VarId),
    SumAll(VarId),
    MeanAll(VarId),
    SumRows(VarId),
    MeanRows(VarId),
    ConcatCols(VarId, VarId),
    ConcatRows(Vec<VarId>),
    GatherRows(VarId, Vec<usize>),
    ScatterAddRows(VarId, Vec<usize>),
    SegmentMeanRows(VarId, Vec<usize>, usize),
    SegmentSoftmax(VarId, Vec<usize>, usize),
    Transpose(VarId),
    BroadcastMulCol(VarId, VarId),
    LogSoftmaxRow(VarId),
    Pick(VarId, usize),
    Clamp(VarId, f32, f32),
    Minimum(VarId, VarId),
    Maximum(VarId, VarId),
}

/// A node's forward value: either a tensor the tape owns (op outputs,
/// constants — reclaimed into the buffer pool by [`Tape::recycle`]) or a
/// shared reference to a [`ParamStore`] tensor (parameter leaves — imported
/// with one refcount bump instead of a deep clone).
#[derive(Debug, Clone)]
enum Value {
    Owned(Tensor),
    Shared(Arc<Tensor>),
}

impl Value {
    #[inline]
    fn tensor(&self) -> &Tensor {
        match self {
            Value::Owned(t) => t,
            Value::Shared(t) => t,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Value,
}

#[inline]
fn value_of(nodes: &[Node], id: VarId) -> &Tensor {
    nodes[id.0].value.tensor()
}

/// Recycled buffers backing tape node values and per-op index vectors.
///
/// Both free lists are kept sorted by capacity, so `take` is a best-fit
/// binary search (smallest buffer with `capacity >= len`). Over the repeated
/// identical op sequence of a steady-state forward pass, every request finds
/// an exact-fit buffer from the previous pass, so a recycled tape performs
/// zero heap allocations.
#[derive(Debug, Default)]
struct BufferPool {
    f32s: Vec<Vec<f32>>,
    usizes: Vec<Vec<usize>>,
}

impl BufferPool {
    /// An empty `Vec<f32>` with `capacity >= len` (freshly allocated only on
    /// a pool miss).
    fn take_f32(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let pos = self.f32s.partition_point(|v| v.capacity() < len);
        if pos < self.f32s.len() {
            let mut v = self.f32s.remove(pos);
            v.clear();
            v
        } else {
            Vec::with_capacity(len)
        }
    }

    /// A zero-filled `Vec<f32>` of exactly `len` elements.
    fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take_f32(len);
        v.resize(len, 0.0);
        v
    }

    fn put_f32(&mut self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        let pos = self.f32s.partition_point(|x| x.capacity() < v.capacity());
        self.f32s.insert(pos, v);
    }

    /// An empty `Vec<usize>` with `capacity >= len`.
    fn take_usize(&mut self, len: usize) -> Vec<usize> {
        if len == 0 {
            return Vec::new();
        }
        let pos = self.usizes.partition_point(|v| v.capacity() < len);
        if pos < self.usizes.len() {
            let mut v = self.usizes.remove(pos);
            v.clear();
            v
        } else {
            Vec::with_capacity(len)
        }
    }

    fn put_usize(&mut self, v: Vec<usize>) {
        if v.capacity() == 0 {
            return;
        }
        let pos = self.usizes.partition_point(|x| x.capacity() < v.capacity());
        self.usizes.insert(pos, v);
    }
}

/// Dynamic autodiff tape.
///
/// Every method that takes `VarId` arguments appends a new node recording the
/// operation and its forward value; [`Tape::backward`] later replays the tape
/// in reverse to accumulate parameter gradients.
///
/// Tapes are arenas: [`Tape::recycle`] clears the node list while reclaiming
/// every owned buffer into an internal pool, so a long-lived tape reused
/// across forward passes reaches a steady state where recording a pass
/// performs no heap allocation at all (see the buffer-pool invariant on
/// `BufferPool`).
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufferPool,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the forward value of a variable.
    pub fn value(&self, id: VarId) -> &Tensor {
        value_of(&self.nodes, id)
    }

    /// Clears the tape for the next forward pass, reclaiming every owned
    /// node buffer (tensor data and per-op index vectors) into the tape's
    /// buffer pool. Node-list capacity is kept too, so a recycled tape
    /// records the next pass of the same model without allocating.
    ///
    /// Recycling is semantically identical to dropping the tape and calling
    /// [`Tape::new`] — only faster. Shared parameter leaves just drop their
    /// refcount; the [`ParamStore`] is untouched.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// for _ in 0..3 {
    ///     tape.recycle(); // no-op on the first pass, arena reset afterwards
    ///     let x = tape.constant(Tensor::ones(&[4, 4]));
    ///     let y = tape.relu(x);
    ///     assert_eq!(tape.value(y).shape(), &[4, 4]);
    /// }
    /// ```
    pub fn recycle(&mut self) {
        for node in self.nodes.drain(..) {
            if let Value::Owned(t) = node.value {
                self.pool.put_f32(t.into_vec());
            }
            match node.op {
                Op::GatherRows(_, idx)
                | Op::ScatterAddRows(_, idx)
                | Op::SegmentMeanRows(_, idx, _)
                | Op::SegmentSoftmax(_, idx, _) => self.pool.put_usize(idx),
                _ => {}
            }
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value: Value::Owned(value) });
        VarId(self.nodes.len() - 1)
    }

    /// Adds a constant (non-trainable) leaf, taking ownership of the tensor
    /// (its buffer joins the pool on [`Tape::recycle`]).
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(Op::Constant, value)
    }

    /// Adds a constant leaf by copying `value` into a pooled buffer —
    /// allocation-free on a warmed-up tape, unlike
    /// `tape.constant(value.clone())`.
    pub fn constant_copied(&mut self, value: &Tensor) -> VarId {
        let mut data = self.pool.take_f32(value.numel());
        data.extend_from_slice(value.data());
        let t = Tensor::from_shape(data, value.shape_c());
        self.push(Op::Constant, t)
    }

    /// Adds a scalar constant leaf from a pooled one-element buffer —
    /// allocation-free on a warmed-up tape, unlike
    /// `tape.constant(Tensor::scalar(value))`.
    pub fn scalar(&mut self, value: f32) -> VarId {
        self.push_scalar(Op::Constant, value)
    }

    /// Adds a zero-filled constant leaf from a pooled buffer —
    /// allocation-free on a warmed-up tape, unlike
    /// `tape.constant(Tensor::zeros(shape))`.
    pub fn zeros(&mut self, shape: &[usize]) -> VarId {
        let shape = Shape::from_dims(shape);
        let data = self.pool.take_zeroed(shape.numel());
        let t = Tensor::from_shape(data, shape);
        self.push(Op::Constant, t)
    }

    /// Imports a parameter from the store as a trainable leaf. The tensor is
    /// shared, not cloned: the leaf holds an `Arc` reference to the store's
    /// current value.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        let value = Arc::clone(store.value_arc(id));
        self.nodes.push(Node { op: Op::Param(id), value: Value::Shared(value) });
        VarId(self.nodes.len() - 1)
    }

    /// Records an element-wise binary op with a pooled output buffer.
    fn binary_zip(&mut self, op: Op, a: VarId, b: VarId, f: impl Fn(f32, f32) -> f32) -> VarId {
        let av = value_of(&self.nodes, a);
        let bv = value_of(&self.nodes, b);
        assert_eq!(av.shape(), bv.shape(), "shape mismatch: {:?} vs {:?}", av.shape(), bv.shape());
        let mut data = self.pool.take_f32(av.numel());
        let (av, bv) = (value_of(&self.nodes, a), value_of(&self.nodes, b));
        data.extend(av.data().iter().zip(bv.data()).map(|(&x, &y)| f(x, y)));
        let t = Tensor::from_shape(data, av.shape_c());
        self.push(op, t)
    }

    /// Records an element-wise unary op with a pooled output buffer.
    fn unary_map(&mut self, op: Op, a: VarId, f: impl Fn(f32) -> f32) -> VarId {
        let mut data = self.pool.take_f32(value_of(&self.nodes, a).numel());
        let av = value_of(&self.nodes, a);
        data.extend(av.data().iter().map(|&x| f(x)));
        let t = Tensor::from_shape(data, av.shape_c());
        self.push(op, t)
    }

    /// Element-wise addition of two variables with identical shapes.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.binary_zip(Op::Add(a, b), a, b, |x, y| x + y)
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        self.binary_zip(Op::Sub(a, b), a, b, |x, y| x - y)
    }

    /// Element-wise multiplication.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        self.binary_zip(Op::Mul(a, b), a, b, |x, y| x * y)
    }

    /// Adds a rank-1 bias of size `n` to every row of a `[m, n]` matrix.
    pub fn add_bias(&mut self, a: VarId, bias: VarId) -> VarId {
        self.add_bias_act(a, bias, FusedActivation::Identity)
    }

    /// Adds a rank-1 bias of size `n` to every row of a `[m, n]` matrix and
    /// applies `act` element-wise in the same pass.
    ///
    /// The per-element arithmetic is exactly `act(a[r][c] + bias[c])` — the
    /// same sequence of operations the unfused `add_bias` + activation pair
    /// performs — so fusing changes no bits, it only removes one full
    /// intermediate materialisation per dense layer.
    pub fn add_bias_act(&mut self, a: VarId, bias: VarId, act: FusedActivation) -> VarId {
        let av = value_of(&self.nodes, a);
        let bv = value_of(&self.nodes, bias);
        let (rows, cols) = (av.rows(), av.cols());
        assert_eq!(bv.numel(), cols, "bias size must equal number of columns");
        let mut data = self.pool.take_f32(rows * cols);
        let (av, bv) = (value_of(&self.nodes, a), value_of(&self.nodes, bias));
        for r in 0..rows {
            let a_row = &av.data()[r * cols..(r + 1) * cols];
            data.extend(a_row.iter().zip(bv.data()).map(|(&x, &b)| act.apply(x + b)));
        }
        let t = Tensor::from_shape(data, Shape::from_dims(&[rows, cols]));
        let op = match act {
            FusedActivation::Identity => Op::AddBias(a, bias),
            act => Op::AddBiasAct(a, bias, act),
        };
        self.push(op, t)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        self.unary_map(Op::Scale(a, s), a, |x| x * s)
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: VarId, s: f32) -> VarId {
        self.unary_map(Op::AddScalar(a), a, |x| x + s)
    }

    /// Negates every element.
    pub fn neg(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Neg(a), a, |x| -x)
    }

    /// Matrix multiplication of rank-2 variables (the tiled
    /// [`Tensor::matmul`] kernel over a pooled output buffer).
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let av = value_of(&self.nodes, a);
        let bv = value_of(&self.nodes, b);
        assert_eq!(av.shape().len(), 2, "matmul lhs must be rank-2, got {:?}", av.shape());
        assert_eq!(bv.shape().len(), 2, "matmul rhs must be rank-2, got {:?}", bv.shape());
        let (m, k) = (av.shape()[0], av.shape()[1]);
        let (k2, n) = (bv.shape()[0], bv.shape()[1]);
        assert_eq!(k, k2, "matmul inner dim mismatch: {} vs {}", k, k2);
        let mut out = self.pool.take_zeroed(m * n);
        let (av, bv) = (value_of(&self.nodes, a), value_of(&self.nodes, b));
        matmul_into(av.data(), bv.data(), &mut out, m, k, n);
        let t = Tensor::from_shape(out, Shape::from_dims(&[m, n]));
        self.push(Op::MatMul(a, b), t)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Relu(a), a, |x| x.max(0.0))
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        self.unary_map(Op::LeakyRelu(a, slope), a, |x| if x > 0.0 { x } else { slope * x })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Tanh(a), a, f32::tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Sigmoid(a), a, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Exp(a), a, f32::exp)
    }

    /// Element-wise natural logarithm.
    pub fn log(&mut self, a: VarId) -> VarId {
        self.unary_map(Op::Log(a), a, |x| x.max(1e-12).ln())
    }

    /// Records a scalar-valued op with a pooled one-element buffer.
    fn push_scalar(&mut self, op: Op, value: f32) -> VarId {
        let mut data = self.pool.take_f32(1);
        data.push(value);
        let t = Tensor::from_shape(data, Shape::from_dims(&[1]));
        self.push(op, t)
    }

    /// Sum of all elements, producing a scalar.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = value_of(&self.nodes, a).sum();
        self.push_scalar(Op::SumAll(a), v)
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = value_of(&self.nodes, a).mean();
        self.push_scalar(Op::MeanAll(a), v)
    }

    /// Accumulates the column sums of `a` into a pooled `[1, cols]` buffer.
    fn column_sums(&mut self, a: VarId) -> Vec<f32> {
        let av = value_of(&self.nodes, a);
        let (rows, cols) = (av.rows(), av.cols());
        let mut out = self.pool.take_zeroed(cols);
        let av = value_of(&self.nodes, a);
        for r in 0..rows {
            for (o, &x) in out.iter_mut().zip(&av.data()[r * cols..(r + 1) * cols]) {
                *o += x;
            }
        }
        out
    }

    /// Sums over the row axis, producing a `[1, cols]` matrix.
    pub fn sum_rows(&mut self, a: VarId) -> VarId {
        let out = self.column_sums(a);
        let cols = out.len();
        let t = Tensor::from_shape(out, Shape::from_dims(&[1, cols]));
        self.push(Op::SumRows(a), t)
    }

    /// Averages over the row axis, producing a `[1, cols]` matrix.
    ///
    /// The division is fused as an in-place `* (1/rows)` over the summed
    /// buffer — the same per-element arithmetic as the old sum-then-`scale`
    /// pair without the second allocation and pass.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let rows = value_of(&self.nodes, a).rows();
        let mut out = self.column_sums(a);
        let inv = 1.0 / rows.max(1) as f32;
        for x in &mut out {
            *x *= inv;
        }
        let cols = out.len();
        let t = Tensor::from_shape(out, Shape::from_dims(&[1, cols]));
        self.push(Op::MeanRows(a), t)
    }

    /// Copies a slice of row indices into a pooled index vector (the vector
    /// the op stores on the tape, reclaimed by [`Tape::recycle`]).
    fn pooled_indices(&mut self, indices: &[usize]) -> Vec<usize> {
        let mut idx = self.pool.take_usize(indices.len());
        idx.extend_from_slice(indices);
        idx
    }

    /// Concatenates two matrices with equal row counts along the column axis.
    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let av = value_of(&self.nodes, a);
        let bv = value_of(&self.nodes, b);
        let rows = av.rows();
        assert_eq!(bv.rows(), rows, "concat_cols row mismatch");
        let (ca, cb) = (av.cols(), bv.cols());
        let mut out = self.pool.take_f32(rows * (ca + cb));
        let (av, bv) = (value_of(&self.nodes, a), value_of(&self.nodes, b));
        for r in 0..rows {
            out.extend_from_slice(&av.data()[r * ca..(r + 1) * ca]);
            out.extend_from_slice(&bv.data()[r * cb..(r + 1) * cb]);
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[rows, ca + cb]));
        self.push(Op::ConcatCols(a, b), t)
    }

    /// Stacks matrices with equal column counts along the row axis.
    pub fn concat_rows(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let cols = value_of(&self.nodes, parts[0]).cols();
        let mut total_rows = 0;
        for &p in parts {
            let pv = value_of(&self.nodes, p);
            assert_eq!(pv.cols(), cols, "concat_rows column mismatch");
            total_rows += pv.rows();
        }
        let mut out = self.pool.take_f32(total_rows * cols);
        for &p in parts {
            out.extend_from_slice(value_of(&self.nodes, p).data());
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[total_rows, cols]));
        self.push(Op::ConcatRows(parts.to_vec()), t)
    }

    /// Gathers rows of a matrix by index (rows may repeat).
    pub fn gather_rows(&mut self, a: VarId, indices: &[usize]) -> VarId {
        let cols = value_of(&self.nodes, a).cols();
        let mut out = self.pool.take_f32(indices.len() * cols);
        let av = value_of(&self.nodes, a);
        for &idx in indices {
            out.extend_from_slice(&av.data()[idx * cols..(idx + 1) * cols]);
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[indices.len(), cols]));
        let idx = self.pooled_indices(indices);
        self.push(Op::GatherRows(a, idx), t)
    }

    /// Scatter-adds rows of a `[k, cols]` matrix into an `[out_rows, cols]`
    /// matrix according to `indices` (length `k`).
    pub fn scatter_add_rows(&mut self, a: VarId, indices: &[usize], out_rows: usize) -> VarId {
        let av = value_of(&self.nodes, a);
        let cols = av.cols();
        assert_eq!(av.rows(), indices.len(), "scatter_add_rows index length mismatch");
        let mut out = self.pool.take_zeroed(out_rows * cols);
        let av = value_of(&self.nodes, a);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < out_rows, "scatter index {} out of bounds ({})", idx, out_rows);
            let src = &av.data()[i * cols..(i + 1) * cols];
            for (o, &x) in out[idx * cols..(idx + 1) * cols].iter_mut().zip(src) {
                *o += x;
            }
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[out_rows, cols]));
        let idx = self.pooled_indices(indices);
        self.push(Op::ScatterAddRows(a, idx), t)
    }

    /// Segment-wise sum pooling over a batch index: sums the rows of a
    /// `[k, cols]` matrix that share a segment id into a `[num_segments,
    /// cols]` matrix. This is the readout primitive of block-diagonal batched
    /// graph encoding — `segments` maps each node row to its graph index, and
    /// the result holds one pooled row per graph.
    ///
    /// Rows of a segment are accumulated in row order, so a single-segment
    /// call is bit-identical to [`Tape::sum_rows`].
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// // Two graphs stacked row-wise: graph 0 has rows 0-1, graph 1 has row 2.
    /// let h = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]));
    /// let pooled = tape.segment_sum_rows(h, &[0, 0, 1], 2);
    /// assert_eq!(tape.value(pooled).data(), &[4.0, 6.0, 5.0, 6.0]);
    /// ```
    pub fn segment_sum_rows(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        self.scatter_add_rows(a, segments, num_segments)
    }

    /// Segment-wise mean pooling over a batch index: like
    /// [`Tape::segment_sum_rows`] but averaging each segment's rows. Empty
    /// segments produce zero rows.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// let h = tape.constant(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[2, 2]));
    /// let pooled = tape.segment_mean_rows(h, &[0, 0], 1);
    /// assert_eq!(tape.value(pooled).data(), &[3.0, 5.0]);
    /// ```
    pub fn segment_mean_rows(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        let av = value_of(&self.nodes, a);
        let cols = av.cols();
        assert_eq!(av.rows(), segments.len(), "segment_mean_rows index length mismatch");
        let mut counts = self.pool.take_usize(num_segments);
        counts.resize(num_segments, 0);
        for &s in segments {
            assert!(s < num_segments, "segment index {} out of bounds ({})", s, num_segments);
            counts[s] += 1;
        }
        let mut out = self.pool.take_zeroed(num_segments * cols);
        let av = value_of(&self.nodes, a);
        for (i, &s) in segments.iter().enumerate() {
            let src = &av.data()[i * cols..(i + 1) * cols];
            for (o, &x) in out[s * cols..(s + 1) * cols].iter_mut().zip(src) {
                *o += x;
            }
        }
        for (s, &count) in counts.iter().enumerate() {
            if count > 1 {
                let inv = 1.0 / count as f32;
                for x in &mut out[s * cols..(s + 1) * cols] {
                    *x *= inv;
                }
            }
        }
        self.pool.put_usize(counts);
        let t = Tensor::from_shape(out, Shape::from_dims(&[num_segments, cols]));
        let idx = self.pooled_indices(segments);
        self.push(Op::SegmentMeanRows(a, idx, num_segments), t)
    }

    /// Batched (stacked) matrix multiplication over row blocks: stacks `B`
    /// blocks of shape `[N_i, k]` into one `[sum N_i, k]` matrix and
    /// multiplies by a shared `[k, n]` right-hand side in a single matmul —
    /// the `[B, N, H]`-style batched matmul for running separately-held row
    /// blocks through one shared linear layer. (The graph encoder keeps its
    /// batches pre-stacked and calls [`Tape::matmul`] directly; this is the
    /// convenience form for callers holding per-block variables.) Each output
    /// row is computed exactly as it would be in a per-block matmul, so
    /// results are bit-identical to the serial path.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::{Tape, Tensor};
    ///
    /// let mut tape = Tape::new();
    /// let block_a = tape.constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 2]));
    /// let block_b = tape.constant(Tensor::from_vec(vec![0.0, 1.0, 1.0, 1.0], &[2, 2]));
    /// let rhs = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
    /// let out = tape.stacked_matmul(&[block_a, block_b], rhs);
    /// assert_eq!(tape.value(out).shape(), &[3, 2]);
    /// assert_eq!(tape.value(out).row(0), &[1.0, 2.0]);
    /// ```
    pub fn stacked_matmul(&mut self, blocks: &[VarId], rhs: VarId) -> VarId {
        let stacked = self.concat_rows(blocks);
        self.matmul(stacked, rhs)
    }

    /// Transposes a rank-2 variable, turning `[m, n]` into `[n, m]` (used to
    /// reshape a batched `[K, 1]` score column into a `[1, K]` logit row).
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let av = value_of(&self.nodes, a);
        assert_eq!(av.shape().len(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (av.shape()[0], av.shape()[1]);
        let mut out = self.pool.take_zeroed(m * n);
        let av = value_of(&self.nodes, a);
        for i in 0..m {
            for (j, &x) in av.data()[i * n..(i + 1) * n].iter().enumerate() {
                out[j * m + i] = x;
            }
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[n, m]));
        self.push(Op::Transpose(a), t)
    }

    /// Softmax over segments of a `[k, 1]` column vector: entries sharing the
    /// same segment id are normalised together. Used for GAT attention
    /// coefficients grouped by destination node.
    pub fn segment_softmax(&mut self, a: VarId, segments: &[usize], num_segments: usize) -> VarId {
        let av = value_of(&self.nodes, a);
        assert_eq!(av.cols(), 1, "segment_softmax expects a column vector");
        assert_eq!(av.rows(), segments.len(), "segment length mismatch");
        let shape = av.shape_c();
        // Pooled scratch: per-segment max, per-entry exp, per-segment sum.
        let mut seg_max = self.pool.take_f32(num_segments);
        seg_max.resize(num_segments, f32::NEG_INFINITY);
        let mut seg_sum = self.pool.take_zeroed(num_segments);
        let mut out = self.pool.take_f32(segments.len());
        let av = value_of(&self.nodes, a);
        for (i, &s) in segments.iter().enumerate() {
            seg_max[s] = seg_max[s].max(av.data()[i]);
        }
        for (i, &s) in segments.iter().enumerate() {
            let e = (av.data()[i] - seg_max[s]).exp();
            out.push(e);
            seg_sum[s] += e;
        }
        for (x, &s) in out.iter_mut().zip(segments) {
            *x /= seg_sum[s].max(1e-12);
        }
        self.pool.put_f32(seg_max);
        self.pool.put_f32(seg_sum);
        let t = Tensor::from_shape(out, shape);
        let idx = self.pooled_indices(segments);
        self.push(Op::SegmentSoftmax(a, idx, num_segments), t)
    }

    /// Multiplies each row of a `[k, n]` matrix by the matching entry of a
    /// `[k, 1]` column vector.
    pub fn broadcast_mul_col(&mut self, col: VarId, mat: VarId) -> VarId {
        let cv = value_of(&self.nodes, col);
        let mv = value_of(&self.nodes, mat);
        assert_eq!(cv.cols(), 1, "broadcast_mul_col expects a column vector");
        assert_eq!(cv.rows(), mv.rows(), "row mismatch");
        let (rows, cols) = (mv.rows(), mv.cols());
        let mut out = self.pool.take_f32(rows * cols);
        let (cv, mv) = (value_of(&self.nodes, col), value_of(&self.nodes, mat));
        for r in 0..rows {
            let s = cv.data()[r];
            out.extend(mv.data()[r * cols..(r + 1) * cols].iter().map(|&x| x * s));
        }
        let t = Tensor::from_shape(out, Shape::from_dims(&[rows, cols]));
        self.push(Op::BroadcastMulCol(col, mat), t)
    }

    /// Log-softmax over the flattened elements of a variable (treated as one
    /// categorical distribution).
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let av = value_of(&self.nodes, a);
        let max = av.max();
        let shape = av.shape_c();
        // One pooled pass for the exp-sum, one for the shifted outputs.
        let av = value_of(&self.nodes, a);
        let sum: f32 = av.data().iter().map(|&x| (x - max).exp()).sum();
        let log_sum = sum.ln() + max;
        let mut out = self.pool.take_f32(av.numel());
        let av = value_of(&self.nodes, a);
        out.extend(av.data().iter().map(|&x| x - log_sum));
        let t = Tensor::from_shape(out, shape);
        self.push(Op::LogSoftmaxRow(a), t)
    }

    /// Picks a single element by flat index, producing a scalar.
    pub fn pick(&mut self, a: VarId, index: usize) -> VarId {
        let v = value_of(&self.nodes, a).data()[index];
        self.push_scalar(Op::Pick(a, index), v)
    }

    /// Clamps every element to `[lo, hi]`; gradients are zero outside the range.
    pub fn clamp(&mut self, a: VarId, lo: f32, hi: f32) -> VarId {
        self.unary_map(Op::Clamp(a, lo, hi), a, |x| x.clamp(lo, hi))
    }

    /// Element-wise minimum of two variables.
    pub fn minimum(&mut self, a: VarId, b: VarId) -> VarId {
        self.binary_zip(Op::Minimum(a, b), a, b, f32::min)
    }

    /// Element-wise maximum of two variables.
    pub fn maximum(&mut self, a: VarId, b: VarId) -> VarId {
        self.binary_zip(Op::Maximum(a, b), a, b, f32::max)
    }

    /// Runs reverse-mode differentiation from `loss` (a scalar) and
    /// accumulates gradients of all parameters into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element variable.
    pub fn backward(&self, loss: VarId, store: &mut ParamStore) {
        self.backward_with(loss, &mut |pid, grad| store.accumulate(pid, grad));
    }

    /// Runs reverse-mode differentiation from `loss` (a scalar) and
    /// accumulates parameter gradients into a detached [`GradBuffer`]
    /// instead of a live [`ParamStore`].
    ///
    /// This is the worker-side primitive of the data-parallel PPO update:
    /// each worker evaluates its transition shard on a private tape over a
    /// snapshot-built replica and back-propagates into its own buffer, so no
    /// thread ever mutates the shared store. Accumulation is identical to
    /// [`Tape::backward`] (same reverse walk, same per-parameter add order),
    /// so backing a loss into a zeroed buffer and
    /// [`ParamStore::apply_grads`]-ing it produces bit-identical gradients
    /// to backing the same tape into a freshly zeroed store.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element variable, or when `grads`
    /// was built for a different architecture.
    pub fn backward_into(&self, loss: VarId, grads: &mut GradBuffer) {
        self.backward_with(loss, &mut |pid, grad| grads.accumulate(pid, grad));
    }

    /// The shared reverse walk behind [`Tape::backward`] and
    /// [`Tape::backward_into`]: `sink` receives every parameter-gradient
    /// contribution, in reverse tape order.
    fn backward_with(&self, loss: VarId, sink: &mut dyn FnMut(ParamId, &Tensor)) {
        assert_eq!(self.value(loss).numel(), 1, "backward requires a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let grad = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            match &node.op {
                Op::Constant => {}
                Op::Param(pid) => sink(*pid, &grad),
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, &grad);
                    accumulate(&mut grads, b.0, &grad);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, &grad);
                    accumulate(&mut grads, b.0, &grad.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = grad.mul(value_of(&self.nodes, *b));
                    let gb = grad.mul(value_of(&self.nodes, *a));
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::AddBias(a, bias) => {
                    accumulate(&mut grads, a.0, &grad);
                    let bias_value = value_of(&self.nodes, *bias);
                    let cols = bias_value.numel();
                    let rows = grad.numel() / cols;
                    let mut gb = Tensor::zeros(bias_value.shape());
                    for r in 0..rows {
                        for c in 0..cols {
                            gb.data_mut()[c] += grad.data()[r * cols + c];
                        }
                    }
                    accumulate(&mut grads, bias.0, &gb);
                }
                Op::AddBiasAct(a, bias, act) => {
                    // dz is the gradient at the pre-activation sum, derived
                    // from the fused output y (exact for every
                    // FusedActivation variant — see its rustdoc). The rest is
                    // the plain AddBias backward: dz flows to `a` unchanged
                    // and column-sums into the bias, the same arithmetic in
                    // the same order as the unfused op pair.
                    let act = *act;
                    let y = node.value.tensor();
                    let dz = grad.zip(y, |g, yv| act.grad_from_output(g, yv));
                    let bias_value = value_of(&self.nodes, *bias);
                    let cols = bias_value.numel();
                    let rows = dz.numel() / cols;
                    let mut gb = Tensor::zeros(bias_value.shape());
                    for r in 0..rows {
                        for c in 0..cols {
                            gb.data_mut()[c] += dz.data()[r * cols + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &dz);
                    accumulate(&mut grads, bias.0, &gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, a.0, &grad.scale(*s)),
                Op::AddScalar(a) => accumulate(&mut grads, a.0, &grad),
                Op::Neg(a) => accumulate(&mut grads, a.0, &grad.scale(-1.0)),
                Op::MatMul(a, b) => {
                    let av = value_of(&self.nodes, *a);
                    let bv = value_of(&self.nodes, *b);
                    // Transposed-operand kernels: bit-identical to
                    // `grad × bvᵀ` / `avᵀ × grad` with materialised
                    // transposes, without building either transpose.
                    let ga = grad.matmul_transposed_rhs(bv);
                    let gb = av.matmul_transposed_lhs(&grad);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Relu(a) => {
                    let av = value_of(&self.nodes, *a);
                    let ga = grad.zip(av, |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::LeakyRelu(a, slope) => {
                    let av = value_of(&self.nodes, *a);
                    let s = *slope;
                    let ga = grad.zip(av, |g, x| if x > 0.0 { g } else { s * g });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Tanh(a) => {
                    let yv = node.value.tensor();
                    let ga = grad.zip(yv, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Sigmoid(a) => {
                    let yv = node.value.tensor();
                    let ga = grad.zip(yv, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Exp(a) => {
                    let ga = grad.mul(node.value.tensor());
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Log(a) => {
                    let av = value_of(&self.nodes, *a);
                    let ga = grad.zip(av, |g, x| g / x.max(1e-12));
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SumAll(a) => {
                    let g = grad.item();
                    let ga = Tensor::full(value_of(&self.nodes, *a).shape(), g);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::MeanAll(a) => {
                    let n = value_of(&self.nodes, *a).numel().max(1) as f32;
                    let g = grad.item() / n;
                    let ga = Tensor::full(value_of(&self.nodes, *a).shape(), g);
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SumRows(a) | Op::MeanRows(a) => {
                    let av = value_of(&self.nodes, *a);
                    let (rows, cols) = (av.rows(), av.cols());
                    let scale =
                        if matches!(node.op, Op::MeanRows(_)) { 1.0 / rows.max(1) as f32 } else { 1.0 };
                    let mut ga = Tensor::zeros(&[rows, cols]);
                    for r in 0..rows {
                        for c in 0..cols {
                            ga.data_mut()[r * cols + c] = grad.data()[c] * scale;
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ConcatCols(a, b) => {
                    let av = value_of(&self.nodes, *a);
                    let bv = value_of(&self.nodes, *b);
                    let (rows, ca, cb) = (av.rows(), av.cols(), bv.cols());
                    let mut ga = Tensor::zeros(&[rows, ca]);
                    let mut gb = Tensor::zeros(&[rows, cb]);
                    let total = ca + cb;
                    for r in 0..rows {
                        for c in 0..ca {
                            ga.data_mut()[r * ca + c] = grad.data()[r * total + c];
                        }
                        for c in 0..cb {
                            gb.data_mut()[r * cb + c] = grad.data()[r * total + ca + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::ConcatRows(parts) => {
                    let cols = node.value.tensor().cols();
                    let mut offset = 0;
                    for &p in parts {
                        let rows = value_of(&self.nodes, p).rows();
                        let mut gp = Tensor::zeros(&[rows, cols]);
                        gp.data_mut().copy_from_slice(&grad.data()[offset * cols..(offset + rows) * cols]);
                        accumulate(&mut grads, p.0, &gp);
                        offset += rows;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let av = value_of(&self.nodes, *a);
                    let cols = av.cols();
                    let mut ga = Tensor::zeros(&[av.rows(), cols]);
                    for (i, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            ga.data_mut()[idx * cols + c] += grad.data()[i * cols + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::ScatterAddRows(a, indices) => {
                    let av = value_of(&self.nodes, *a);
                    let cols = av.cols();
                    let mut ga = Tensor::zeros(&[av.rows(), cols]);
                    for (i, &idx) in indices.iter().enumerate() {
                        for c in 0..cols {
                            ga.data_mut()[i * cols + c] = grad.data()[idx * cols + c];
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::SegmentMeanRows(a, segments, num_segments) => {
                    let av = value_of(&self.nodes, *a);
                    let cols = av.cols();
                    let mut counts = vec![0usize; *num_segments];
                    for &s in segments {
                        counts[s] += 1;
                    }
                    let mut ga = Tensor::zeros(av.shape());
                    for (i, &s) in segments.iter().enumerate() {
                        let inv = 1.0 / counts[s] as f32;
                        for c in 0..cols {
                            ga.data_mut()[i * cols + c] = grad.data()[s * cols + c] * inv;
                        }
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Transpose(a) => {
                    let (r, c) = (grad.rows(), grad.cols());
                    if r == 1 || c == 1 {
                        // A vector transpose permutes nothing: move the owned
                        // gradient buffer under the flipped shape instead of
                        // running a strided copy (the policy head's
                        // `[K + 1, 1]` → `[1, K + 1]` logit transpose hits
                        // this on every transition evaluation).
                        accumulate(&mut grads, a.0, &grad.into_reshape(&[c, r]));
                    } else {
                        accumulate(&mut grads, a.0, &grad.transpose());
                    }
                }
                Op::SegmentSoftmax(a, segments, num_segments) => {
                    let y = node.value.tensor();
                    // dL/dx_i = y_i * (g_i - sum_{j in seg(i)} g_j y_j)
                    let mut seg_dot = vec![0.0f32; *num_segments];
                    for (i, &s) in segments.iter().enumerate() {
                        seg_dot[s] += grad.data()[i] * y.data()[i];
                    }
                    let mut ga = Tensor::zeros(y.shape());
                    for (i, &s) in segments.iter().enumerate() {
                        ga.data_mut()[i] = y.data()[i] * (grad.data()[i] - seg_dot[s]);
                    }
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::BroadcastMulCol(col, mat) => {
                    let cv = value_of(&self.nodes, *col);
                    let mv = value_of(&self.nodes, *mat);
                    let cols = mv.cols();
                    let mut gcol = Tensor::zeros(cv.shape());
                    let mut gmat = Tensor::zeros(mv.shape());
                    for r in 0..mv.rows() {
                        let mut dot = 0.0;
                        for c in 0..cols {
                            dot += grad.data()[r * cols + c] * mv.data()[r * cols + c];
                            gmat.data_mut()[r * cols + c] = grad.data()[r * cols + c] * cv.data()[r];
                        }
                        gcol.data_mut()[r] = dot;
                    }
                    accumulate(&mut grads, col.0, &gcol);
                    accumulate(&mut grads, mat.0, &gmat);
                }
                Op::LogSoftmaxRow(a) => {
                    // y = x - logsumexp(x); dx = g - softmax(x) * sum(g)
                    let y = node.value.tensor();
                    let g_sum: f32 = grad.data().iter().sum();
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(y.data().iter())
                            .map(|(&g, &yv)| g - yv.exp() * g_sum)
                            .collect(),
                        y.shape(),
                    );
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Pick(a, index) => {
                    let av = value_of(&self.nodes, *a);
                    let mut ga = Tensor::zeros(av.shape());
                    ga.data_mut()[*index] = grad.item();
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Clamp(a, lo, hi) => {
                    let av = value_of(&self.nodes, *a);
                    let (lo, hi) = (*lo, *hi);
                    let ga = grad.zip(av, |g, x| if x > lo && x < hi { g } else { 0.0 });
                    accumulate(&mut grads, a.0, &ga);
                }
                Op::Minimum(a, b) => {
                    let av = value_of(&self.nodes, *a);
                    let bv = value_of(&self.nodes, *b);
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&g, (&x, &y))| if x <= y { g } else { 0.0 })
                            .collect(),
                        av.shape(),
                    );
                    let gb = grad.sub(&ga);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
                Op::Maximum(a, b) => {
                    let av = value_of(&self.nodes, *a);
                    let bv = value_of(&self.nodes, *b);
                    let ga = Tensor::from_vec(
                        grad.data()
                            .iter()
                            .zip(av.data().iter().zip(bv.data().iter()))
                            .map(|(&g, (&x, &y))| if x >= y { g } else { 0.0 })
                            .collect(),
                        av.shape(),
                    );
                    let gb = grad.sub(&ga);
                    accumulate(&mut grads, a.0, &ga);
                    accumulate(&mut grads, b.0, &gb);
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, grad: &Tensor) {
    match &mut grads[idx] {
        Some(g) => *g = g.add(grad),
        slot @ None => *slot = Some(grad.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks the gradient of a scalar function of one parameter.
    fn check_gradient(
        build: impl Fn(&mut Tape, &ParamStore, ParamId) -> VarId,
        initial: Tensor,
        tolerance: f32,
    ) {
        let mut store = ParamStore::new();
        let pid = store.register("p", initial.clone());

        let mut tape = Tape::new();
        let x = tape.param(&store, pid);
        let loss = build(&mut tape, &store, pid);
        let _ = x;
        store.zero_grad();
        tape.backward(loss, &mut store);
        let analytic = store.grad(pid).clone();

        let eps = 1e-3;
        for i in 0..initial.numel() {
            let mut plus = initial.clone();
            plus.data_mut()[i] += eps;
            let mut minus = initial.clone();
            minus.data_mut()[i] -= eps;

            let eval = |t: &Tensor| -> f32 {
                let mut s = ParamStore::new();
                let pid = s.register("p", t.clone());
                let mut tape = Tape::new();
                let loss = build(&mut tape, &s, pid);
                tape.value(loss).item()
            };
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tolerance * numeric.abs().max(1.0),
                "gradient mismatch at {}: analytic={}, numeric={}",
                i,
                a,
                numeric
            );
        }
    }

    /// One Adam-driven training step on a tiny store, used by the
    /// exact-resume tests below.
    fn adam_step_on(store: &mut ParamStore, adam: &mut Adam, pid: ParamId, grad: f32) {
        store.zero_grad();
        store.accumulate(pid, &Tensor::from_vec(vec![grad], &[1]));
        adam.step(store);
    }

    #[test]
    fn adam_snapshot_round_trip_resumes_bit_identically() {
        let mut store = ParamStore::new();
        let mut adam = Adam::new(0.1);
        let pid = store.register("w", Tensor::from_vec(vec![1.0], &[1]));
        adam_step_on(&mut store, &mut adam, pid, 0.5);
        adam_step_on(&mut store, &mut adam, pid, -0.25);

        // Capture the complete optimiser state mid-run.
        let params = store.snapshot();
        let (m, v) = store.adam_snapshot();
        let steps = adam.steps();

        // Continue the original run two more steps.
        adam_step_on(&mut store, &mut adam, pid, 0.125);
        adam_step_on(&mut store, &mut adam, pid, 0.0625);
        let uninterrupted = store.value(pid).data().to_vec();

        // Restore into a fresh store and replay the same two steps.
        let mut resumed = ParamStore::new();
        let mut resumed_adam = Adam::new(0.1);
        let rid = resumed.register("w", Tensor::from_vec(vec![0.0], &[1]));
        resumed.load_snapshot(&params).unwrap();
        resumed.load_adam_snapshot(&m, &v).unwrap();
        resumed_adam.set_steps(steps);
        adam_step_on(&mut resumed, &mut resumed_adam, rid, 0.125);
        adam_step_on(&mut resumed, &mut resumed_adam, rid, 0.0625);

        assert_eq!(
            uninterrupted.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            resumed.value(rid).data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "resumed Adam state must continue bit-identically"
        );
    }

    #[test]
    fn load_adam_snapshot_is_all_or_nothing() {
        let mut store = ParamStore::new();
        let mut adam = Adam::new(0.1);
        let pid = store.register("w", Tensor::from_vec(vec![1.0], &[1]));
        adam_step_on(&mut store, &mut adam, pid, 0.5);
        let (good_m, good_v) = store.adam_snapshot();

        // Second moments from a different architecture: nothing may be
        // adopted, not even the (valid) first moments.
        let bad_v = ParamSnapshot::new(vec![("w".into(), Tensor::zeros(&[2]))]);
        let before = store.adam_snapshot();
        assert!(matches!(
            store.load_adam_snapshot(&good_m, &bad_v),
            Err(SnapshotError::ShapeMismatch { .. })
        ));
        let after = store.adam_snapshot();
        assert_eq!(before.0.entries()[0].1.data(), after.0.entries()[0].1.data());
        assert_eq!(before.1.entries()[0].1.data(), after.1.entries()[0].1.data());

        // Wrong name errors too.
        let bad_name = ParamSnapshot::new(vec![("b".into(), Tensor::zeros(&[1]))]);
        assert!(matches!(
            store.load_adam_snapshot(&bad_name, &good_v),
            Err(SnapshotError::NameMismatch { .. })
        ));
        // Wrong count errors.
        let empty = ParamSnapshot::new(vec![]);
        assert!(matches!(
            store.load_adam_snapshot(&empty, &good_v),
            Err(SnapshotError::CountMismatch { .. })
        ));
    }

    #[test]
    fn grad_of_square() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let y = tape.mul(x, x);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![2.0, -3.0], &[2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_matmul_chain() {
        check_gradient(
            |tape, store, pid| {
                let w = tape.param(store, pid);
                let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]));
                let y = tape.matmul(x, w);
                let z = tape.relu(y);
                tape.sum_all(z)
            },
            Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.3, -1.0, 0.7], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_tanh_sigmoid_exp_log() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let t = tape.tanh(x);
                let s = tape.sigmoid(t);
                let e = tape.exp(s);
                let l = tape.log(e);
                tape.sum_all(l)
            },
            Tensor::from_vec(vec![0.2, -0.7, 1.5], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_log_softmax_pick() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let ls = tape.log_softmax(x);
                tape.pick(ls, 1)
            },
            Tensor::from_vec(vec![0.1, 0.9, -0.3, 0.4], &[1, 4]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_gather_scatter() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let g = tape.gather_rows(x, &[0, 1, 1, 2]);
                let s = tape.scatter_add_rows(g, &[0, 0, 1, 1], 2);
                let sq = tape.mul(s, s);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_segment_softmax() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let sm = tape.segment_softmax(x, &[0, 0, 1, 1, 1], 2);
                let w = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5], &[5, 1]));
                let y = tape.mul(sm, w);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1, -0.5], &[5, 1]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_bias_and_concat() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let b = tape.constant(Tensor::from_vec(vec![0.5, -0.5], &[2]));
                let y = tape.add_bias(x, b);
                let z = tape.concat_cols(x, y);
                let s = tape.mul(z, z);
                tape.sum_all(s)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_fused_bias_activations() {
        for act in [
            FusedActivation::Identity,
            FusedActivation::Relu,
            FusedActivation::LeakyRelu(0.2),
            FusedActivation::Tanh,
            FusedActivation::Sigmoid,
        ] {
            check_gradient(
                |tape, store, pid| {
                    let x = tape.param(store, pid);
                    let b = tape.constant(Tensor::from_vec(vec![0.4, -0.3], &[2]));
                    let y = tape.add_bias_act(x, b, act);
                    let sq = tape.mul(y, y);
                    tape.sum_all(sq)
                },
                Tensor::from_vec(vec![0.7, -1.2, 0.5, 2.0], &[2, 2]),
                1e-2,
            );
        }
    }

    /// The fused bias+activation op must match the unfused pair to the bit,
    /// both forward and backward.
    fn assert_fused_matches_unfused(act: FusedActivation, apply_unfused: impl Fn(&mut Tape, VarId) -> VarId) {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::from_vec(vec![0.5, -1.5, 2.0, -0.25, 0.0, 1.0], &[3, 2]));
        let b = store.register("b", Tensor::from_vec(vec![0.3, -0.6], &[2]));

        let mut fused_tape = Tape::new();
        let xf = fused_tape.param(&store, x);
        let bf = fused_tape.param(&store, b);
        let yf = fused_tape.add_bias_act(xf, bf, act);
        let lossf = fused_tape.sum_all(yf);
        let mut fused_grads = GradBuffer::zeros_like(&store);
        fused_tape.backward_into(lossf, &mut fused_grads);

        let mut tape = Tape::new();
        let xu = tape.param(&store, x);
        let bu = tape.param(&store, b);
        let z = tape.add_bias(xu, bu);
        let yu = apply_unfused(&mut tape, z);
        let lossu = tape.sum_all(yu);
        let mut grads = GradBuffer::zeros_like(&store);
        tape.backward_into(lossu, &mut grads);

        let (fv, uv) = (fused_tape.value(yf), tape.value(yu));
        assert_eq!(fv.shape(), uv.shape());
        for (a, b) in fv.data().iter().zip(uv.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{act:?}: fused forward diverges");
        }
        for pid in [x, b] {
            for (a, b) in fused_grads.grad(pid).data().iter().zip(grads.grad(pid).data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{act:?}: fused backward diverges");
            }
        }
    }

    #[test]
    fn fused_bias_activation_is_bit_identical_to_unfused() {
        assert_fused_matches_unfused(FusedActivation::Relu, |t, z| t.relu(z));
        assert_fused_matches_unfused(FusedActivation::LeakyRelu(0.2), |t, z| t.leaky_relu(z, 0.2));
        assert_fused_matches_unfused(FusedActivation::Tanh, |t, z| t.tanh(z));
        assert_fused_matches_unfused(FusedActivation::Sigmoid, |t, z| t.sigmoid(z));
    }

    /// A recycled tape must reproduce the exact bits of a fresh tape: the
    /// pool changes where buffers come from, never what is computed.
    #[test]
    fn recycled_tape_is_bit_identical_to_fresh() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], &[2, 2]));

        let run = |tape: &mut Tape, store: &mut ParamStore| -> (Vec<f32>, Vec<f32>) {
            let wv = tape.param(store, w);
            let x = tape.constant_copied(&Tensor::from_vec(vec![1.0, 2.0, -3.0, 0.5], &[2, 2]));
            let h = tape.matmul(x, wv);
            let g = tape.gather_rows(h, &[1, 0, 1]);
            let s = tape.scatter_add_rows(g, &[0, 1, 0], 2);
            let proj = tape.constant_copied(&Tensor::from_vec(vec![0.5, -0.75], &[2, 1]));
            let col = tape.matmul(s, proj);
            let sm = tape.segment_softmax(col, &[0, 0], 1);
            let weighted = tape.broadcast_mul_col(sm, s);
            let pooled = tape.mean_rows(weighted);
            let loss = tape.sum_all(pooled);
            store.zero_grad();
            tape.backward(loss, store);
            (tape.value(loss).data().to_vec(), store.grad(w).data().to_vec())
        };

        let mut fresh = Tape::new();
        let (loss_fresh, grad_fresh) = run(&mut fresh, &mut store);

        let mut recycled = Tape::new();
        for _ in 0..3 {
            recycled.recycle();
            let (loss_r, grad_r) = run(&mut recycled, &mut store);
            assert_eq!(
                loss_r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                loss_fresh.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                grad_r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                grad_fresh.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn zero_filled_buffer_matches_fresh_buffer() {
        let (store, w, _, tape, loss) = grad_buffer_fixture();
        let mut fresh = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut fresh);

        let mut reused = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut reused); // dirty it
        reused.zero_fill();
        tape.backward_into(loss, &mut reused);
        assert_eq!(fresh, reused);
        assert_eq!(fresh.grad(w).data(), reused.grad(w).data());
    }

    #[test]
    fn grad_of_minimum_clamp() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let c = tape.constant(Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]));
                let m = tape.minimum(x, c);
                let cl = tape.clamp(m, -0.4, 0.45);
                tape.sum_all(cl)
            },
            Tensor::from_vec(vec![0.2, 0.7, -0.6], &[3]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_broadcast_mul_col() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let col = tape.constant(Tensor::from_vec(vec![2.0, -1.0], &[2, 1]));
                let y = tape.broadcast_mul_col(col, x);
                tape.sum_all(y)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_segment_sum_and_mean_rows() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let pooled = tape.segment_sum_rows(x, &[0, 0, 1], 2);
                let sq = tape.mul(pooled, pooled);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let pooled = tape.segment_mean_rows(x, &[0, 0, 1], 2);
                let sq = tape.mul(pooled, pooled);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_transpose_and_stacked_matmul() {
        check_gradient(
            |tape, store, pid| {
                let x = tape.param(store, pid);
                let t = tape.transpose(x);
                let rhs = tape.constant(Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 1.5, -1.0], &[3, 2]));
                let y = tape.stacked_matmul(&[t, t], rhs);
                let sq = tape.mul(y, y);
                tape.sum_all(sq)
            },
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]),
            1e-2,
        );
    }

    #[test]
    fn segment_sum_rows_matches_sum_rows_for_one_segment() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.5, -2.0, 0.25, 4.0, 3.0, -1.0], &[3, 2]));
        let seg = tape.segment_sum_rows(x, &[0, 0, 0], 1);
        let sum = tape.sum_rows(x);
        assert_eq!(tape.value(seg), tape.value(sum));
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![10.0, -4.0], &[2]));
        let mut adam = Adam::new(0.2);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let target = tape.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
            let diff = tape.sub(wv, target);
            let sq = tape.mul(diff, diff);
            let loss = tape.sum_all(sq);
            store.zero_grad();
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        let v = store.value(w);
        assert!((v.data()[0] - 1.0).abs() < 0.05, "got {:?}", v);
        assert!((v.data()[1] - 2.0).abs() < 0.05, "got {:?}", v);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
        let mut sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let sq = tape.mul(wv, wv);
            let loss = tape.sum_all(sq);
            store.zero_grad();
            tape.backward(loss, &mut store);
            sgd.step(&mut store);
        }
        assert!(store.value(w).item().abs() < 1e-3);
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![100.0, 100.0], &[2]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        tape.backward(loss, &mut store);
        assert!(store.grad_norm() > 10.0);
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn param_store_bookkeeping() {
        let mut store = ParamStore::new();
        assert!(store.is_empty());
        let a = store.register("a", Tensor::zeros(&[2, 3]));
        let b = store.register("b", Tensor::zeros(&[4]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.name(b), "b");
        store.set_value(b, Tensor::ones(&[4]));
        assert_eq!(store.value(b).sum(), 4.0);
    }

    /// Builds a two-parameter store plus a tape computing a loss touching
    /// both parameters (one of them twice, so accumulation order matters).
    fn grad_buffer_fixture() -> (ParamStore, ParamId, ParamId, Tape, VarId) {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![1.5, -2.0], &[2]));
        let b = store.register("b", Tensor::from_vec(vec![0.5], &[1]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let wv2 = tape.param(&store, w);
        let bv = tape.param(&store, b);
        let prod = tape.mul(wv, wv2);
        let sum = tape.sum_all(prod);
        let bsq = tape.mul(bv, bv);
        let bloss = tape.sum_all(bsq);
        let loss = tape.add(sum, bloss);
        (store, w, b, tape, loss)
    }

    #[test]
    fn backward_into_matches_backward_bit_for_bit() {
        let (mut store, w, b, tape, loss) = grad_buffer_fixture();
        store.zero_grad();
        tape.backward(loss, &mut store);
        let mut buffer = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut buffer);
        assert_eq!(store.grad(w).data(), buffer.grad(w).data());
        assert_eq!(store.grad(b).data(), buffer.grad(b).data());
        assert_eq!(store.grad_norm().to_bits(), buffer.norm().to_bits());
    }

    #[test]
    fn grad_buffer_merge_accumulates_in_order() {
        let (store, w, b, tape, loss) = grad_buffer_fixture();
        let mut single = GradBuffer::zeros_like(&store);
        tape.backward_into(loss, &mut single);

        // Merging k copies in index order equals k sequential accumulations
        // of the same contribution.
        let mut acc = GradBuffer::zeros_like(&store);
        let mut expected_w = Tensor::zeros(&[2]);
        let mut expected_b = Tensor::zeros(&[1]);
        for _ in 0..3 {
            acc.merge(&single);
            expected_w = expected_w.add(single.grad(w));
            expected_b = expected_b.add(single.grad(b));
        }
        assert_eq!(acc.grad(w).data(), expected_w.data());
        assert_eq!(acc.grad(b).data(), expected_b.data());
        assert_eq!(acc.len(), store.len());
        assert!(!acc.is_empty());
    }

    #[test]
    fn apply_grads_overwrites_the_store_gradients() {
        let (mut store, w, b, tape, loss) = grad_buffer_fixture();
        // Pre-existing gradients must not leak into the applied result.
        store.zero_grad();
        tape.backward(loss, &mut store);
        let mut buffer = GradBuffer::zeros_like(&store);
        buffer.accumulate(w, &Tensor::from_vec(vec![1.0, 2.0], &[2]));
        store.apply_grads(&buffer);
        assert_eq!(store.grad(w).data(), &[1.0, 2.0]);
        assert_eq!(store.grad(b).data(), &[0.0]);
        assert_eq!(store.grad_norm().to_bits(), buffer.norm().to_bits());
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn apply_grads_rejects_mismatched_buffers() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[2]));
        let other = ParamStore::new();
        let buffer = GradBuffer::zeros_like(&other);
        store.apply_grads(&buffer);
    }

    #[test]
    fn gradients_flow_through_shared_parameter() {
        // The same parameter used twice must accumulate both contributions.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![3.0], &[1]));
        let mut tape = Tape::new();
        let a = tape.param(&store, w);
        let b = tape.param(&store, w);
        let prod = tape.mul(a, b); // w^2 -> grad 2w = 6
        let loss = tape.sum_all(prod);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!((store.grad(w).item() - 6.0).abs() < 1e-5);
    }
}
