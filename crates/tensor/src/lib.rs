//! # xrlflow-tensor
//!
//! Dense tensors, a dynamic reverse-mode autodiff tape, neural-network
//! building blocks and deterministic random number generation for the
//! X-RLflow reproduction.
//!
//! The X-RLflow agent (MLSys 2023) encodes a *changing* dataflow graph at
//! every environment step, so its computation graph cannot be compiled
//! ahead of time. This crate therefore provides a per-forward-pass [`Tape`]:
//! operations append nodes, [`Tape::backward`] accumulates gradients into a
//! persistent [`ParamStore`], and [`Adam`] updates the stored parameters —
//! mirroring the JAX/jraph stack used by the paper with a pure-Rust,
//! dependency-free implementation.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_tensor::{Adam, Activation, Mlp, ParamStore, Tape, Tensor, XorShiftRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = XorShiftRng::new(0);
//! let mlp = Mlp::new(&mut store, "head", &[4, 8, 1], &mut rng);
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::ones(&[2, 4]));
//! let y = mlp.forward(&mut tape, &store, x);
//! assert_eq!(tape.value(y).shape(), &[2, 1]);
//! # let _ = Activation::Relu;
//! # let _ = Adam::new(1e-3);
//! ```

#![warn(missing_docs)]

mod fsio;
mod nn;
mod rng;
mod snapshot;
mod tape;
mod tensor;

pub use fsio::{atomic_write, is_atomic_temp_file};
pub use nn::{xavier_uniform, Activation, Linear, Mlp};
pub use rng::{splitmix64, XorShiftRng};
pub use snapshot::{ParamSnapshot, SnapshotError};
pub use tape::{Adam, FusedActivation, GradBuffer, ParamId, ParamStore, Sgd, Tape, VarId};
pub use tensor::Tensor;
