//! Dense, row-major `f32` tensor used by the autodiff tape and the GNN.
//!
//! The tensor type is intentionally small: the X-RLflow agent only needs
//! rank-1/rank-2 tensors (node-feature matrices, weight matrices, logits),
//! so this module favours clarity and predictable performance over
//! generality.

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{:.4}, {:.4}, ..; {}])", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements does not match the product of the
    /// shape dimensions.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(data.len(), numel, "data length {} does not match shape {:?}", data.len(), shape);
        Self { shape: shape.to_vec(), data }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![0.0; numel] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![1.0; numel] }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; numel] }
    }

    /// Creates a scalar (rank-0 represented as shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![1], data: vec![value] }
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the number of rows when the tensor is interpreted as a matrix.
    ///
    /// Rank-1 tensors are interpreted as a single row.
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            0 | 1 => 1,
            _ => self.shape[0],
        }
    }

    /// Returns the number of columns when the tensor is interpreted as a matrix.
    pub fn cols(&self) -> usize {
        match self.shape.len() {
            0 => 1,
            1 => self.shape[0],
            _ => self.shape[1..].iter().product(),
        }
    }

    /// Returns a slice of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable slice of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at the given multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at the given multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&idx, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            assert!(idx < dim, "index {} out of bounds for dim {} (size {})", idx, i, dim);
            flat = flat * dim + idx;
        }
        flat
    }

    /// Returns the value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    /// Reshapes the tensor without changing its data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.data.len(), "reshape numel mismatch");
        Self { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// Returns a row of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the row is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() requires a rank-2 tensor");
        let c = self.shape[1];
        &self.data[r * c..(r + 1) * c]
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// In-place element-wise addition: `self[i] = self[i] + other[i]`.
    ///
    /// The same arithmetic as [`Tensor::add`] (bit-identical results) with
    /// no allocation — the accumulation primitive of gradient buffers, where
    /// a fresh tensor per parameter per merge would dominate the update's
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch: {:?} vs {:?}", self.shape, other.shape);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise binary operation between tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch: {:?} vs {:?}", self.shape, other.shape);
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Matrix multiplication of two rank-2 tensors (`[m, k] x [k, n] -> [m, n]`).
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Self {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dim mismatch: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Self { shape: vec![m, n], data: out }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { shape: vec![n, m], data: out }
    }

    /// Concatenates rank-2 tensors along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not share the same number of rows or the
    /// input slice is empty.
    pub fn concat_cols(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "concat_cols requires at least one tensor");
        let rows = tensors[0].rows();
        for t in tensors {
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
        }
        let total_cols: usize = tensors.iter().map(|t| t.cols()).sum();
        let mut out = vec![0.0f32; rows * total_cols];
        for r in 0..rows {
            let mut offset = 0;
            for t in tensors {
                let c = t.cols();
                out[r * total_cols + offset..r * total_cols + offset + c]
                    .copy_from_slice(&t.data[r * c..(r + 1) * c]);
                offset += c;
            }
        }
        Self { shape: vec![rows, total_cols], data: out }
    }

    /// Stacks rank-2 tensors (or rank-1 rows) along the row axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not share the same number of columns or the
    /// input slice is empty.
    pub fn concat_rows(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "concat_rows requires at least one tensor");
        let cols = tensors[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for t in tensors {
            assert_eq!(t.cols(), cols, "concat_rows column mismatch");
            data.extend_from_slice(&t.data);
            rows += t.rows();
        }
        Self { shape: vec![rows, cols], data }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_get() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sq_norm(), 14.0);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);

        let d = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(d.shape(), &[4, 2]);
        assert_eq!(d.row(3), &[3.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
