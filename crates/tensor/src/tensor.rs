//! Dense, row-major `f32` tensor used by the autodiff tape and the GNN.
//!
//! The tensor type is intentionally small: the X-RLflow agent only needs
//! rank-1/rank-2 tensors (node-feature matrices, weight matrices, logits),
//! so this module favours clarity and predictable performance over
//! generality.
//!
//! ## Hot-path kernels
//!
//! [`Tensor::matmul`] and its transposed-operand variants
//! ([`Tensor::matmul_transposed_rhs`], [`Tensor::matmul_transposed_lhs`])
//! share slice-level kernels with the tape, so the serial oracles and the
//! parallel paths run the *same* floating-point code. Every kernel
//! accumulates each output element as one running sum over the inner
//! dimension in ascending order — the exact per-element arithmetic of the
//! naive triple loop ([`Tensor::matmul_naive`]) — so tiling changes memory
//! traffic, never bits. The kernels contain no value-dependent branches:
//! `0.0 * inf` and `0.0 * NaN` propagate NaN per IEEE 754 (the previous
//! kernel's zero-skip silently dropped them).

use std::fmt;

/// Maximum tensor rank supported by the inline shape representation.
pub(crate) const MAX_RANK: usize = 4;

/// Inline fixed-capacity shape: dimensions live in the tensor itself, so
/// constructing a tensor from a pooled data buffer performs zero heap
/// allocations. Unused trailing dims are zeroed, keeping derived equality
/// exact.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    pub(crate) fn from_dims(dims: &[usize]) -> Self {
        assert!(dims.len() <= MAX_RANK, "tensors support at most rank {MAX_RANK}, got {dims:?}");
        let mut out = [0usize; MAX_RANK];
        out[..dims.len()].copy_from_slice(dims);
        Self { dims: out, rank: dims.len() as u8 }
    }

    pub(crate) fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    pub(crate) fn numel(&self) -> usize {
        self.as_slice().iter().product()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use xrlflow_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{:.4}, {:.4}, ..; {}])", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the number of elements does not match the product of the
    /// shape dimensions.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::from_shape(data, Shape::from_dims(shape))
    }

    /// Creates a tensor from a flat vector and an inline [`Shape`]. This is
    /// the allocation-free construction path the tape's buffer pool uses:
    /// `data` is typically a recycled buffer and `Shape` is `Copy`.
    pub(crate) fn from_shape(data: Vec<f32>, shape: Shape) -> Self {
        assert_eq!(data.len(), shape.numel(), "data length {} does not match shape {:?}", data.len(), shape);
        Self { shape, data }
    }

    /// The tensor's inline shape (`Copy`, for rebuilding same-shaped tensors
    /// without borrowing issues).
    pub(crate) fn shape_c(&self) -> Shape {
        self.shape
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from_dims(shape);
        Self { data: vec![0.0; shape.numel()], shape }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let shape = Shape::from_dims(shape);
        Self { data: vec![1.0; shape.numel()], shape }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::from_dims(shape);
        Self { data: vec![value; shape.numel()], shape }
    }

    /// Creates a scalar (rank-0 represented as shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Self { shape: Shape::from_dims(&[1]), data: vec![value] }
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the number of rows when the tensor is interpreted as a matrix.
    ///
    /// Rank-1 tensors are interpreted as a single row.
    pub fn rows(&self) -> usize {
        match self.shape.rank {
            0 | 1 => 1,
            _ => self.shape.dims[0],
        }
    }

    /// Returns the number of columns when the tensor is interpreted as a matrix.
    pub fn cols(&self) -> usize {
        match self.shape.rank {
            0 => 1,
            1 => self.shape.dims[0],
            _ => self.shape.as_slice()[1..].iter().product(),
        }
    }

    /// Returns a slice of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns a mutable slice of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at the given multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at the given multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        let shape = self.shape.as_slice();
        assert_eq!(index.len(), shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&idx, &dim)) in index.iter().zip(shape.iter()).enumerate() {
            assert!(idx < dim, "index {} out of bounds for dim {} (size {})", idx, i, dim);
            flat = flat * dim + idx;
        }
        flat
    }

    /// Returns the value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    /// Reshapes the tensor without changing its data, deep-copying the data.
    ///
    /// Prefer [`Tensor::into_reshape`] when the original tensor is no longer
    /// needed — it moves the buffer instead of copying it.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        self.clone().into_reshape(shape)
    }

    /// Consuming reshape: reinterprets the existing buffer under a new shape
    /// with zero copies and zero allocations.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_tensor::Tensor;
    ///
    /// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let flat = t.into_reshape(&[4]);
    /// assert_eq!(flat.shape(), &[4]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn into_reshape(self, shape: &[usize]) -> Self {
        let shape = Shape::from_dims(shape);
        assert_eq!(shape.numel(), self.data.len(), "reshape numel mismatch");
        Self { shape, data: self.data }
    }

    /// Returns a row of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or the row is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank, 2, "row() requires a rank-2 tensor");
        let c = self.shape.dims[1];
        &self.data[r * c..(r + 1) * c]
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// In-place element-wise addition: `self[i] = self[i] + other[i]`.
    ///
    /// The same arithmetic as [`Tensor::add`] (bit-identical results) with
    /// no allocation — the accumulation primitive of gradient buffers, where
    /// a fresh tensor per parameter per merge would dominate the update's
    /// hot path.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch: {:?} vs {:?}", self.shape, other.shape);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise binary operation between tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch: {:?} vs {:?}", self.shape, other.shape);
        Self {
            shape: self.shape,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize, usize) {
        assert_eq!(self.shape.rank, 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.shape.rank, 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, k) = (self.shape.dims[0], self.shape.dims[1]);
        let (k2, n) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(k, k2, "matmul inner dim mismatch: {} vs {}", k, k2);
        (m, k, n)
    }

    /// Matrix multiplication of two rank-2 tensors (`[m, k] x [k, n] -> [m, n]`).
    ///
    /// Runs the register-tiled kernel; results are
    /// bit-identical to [`Tensor::matmul_naive`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Self {
        let (m, k, n) = self.matmul_dims(other);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&self.data, &other.data, &mut out, m, k, n);
        Self { shape: Shape::from_dims(&[m, n]), data: out }
    }

    /// The reference matrix multiplication: the plain triple loop, kept as
    /// the differential-testing oracle for the tiled kernels. Unlike the
    /// kernel this used to be, it does **not** skip zero elements of the
    /// left-hand side — `0.0 * inf` and `0.0 * NaN` must produce NaN.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul_naive(&self, other: &Tensor) -> Self {
        let (m, k, n) = self.matmul_dims(other);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a * other.data[p * n + j];
                }
            }
        }
        Self { shape: Shape::from_dims(&[m, n]), data: out }
    }

    /// `self × otherᵀ` without the caller materialising the transpose:
    /// `self` is `[m, q]`, `other` is `[n, q]`, and the result `[m, n]`
    /// satisfies `out[i][j] = Σ_p self[i][p] * other[j][p]` with `p`
    /// ascending — the exact bits of `self.matmul(&other.transpose())`.
    /// The kernel picks a packing or dot-product strategy by shape (see
    /// the internal kernel); the choice never changes the bits.
    /// The matmul backward pass's `grad × Bᵀ` product runs through this.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the shared inner dimensions
    /// differ.
    pub fn matmul_transposed_rhs(&self, other: &Tensor) -> Self {
        assert_eq!(self.shape.rank, 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.shape.rank, 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, q) = (self.shape.dims[0], self.shape.dims[1]);
        let (n, q2) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(q, q2, "matmul inner dim mismatch: {} vs {}", q, q2);
        let mut out = vec![0.0f32; m * n];
        matmul_transposed_rhs_into(&self.data, &other.data, &mut out, m, q, n);
        Self { shape: Shape::from_dims(&[m, n]), data: out }
    }

    /// `selfᵀ × other` without materialising the transpose: `self` is
    /// `[m, q]`, `other` is `[m, n]`, and the result `[q, n]` satisfies
    /// `out[i][j] = Σ_p self[p][i] * other[p][j]` with `p` ascending — the
    /// exact bits of `self.transpose().matmul(other)`. The backward pass's
    /// `Aᵀ × grad` product runs through this kernel.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank-2 or the shared row counts differ.
    pub fn matmul_transposed_lhs(&self, other: &Tensor) -> Self {
        assert_eq!(self.shape.rank, 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.shape.rank, 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, q) = (self.shape.dims[0], self.shape.dims[1]);
        let (m2, n) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(m, m2, "matmul inner dim mismatch: {} vs {}", m, m2);
        let mut out = vec![0.0f32; q * n];
        matmul_transposed_lhs_into(&self.data, &other.data, &mut out, m, q, n);
        Self { shape: Shape::from_dims(&[q, n]), data: out }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.rank, 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.shape.dims[0], self.shape.dims[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { shape: Shape::from_dims(&[n, m]), data: out }
    }

    /// Concatenates rank-2 tensors along the column axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not share the same number of rows or the
    /// input slice is empty.
    pub fn concat_cols(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "concat_cols requires at least one tensor");
        let rows = tensors[0].rows();
        for t in tensors {
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
        }
        let total_cols: usize = tensors.iter().map(|t| t.cols()).sum();
        let mut out = vec![0.0f32; rows * total_cols];
        for r in 0..rows {
            let mut offset = 0;
            for t in tensors {
                let c = t.cols();
                out[r * total_cols + offset..r * total_cols + offset + c]
                    .copy_from_slice(&t.data[r * c..(r + 1) * c]);
                offset += c;
            }
        }
        Self { shape: Shape::from_dims(&[rows, total_cols]), data: out }
    }

    /// Stacks rank-2 tensors (or rank-1 rows) along the row axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not share the same number of columns or the
    /// input slice is empty.
    pub fn concat_rows(tensors: &[&Tensor]) -> Self {
        assert!(!tensors.is_empty(), "concat_rows requires at least one tensor");
        let cols = tensors[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for t in tensors {
            assert_eq!(t.cols(), cols, "concat_rows column mismatch");
            data.extend_from_slice(&t.data);
            rows += t.rows();
        }
        Self { shape: Shape::from_dims(&[rows, cols]), data }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

/// Rows processed together by the tiled matmul: each streamed row of `b` is
/// reused across this many output rows, quartering the `b` traffic. The
/// working set of the X-RLflow shapes (`k, n ≤ 256`) fits L1, so register
/// reuse — not cache blocking over `k`/`n` — is the lever that matters here.
const MM_ROW_TILE: usize = 4;

/// Writes `a (m×k) × b (k×n)` into `out` (`m×n`), zeroing `out` first.
///
/// Register-tiled over rows ([`MM_ROW_TILE`] output rows share each streamed
/// row of `b`); each output element is one running sum over `p = 0..k` in
/// ascending order, so the result is bit-identical to the naive triple loop
/// for every tile size. There are no value-dependent branches: IEEE
/// `0.0 * inf = NaN` propagates.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    if n == 1 {
        // Column RHS (the GAT attention projections): each output is a plain
        // dot product of two contiguous slices.
        for (i, o) in out.iter_mut().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
        return;
    }
    let mut row = 0;
    let mut tiles = out.chunks_exact_mut(MM_ROW_TILE * n);
    for tile in &mut tiles {
        let (o0, rest) = tile.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let a0 = &a[row * k..(row + 1) * k];
        let a1 = &a[(row + 1) * k..(row + 2) * k];
        let a2 = &a[(row + 2) * k..(row + 3) * k];
        let a3 = &a[(row + 3) * k..(row + 4) * k];
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            let (c0, c1, c2, c3) = (a0[p], a1[p], a2[p], a3[p]);
            for j in 0..n {
                o0[j] += c0 * b_row[j];
                o1[j] += c1 * b_row[j];
                o2[j] += c2 * b_row[j];
                o3[j] += c3 * b_row[j];
            }
        }
        row += MM_ROW_TILE;
    }
    for out_row in tiles.into_remainder().chunks_exact_mut(n) {
        let a_row = &a[row * k..(row + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
        row += 1;
    }
}

/// Writes `a (m×q) × bt (n×q)ᵀ` into `out` (`m×n`), zeroing `out` first.
/// Every output element is accumulated over `p = 0..q` ascending with a
/// single running sum — bit-identical to `a.matmul(&bt.transpose())` —
/// but the kernel picks its strategy by shape: large products pack the
/// transposed operand once and run the vectorisable row-tiled kernel
/// (dot-product chains are FP-add-latency-bound and cannot legally be
/// vectorised, so packing wins despite the extra pass), while small and
/// skinny shapes run a register-tiled dot kernel over the contiguous rows
/// with no scratch buffer. The strategy choice never changes the bits.
pub(crate) fn matmul_transposed_rhs_into(
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
    m: usize,
    q: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * q);
    debug_assert_eq!(bt.len(), n * q);
    debug_assert_eq!(out.len(), m * n);
    if m >= 16 && q >= 16 && n >= 16 {
        // Big enough that the O(q·n) packing pass amortises over m output
        // rows: lay `bt` out transposed and reuse the axpy-form kernel, whose
        // independent per-column sums the compiler can vectorise.
        let mut b = vec![0.0f32; q * n];
        for (j, bt_row) in bt.chunks_exact(q).enumerate() {
            for (p, &v) in bt_row.iter().enumerate() {
                b[p * n + j] = v;
            }
        }
        matmul_into(a, &b, out, m, q, n);
        return;
    }
    // Register tile of 2 output rows × 4 output columns: every output
    // element keeps its own scalar accumulator, but the eight dependency
    // chains interleave so the dot products are not serialised on FP-add
    // latency, and each streamed `bt` row is consumed by both `a` rows.
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * q..(i + 1) * q];
        let a1 = &a[(i + 1) * q..(i + 2) * q];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bt[j * q..(j + 1) * q];
            let b1 = &bt[(j + 1) * q..(j + 2) * q];
            let b2 = &bt[(j + 2) * q..(j + 3) * q];
            let b3 = &bt[(j + 3) * q..(j + 4) * q];
            let mut s = [0.0f32; 8];
            for p in 0..q {
                let (x0, x1) = (a0[p], a1[p]);
                let (v0, v1, v2, v3) = (b0[p], b1[p], b2[p], b3[p]);
                s[0] += x0 * v0;
                s[1] += x0 * v1;
                s[2] += x0 * v2;
                s[3] += x0 * v3;
                s[4] += x1 * v0;
                s[5] += x1 * v1;
                s[6] += x1 * v2;
                s[7] += x1 * v3;
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&s[..4]);
            out[(i + 1) * n + j..(i + 1) * n + j + 4].copy_from_slice(&s[4..]);
            j += 4;
        }
        while j < n {
            let b_row = &bt[j * q..(j + 1) * q];
            let (mut s0, mut s1) = (0.0f32, 0.0f32);
            for ((&v, &x0), &x1) in b_row.iter().zip(a0).zip(a1) {
                s0 += x0 * v;
                s1 += x1 * v;
            }
            out[i * n + j] = s0;
            out[(i + 1) * n + j] = s1;
            j += 1;
        }
        i += 2;
    }
    if i < m {
        let a_row = &a[i * q..(i + 1) * q];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bt[j * q..(j + 1) * q];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
}

/// Writes `at (m×q)ᵀ × b (m×n)` into `out` (`q×n`), zeroing `out` first.
/// The reduction dimension `m` is the outer loop, so each output element is
/// one running sum over `p = 0..m` ascending — bit-identical to
/// `at.transpose().matmul(&b)` without materialising the transpose, with
/// both operands streamed row-contiguously.
pub(crate) fn matmul_transposed_lhs_into(
    at: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    q: usize,
    n: usize,
) {
    debug_assert_eq!(at.len(), m * q);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(out.len(), q * n);
    out.fill(0.0);
    for p in 0..m {
        let a_row = &at[p * q..(p + 1) * q];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    #[test]
    fn from_vec_and_get() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_rows() {
        // Regression for the old kernel's `if a == 0.0 { continue }` skip:
        // IEEE 754 defines 0.0 * inf = NaN and 0.0 * NaN = NaN, so a zero in
        // the LHS must NOT silence a non-finite RHS contribution.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 1.0], &[2, 1]);
        assert!(a.matmul(&b).item().is_nan(), "0 * inf must poison the dot product with NaN");

        let b_nan = Tensor::from_vec(vec![f32::NAN, 1.0], &[2, 1]);
        assert!(a.matmul(&b_nan).item().is_nan(), "0 * NaN must propagate NaN");

        // The naive reference agrees — it is the semantic oracle, not the
        // buggy historical kernel.
        assert!(a.matmul_naive(&b).item().is_nan());
        assert!(a.matmul_naive(&b_nan).item().is_nan());

        // And a genuinely zero product stays finite.
        let zeros = Tensor::zeros(&[1, 2]);
        let finite = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]);
        assert_eq!(zeros.matmul(&finite).item(), 0.0);
    }

    /// Seeded property sweep: the tiled kernel, the transposed-operand
    /// kernels and the naive reference must agree to the BIT on random
    /// shapes. Absolute bit equality is the right tolerance here because
    /// every kernel accumulates each output element over the inner dimension
    /// in the identical ascending order — tiling only changes memory
    /// traffic, never the sequence of floating-point operations per element.
    #[test]
    fn matmul_kernels_match_naive_bit_for_bit() {
        let mut rng = XorShiftRng::new(0xC0FFEE);
        for trial in 0..50 {
            let m = 1 + (rng.next_u64() % 13) as usize;
            let k = 1 + (rng.next_u64() % 17) as usize;
            let n = 1 + (rng.next_u64() % 11) as usize;
            let a = Tensor::from_vec((0..m * k).map(|_| rng.uniform(-2.0, 2.0)).collect(), &[m, k]);
            let b = Tensor::from_vec((0..k * n).map(|_| rng.uniform(-2.0, 2.0)).collect(), &[k, n]);

            let tiled = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(tiled.shape(), naive.shape());
            for (i, (x, y)) in tiled.data().iter().zip(naive.data()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "trial {trial} ({m}x{k}x{n}): tiled[{i}]={x} differs from naive[{i}]={y}"
                );
            }

            // a × bᵀᵀ via the transposed-RHS kernel == a × b.
            let via_rhs = a.matmul_transposed_rhs(&b.transpose());
            assert_eq!(via_rhs, naive, "trial {trial}: matmul_transposed_rhs diverges");

            // aᵀᵀ × b via the transposed-LHS kernel == a × b.
            let via_lhs = a.transpose().matmul_transposed_lhs(&b);
            for (x, y) in via_lhs.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "trial {trial}: matmul_transposed_lhs diverges");
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sq_norm(), 14.0);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 6.0]);

        let d = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(d.shape(), &[4, 2]);
        assert_eq!(d.row(3), &[3.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape(&[4]);
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn into_reshape_moves_the_buffer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let ptr = a.data().as_ptr();
        let b = a.into_reshape(&[4, 1]);
        assert_eq!(b.shape(), &[4, 1]);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.data().as_ptr(), ptr, "into_reshape must not copy the buffer");
    }

    #[test]
    #[should_panic(expected = "reshape numel mismatch")]
    fn into_reshape_rejects_numel_mismatch() {
        Tensor::from_vec(vec![1.0, 2.0], &[2]).into_reshape(&[3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }
}
