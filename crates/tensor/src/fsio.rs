//! Crash-safe file persistence.
//!
//! Every artifact this workspace writes to disk — `XRLFSNAP` parameter
//! checkpoints, `TrainState` resume bundles, result-cache snapshots, metrics
//! and bench JSON — goes through [`atomic_write`]. The contract is simple: a
//! reader never observes a half-written file. Either the previous contents
//! are still there, or the complete new contents are. A process killed at any
//! instant mid-save can therefore at worst leave a stray temp file behind,
//! never a truncated artifact.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide nonce so concurrent writers to the same target never share a
/// temp file.
static TEMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// Returns `true` when `name` looks like an [`atomic_write`] temp file.
///
/// Directory scans (checkpoint retention, latest-checkpoint discovery) use
/// this to skip the debris a killed writer may leave behind.
pub fn is_atomic_temp_file(name: &str) -> bool {
    name.starts_with('.') && name.ends_with(".tmp")
}

/// Writes `bytes` to `path` atomically: temp file in the target directory →
/// flush → fsync → rename over the target.
///
/// The rename is the commit point. A crash before it leaves the previous
/// file (if any) untouched; a crash after it leaves the complete new file.
/// Because the temp file lives in the same directory as the target, the
/// rename never crosses a filesystem boundary. Missing parent directories
/// are created first, and a failed attempt cleans its temp file up.
///
/// # Errors
///
/// Propagates the underlying I/O error (directory creation, temp-file
/// write, fsync or rename). `path` must name a file, not a directory.
pub fn atomic_write(path: impl AsRef<Path>, bytes: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target must name a file: {}", path.display()),
        )
    })?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let nonce = TEMP_NONCE.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{file_name}.{}.{nonce}.tmp", std::process::id()));
    let committed = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes.as_ref())?;
        // Durability point: the data must be on stable storage *before* the
        // rename publishes it, otherwise a power cut could commit an empty
        // file under the target name.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if committed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    committed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xrlflow-fsio-{tag}-{}-{}",
            std::process::id(),
            TEMP_NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_contents() {
        let dir = temp_dir("replace");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = temp_dir("parents");
        let path = dir.join("a/b/c/artifact.bin");
        atomic_write(&path, b"nested").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"nested");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind_on_success() {
        let dir = temp_dir("clean");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"contents").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["artifact.bin".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_crashed_writers_temp_file_does_not_clobber_the_previous_artifact() {
        // Emulate a writer killed after creating its temp file but before the
        // rename: the previous artifact must still read back intact, and a
        // later complete write must still succeed.
        let dir = temp_dir("crash");
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"previous good contents").unwrap();
        std::fs::write(dir.join(".artifact.bin.0.99.tmp"), b"half-writ").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"previous good contents");
        atomic_write(&path, b"next good contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"next good contents");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_file_names_are_recognised() {
        assert!(is_atomic_temp_file(".artifact.bin.123.0.tmp"));
        assert!(!is_atomic_temp_file("artifact.bin"));
        assert!(!is_atomic_temp_file("state-00000004.xrlftrst"));
    }

    #[test]
    fn rejects_paths_without_a_file_name() {
        assert!(atomic_write("/", b"x").is_err());
    }
}
