//! The graph-transformation environment (Section 3.3.1 of the paper).
//!
//! The environment wraps the substitution engine behind the usual
//! `reset()` / `step()` interface: the observation is the current graph plus
//! every candidate produced by one rule application; the action selects a
//! candidate (or No-Op to terminate); the reward follows Eq. 2, using the
//! simulated end-to-end latency measured every `feedback_frequency` steps
//! and a small exploration constant in between.

use std::sync::Arc;

use xrlflow_cost::InferenceSimulator;
use xrlflow_graph::Graph;
use xrlflow_rewrite::{Candidate, RuleSet};

/// Reward-shaping and termination configuration (defaults follow Table 4).
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Maximum number of substitutions per episode.
    pub max_steps: usize,
    /// Maximum number of candidates exposed per step (the padded action
    /// space size; the paper pads to a large constant).
    pub max_candidates: usize,
    /// End-to-end latency is measured every `N` steps (Table 4: 5).
    pub feedback_frequency: usize,
    /// Constant reward granted on steps without a latency measurement
    /// (the paper uses 0.1 to encourage continued exploration).
    pub exploration_bonus: f32,
    /// When `true`, invalid actions terminate the episode with a penalty
    /// instead of being masked (the paper's ablation alternative; masking is
    /// the default).
    pub penalty_mode: bool,
    /// Penalty applied in `penalty_mode`.
    pub invalid_action_penalty: f32,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            max_steps: 50,
            max_candidates: 64,
            feedback_frequency: 5,
            exploration_bonus: 0.1,
            penalty_mode: false,
            invalid_action_penalty: -1.0,
        }
    }
}

/// What the agent observes at each step: the current graph (structurally
/// shared, not deep-copied) and every candidate substitution as a patch,
/// plus the padded-action validity mask.
///
/// Cloning an observation (e.g. into a rollout buffer) is cheap: the graph is
/// behind an [`Arc`] and each candidate shares its lazily-materialised
/// transformed graph. Candidates stay unmaterialised through policy
/// evaluation — the agent featurises them from the patch delta — so only the
/// candidate [`Environment::step`] adopts ever becomes a full graph.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The current computation graph.
    pub graph: Arc<Graph>,
    /// The candidate transformations reachable by one substitution.
    pub candidates: Vec<Candidate>,
    /// Validity mask over the padded action space
    /// (`max_candidates + 1` entries; the last entry is the always-valid No-Op).
    pub action_mask: Vec<bool>,
}

impl Observation {
    /// Index of the No-Op action in the padded action space.
    pub fn noop_action(&self) -> usize {
        self.action_mask.len() - 1
    }

    /// Number of real candidates.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }
}

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// The next observation (present even on terminal steps, for bootstrapping).
    pub observation: Observation,
    /// The reward for the action just taken.
    pub reward: f32,
    /// Whether the episode has terminated.
    pub done: bool,
    /// Why the episode terminated (when it did).
    pub termination: Option<Termination>,
}

/// Why an episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The agent chose the No-Op action.
    NoOp,
    /// No rewrite rule applies to the current graph.
    NoCandidates,
    /// The per-episode step budget was exhausted.
    MaxSteps,
    /// An invalid action was taken in penalty mode.
    InvalidAction,
}

/// Summary of a finished episode.
#[derive(Debug, Clone)]
pub struct EpisodeStats {
    /// Total shaped reward collected.
    pub total_reward: f32,
    /// Number of substitutions applied.
    pub steps: usize,
    /// Latency of the initial graph (ms).
    pub initial_latency_ms: f64,
    /// Latency of the final graph (ms).
    pub final_latency_ms: f64,
    /// Names of the rules applied, in order.
    pub applied_rules: Vec<&'static str>,
}

impl EpisodeStats {
    /// End-to-end speedup of the final graph over the initial graph in percent.
    pub fn speedup_percent(&self) -> f64 {
        if self.final_latency_ms == 0.0 {
            0.0
        } else {
            (self.initial_latency_ms / self.final_latency_ms - 1.0) * 100.0
        }
    }
}

/// The tensor-graph transformation environment.
///
/// The initial graph, the rule set and the latency simulator are held behind
/// [`Arc`]s so parallel rollout workers can build per-worker environments
/// over one shared model-zoo entry, one rule library and one memoised
/// simulator (its measurement cache is internally synchronised and
/// measurements are deterministic per seed regardless of cache state) — see
/// [`Environment::from_shared`].
#[derive(Debug)]
pub struct Environment {
    initial_graph: Arc<Graph>,
    rules: Arc<RuleSet>,
    simulator: Arc<InferenceSimulator>,
    config: EnvConfig,

    current: Arc<Graph>,
    step_count: usize,
    initial_latency_ms: f64,
    last_measured_latency_ms: f64,
    total_reward: f32,
    applied_rules: Vec<&'static str>,
    measure_seed: u64,
}

impl Environment {
    /// Creates an environment for optimising `graph`.
    pub fn new(graph: Graph, rules: RuleSet, simulator: InferenceSimulator, config: EnvConfig) -> Self {
        Self::from_shared(Arc::new(graph), Arc::new(rules), Arc::new(simulator), config)
    }

    /// Creates an environment over shared components: the initial graph
    /// (e.g. a model-zoo entry), the rule set and the latency simulator.
    ///
    /// This is the constructor the parallel rollout engine uses — `W`
    /// workers build `W` environments over the *same* three `Arc`s, so
    /// nothing graph- or rule-sized is duplicated per worker and latency
    /// measurements memoised by one worker are reused by all.
    pub fn from_shared(
        graph: Arc<Graph>,
        rules: Arc<RuleSet>,
        simulator: Arc<InferenceSimulator>,
        config: EnvConfig,
    ) -> Self {
        let mut env = Self {
            current: Arc::clone(&graph),
            initial_graph: graph,
            rules,
            simulator,
            config,
            step_count: 0,
            initial_latency_ms: 0.0,
            last_measured_latency_ms: 0.0,
            total_reward: 0.0,
            applied_rules: Vec::new(),
            measure_seed: 0,
        };
        env.initial_latency_ms = env.simulator.measure_ms(&env.initial_graph, env.measure_seed);
        env.last_measured_latency_ms = env.initial_latency_ms;
        env
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The graph currently being optimised.
    pub fn current_graph(&self) -> &Graph {
        &self.current
    }

    /// The size of the padded action space (`max_candidates` + No-Op).
    pub fn action_space(&self) -> usize {
        self.config.max_candidates + 1
    }

    /// Latency of the initial, unoptimised graph (ms).
    pub fn initial_latency_ms(&self) -> f64 {
        self.initial_latency_ms
    }

    /// Resets the transformation process and returns the first observation.
    pub fn reset(&mut self, seed: u64) -> Observation {
        self.current = Arc::clone(&self.initial_graph);
        self.step_count = 0;
        self.total_reward = 0.0;
        self.applied_rules.clear();
        self.measure_seed = seed;
        self.initial_latency_ms = self.simulator.measure_ms(&self.current, seed);
        self.last_measured_latency_ms = self.initial_latency_ms;
        self.observe()
    }

    fn observe(&self) -> Observation {
        let candidates = self.rules.generate_candidates(&self.current, self.config.max_candidates);
        // Valid actions: one per candidate, plus the always-valid No-Op slot.
        let mut action_mask = vec![false; self.action_space()];
        action_mask[..candidates.len()].fill(true);
        let noop = self.action_space() - 1;
        action_mask[noop] = true;
        Observation { graph: Arc::clone(&self.current), candidates, action_mask }
    }

    /// The observation returned alongside a terminal [`StepResult`] whose
    /// candidates nobody will ever act on: the full match scan and patch
    /// construction of [`Environment::observe`] are skipped, and the mask
    /// keeps its padded length with only the No-Op slot valid.
    fn terminal_observation(&self) -> Observation {
        let mut action_mask = vec![false; self.action_space()];
        let noop = self.action_space() - 1;
        action_mask[noop] = true;
        Observation { graph: Arc::clone(&self.current), candidates: Vec::new(), action_mask }
    }

    /// Applies an action. `action` indexes the padded action space: indices
    /// below the candidate count select a candidate, the final index is the
    /// No-Op termination action, anything else is invalid (masked by
    /// default; penalised in `penalty_mode`).
    pub fn step(&mut self, observation: &Observation, action: usize) -> StepResult {
        let noop = observation.noop_action();
        let num_candidates = observation.candidates.len();

        // Invalid action handling.
        if action != noop && action >= num_candidates {
            let reward = if self.config.penalty_mode { self.config.invalid_action_penalty } else { 0.0 };
            self.total_reward += reward;
            return StepResult {
                observation: self.terminal_observation(),
                reward,
                done: true,
                termination: Some(Termination::InvalidAction),
            };
        }

        // No-Op: terminate, measuring the final graph.
        if action == noop || num_candidates == 0 {
            let reward = self.measurement_reward();
            self.total_reward += reward;
            let termination = if action == noop { Termination::NoOp } else { Termination::NoCandidates };
            return StepResult {
                observation: self.terminal_observation(),
                reward,
                done: true,
                termination: Some(termination),
            };
        }

        // Apply the selected candidate's patch. The agent featurises
        // candidates delta-wise and never materialises them, so this is the
        // single point where the chosen candidate's graph is built (and
        // memoised — a later PPO re-evaluation or cost probe shares it).
        // Unchosen candidates are dropped without ever becoming graphs.
        let candidate = &observation.candidates[action];
        self.current = candidate.graph(&observation.graph);
        self.applied_rules.push(candidate.rule_name);
        self.step_count += 1;

        let max_steps_reached = self.step_count >= self.config.max_steps;
        let next = self.observe();
        let out_of_candidates = next.candidates.is_empty();
        let done = max_steps_reached || out_of_candidates;

        // Reward: measure end-to-end latency every N steps and on termination,
        // otherwise grant the exploration bonus (Section 3.3.3).
        let measure_now = done || self.step_count.is_multiple_of(self.config.feedback_frequency);
        let reward = if measure_now { self.measurement_reward() } else { self.config.exploration_bonus };
        self.total_reward += reward;

        let termination = if max_steps_reached {
            Some(Termination::MaxSteps)
        } else if out_of_candidates {
            Some(Termination::NoCandidates)
        } else {
            None
        };
        StepResult { observation: next, reward, done, termination }
    }

    /// Equation 2: `(RT_{t-1} - RT_t) / RT_0 * 100`, where `RT_{t-1}` is the
    /// latency at the previous measurement point.
    fn measurement_reward(&mut self) -> f32 {
        self.measure_seed = self.measure_seed.wrapping_add(1);
        let latency = self.simulator.measure_ms(&self.current, self.measure_seed);
        let reward = ((self.last_measured_latency_ms - latency) / self.initial_latency_ms * 100.0) as f32;
        self.last_measured_latency_ms = latency;
        reward
    }

    /// Statistics of the episode so far (or of the finished episode).
    pub fn episode_stats(&self) -> EpisodeStats {
        EpisodeStats {
            total_reward: self.total_reward,
            steps: self.step_count,
            initial_latency_ms: self.initial_latency_ms,
            final_latency_ms: self.last_measured_latency_ms,
            applied_rules: self.applied_rules.clone(),
        }
    }

    /// The paper's Table 3 "complexity" metric: the average number of
    /// candidates per step along a random-rollout trajectory of the given
    /// length.
    pub fn measure_complexity(&mut self, rollout_steps: usize, seed: u64) -> f64 {
        let mut obs = self.reset(seed);
        let mut counts = Vec::new();
        for i in 0..rollout_steps {
            counts.push(obs.num_candidates());
            if obs.num_candidates() == 0 {
                break;
            }
            // Follow a deterministic pseudo-random candidate to sample the space.
            let action = (seed as usize + i * 7919) % obs.num_candidates();
            let result = self.step(&obs, action);
            if result.done {
                break;
            }
            obs = result.observation;
        }
        let _ = self.reset(seed);
        if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_cost::DeviceProfile;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn make_env(kind: ModelKind) -> Environment {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            EnvConfig { max_steps: 10, ..EnvConfig::default() },
        )
    }

    #[test]
    fn reset_produces_candidates_and_valid_mask() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let obs = env.reset(0);
        assert!(obs.num_candidates() > 0, "SqueezeNet must have rewrite opportunities");
        assert_eq!(obs.action_mask.len(), env.action_space());
        // Mask matches the candidate count plus the No-Op.
        let valid = obs.action_mask.iter().filter(|&&m| m).count();
        assert_eq!(valid, obs.num_candidates().min(env.config().max_candidates) + 1);
        assert!(obs.action_mask[obs.noop_action()]);
    }

    #[test]
    fn noop_terminates_immediately() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let obs = env.reset(0);
        let result = env.step(&obs, obs.noop_action());
        assert!(result.done);
        assert_eq!(result.termination, Some(Termination::NoOp));
        assert_eq!(env.episode_stats().steps, 0);
    }

    #[test]
    fn applying_candidates_changes_the_graph_and_collects_reward() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let mut obs = env.reset(1);
        let before_hash = env.current_graph().canonical_hash();
        let mut total_reward = 0.0;
        let mut steps = 0;
        loop {
            if obs.num_candidates() == 0 {
                break;
            }
            let result = env.step(&obs.clone(), 0);
            total_reward += result.reward;
            steps += 1;
            if result.done {
                break;
            }
            obs = result.observation;
        }
        assert!(steps > 0);
        assert_ne!(env.current_graph().canonical_hash(), before_hash);
        let stats = env.episode_stats();
        assert_eq!(stats.steps, steps.min(env.config().max_steps));
        assert!((stats.total_reward - total_reward).abs() < 1e-4);
    }

    #[test]
    fn exploration_bonus_between_measurements() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let obs = env.reset(2);
        // First step is not a measurement step (N = 5) and not terminal, so the
        // reward must be exactly the exploration bonus.
        let result = env.step(&obs, 0);
        if !result.done {
            assert!((result.reward - env.config().exploration_bonus).abs() < 1e-6);
        }
    }

    #[test]
    fn terminal_results_carry_an_empty_candidate_observation() {
        // Nobody acts on a terminal step's observation, so the environment
        // must not pay a full match scan to build its candidates: the
        // bootstrap observation keeps the padded mask shape with only the
        // No-Op slot valid and no candidates.
        let mut env = make_env(ModelKind::SqueezeNet);
        let obs = env.reset(0);
        let result = env.step(&obs, obs.noop_action());
        assert!(result.done);
        let term = result.observation;
        assert_eq!(term.num_candidates(), 0);
        assert_eq!(term.action_mask.len(), env.action_space());
        assert!(term.action_mask[term.noop_action()]);
        assert_eq!(term.action_mask.iter().filter(|&&m| m).count(), 1, "only No-Op stays valid");
    }

    #[test]
    fn invalid_action_in_penalty_mode_terminates_with_penalty() {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut env = Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            EnvConfig { penalty_mode: true, ..EnvConfig::default() },
        );
        let obs = env.reset(0);
        let invalid = obs.num_candidates() + 1; // inside padding, beyond candidates
        assert!(invalid < obs.noop_action());
        let result = env.step(&obs, invalid);
        assert!(result.done);
        assert_eq!(result.termination, Some(Termination::InvalidAction));
        assert!(result.reward < 0.0);
    }

    #[test]
    fn speedup_reported_for_improving_trajectory() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let mut obs = env.reset(3);
        for _ in 0..10 {
            if obs.num_candidates() == 0 {
                break;
            }
            // Always take the first candidate (fusions come first in the rule set).
            let result = env.step(&obs.clone(), 0);
            if result.done {
                break;
            }
            obs = result.observation;
        }
        let stats = env.episode_stats();
        assert!(stats.final_latency_ms > 0.0);
        // Applying fusion-family rules should not slow the model down.
        assert!(stats.speedup_percent() > -5.0);
    }

    #[test]
    fn complexity_metric_is_positive_for_eval_models() {
        let mut env = make_env(ModelKind::Bert);
        let complexity = env.measure_complexity(5, 0);
        assert!(complexity > 1.0, "BERT complexity should be non-trivial, got {complexity}");
    }

    #[test]
    fn reset_is_reproducible() {
        let mut env = make_env(ModelKind::SqueezeNet);
        let a = env.reset(7);
        let b = env.reset(7);
        assert_eq!(a.graph.canonical_hash(), b.graph.canonical_hash());
        assert_eq!(a.num_candidates(), b.num_candidates());
    }
}
