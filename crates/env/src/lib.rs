//! # xrlflow-env
//!
//! The Gym-style tensor-graph transformation environment of X-RLflow:
//! `reset()`/`step()` over subgraph-substitution candidates, with the
//! paper's sparse end-to-end-latency reward (Eq. 2), exploration bonus and
//! invalid-action handling.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_cost::{DeviceProfile, InferenceSimulator};
//! use xrlflow_env::{EnvConfig, Environment};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_rewrite::RuleSet;
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let mut env = Environment::new(
//!     graph,
//!     RuleSet::standard(),
//!     InferenceSimulator::new(DeviceProfile::gtx1080()),
//!     EnvConfig::default(),
//! );
//! let obs = env.reset(0);
//! assert!(obs.num_candidates() > 0);
//! ```

#![warn(missing_docs)]

mod environment;

pub use environment::{EnvConfig, Environment, EpisodeStats, Observation, StepResult, Termination};
