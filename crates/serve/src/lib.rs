//! # xrlflow-serve
//!
//! Optimisation-as-a-service on top of the X-RLflow stack: accept arbitrary
//! graphs in the JSON interchange format, optimise them with a frozen
//! policy replica built from a [`ParamSnapshot`](xrlflow_tensor::ParamSnapshot),
//! and answer repeat requests from a persistent result cache keyed by
//! [`Graph::canonical_hash`](xrlflow_graph::Graph::canonical_hash).
//!
//! Five rules govern the design:
//!
//! 1. **The boundary never panics.** Every request — malformed JSON,
//!    unknown operators, cyclic graphs, tampered shapes, truncated or
//!    oversized HTTP requests — either succeeds or returns a typed
//!    [`ServeError`] (a 4xx over HTTP).
//! 2. **The cache key is the canonical hash.** Structurally identical
//!    graphs share one entry regardless of node numbering or names, and a
//!    hit costs no policy forward passes.
//! 3. **Serving never mutates the policy.** The agent is a read-only
//!    snapshot replica (the rollout engine's replica protocol), so one
//!    service can be shared across request threads behind an `Arc`.
//!    A new checkpoint enters via [`OptimizeService::swap_snapshot`]: the
//!    replacement replica is built and validated off the request path and
//!    swapped in as an `Arc` pointer exchange; a rejected checkpoint
//!    leaves the old policy serving.
//! 4. **The cache is bounded.** [`CacheConfig`] sets entry/byte budgets
//!    enforced by LRU eviction — at insert time, at reconfiguration, and
//!    when loading a persisted snapshot — with eviction counters and
//!    occupancy gauges in the metrics snapshot.
//! 5. **Concurrent identical misses coalesce.** Single-flight admission
//!    runs one greedy episode per [`canonical_hash`] no matter how many
//!    requests race on it; followers wait and read the leader's entry.
//!
//! The on-the-wire JSON formats (graph interchange, cache snapshot,
//! metrics snapshot) and the `XRLFSNAP` checkpoint format are specified in
//! [`docs/FORMATS.md`](https://github.com/xrlflow/xrlflow/blob/main/docs/FORMATS.md)
//! in the repository; operational guidance (env knobs, cache sizing, the
//! hot-swap procedure) lives in `docs/OPERATIONS.md` alongside it.
//!
//! [`canonical_hash`]: xrlflow_graph::Graph::canonical_hash
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_core::{XrlflowAgent, XrlflowConfig};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_serve::OptimizeService;
//!
//! // Train (or checkpoint-load) a policy, snapshot it, serve the snapshot.
//! let config = XrlflowConfig::smoke_test();
//! let snapshot = XrlflowAgent::new(&config, 0).snapshot();
//! let service = OptimizeService::from_snapshot(&config, &snapshot).unwrap();
//!
//! // A client ships a graph as JSON; the first request runs the policy…
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let request_body = graph.to_json();
//! let first = service.optimize_json(&request_body).unwrap();
//! assert!(!first.cache_hit);
//!
//! // …and the repeat request is answered from the cache, policy untouched.
//! let second = service.optimize_json(&request_body).unwrap();
//! assert!(second.cache_hit);
//! assert_eq!(service.stats().policy_invocations, 1);
//! assert_eq!(second.final_latency_ms, first.final_latency_ms);
//!
//! // Malformed input is a typed error, never a panic.
//! assert!(service.optimize_json("{\"format\": \"bogus\"}").is_err());
//! ```
//!
//! The cache snapshots to disk ([`OptimizeService::save_cache`] /
//! [`OptimizeService::load_cache`]) so a restarted server keeps answering
//! previously seen graphs without re-running the policy, and the whole
//! service goes on the network with [`http::OptimizeServer`] — a
//! dependency-free blocking HTTP/1.1 front end over `std::net`.

#![warn(missing_docs)]

mod cache;
mod error;
pub mod http;
mod service;

pub use cache::{
    CacheConfig, CacheConfigBuilder, CacheEntry, ResultCache, CACHE_JSON_FORMAT, CACHE_JSON_VERSION,
};
pub use error::ServeError;
pub use http::{http_call, HttpReply, OptimizeServer, ServerConfig};
pub use service::{OptimizeResponse, OptimizeService, ServeStats};
