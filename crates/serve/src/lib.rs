//! # xrlflow-serve
//!
//! Optimisation-as-a-service on top of the X-RLflow stack: accept arbitrary
//! graphs in the JSON interchange format, optimise them with a frozen
//! policy replica built from a [`ParamSnapshot`](xrlflow_tensor::ParamSnapshot),
//! and answer repeat requests from a persistent result cache keyed by
//! [`Graph::canonical_hash`](xrlflow_graph::Graph::canonical_hash).
//!
//! Three rules govern the design:
//!
//! 1. **The boundary never panics.** Every request — malformed JSON,
//!    unknown operators, cyclic graphs, tampered shapes — either succeeds
//!    or returns a typed [`ServeError`].
//! 2. **The cache key is the canonical hash.** Structurally identical
//!    graphs share one entry regardless of node numbering or names, and a
//!    hit costs no policy forward passes.
//! 3. **Serving never mutates the policy.** The agent is a read-only
//!    snapshot replica (the rollout engine's replica protocol), so one
//!    service can be shared across request threads behind an `Arc`.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_core::{XrlflowAgent, XrlflowConfig};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_serve::OptimizeService;
//!
//! // Train (or checkpoint-load) a policy, snapshot it, serve the snapshot.
//! let config = XrlflowConfig::smoke_test();
//! let snapshot = XrlflowAgent::new(&config, 0).snapshot();
//! let service = OptimizeService::from_snapshot(&config, &snapshot).unwrap();
//!
//! // A client ships a graph as JSON; the first request runs the policy…
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let request_body = graph.to_json();
//! let first = service.optimize_json(&request_body).unwrap();
//! assert!(!first.cache_hit);
//!
//! // …and the repeat request is answered from the cache, policy untouched.
//! let second = service.optimize_json(&request_body).unwrap();
//! assert!(second.cache_hit);
//! assert_eq!(service.stats().policy_invocations, 1);
//! assert_eq!(second.final_latency_ms, first.final_latency_ms);
//!
//! // Malformed input is a typed error, never a panic.
//! assert!(service.optimize_json("{\"format\": \"bogus\"}").is_err());
//! ```
//!
//! The cache snapshots to disk ([`OptimizeService::save_cache`] /
//! [`OptimizeService::load_cache`]) so a restarted server keeps answering
//! previously seen graphs without re-running the policy.

#![warn(missing_docs)]

mod cache;
mod error;
mod service;

pub use cache::{CacheEntry, ResultCache, CACHE_JSON_FORMAT, CACHE_JSON_VERSION};
pub use error::ServeError;
pub use service::{OptimizeResponse, OptimizeService, ServeStats};
