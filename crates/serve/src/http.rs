//! A dependency-free blocking HTTP/1.1 front end for [`OptimizeService`].
//!
//! The server is deliberately small and boring: `std::net` sockets, one
//! accept thread, one thread per connection, `Connection: close` on every
//! response. What it is *not* casual about is the boundary — request
//! parsing mirrors the [`JsonValue`] philosophy:
//!
//! * **Size-bounded.** Headers are read up to
//!   [`ServerConfig::max_header_bytes`] (then `431`); a declared body
//!   larger than [`ServerConfig::max_body_bytes`] is rejected with `413`
//!   *before* a single body byte is read.
//! * **Never panics on untrusted bytes.** Truncated requests, garbage
//!   request lines, bad `Content-Length` values and malformed graph JSON
//!   all map to typed `4xx` responses; a `5xx` can only mean a genuine
//!   server-side defect (and even that is caught, not a crash).
//! * **Slow clients cannot wedge a thread forever** — every socket gets
//!   [`ServerConfig::io_timeout`] for reads and writes.
//!
//! ## Routes
//!
//! | Route | Body in | Body out |
//! |---|---|---|
//! | `POST /optimize` | graph interchange JSON | optimised graph + latency stats |
//! | `GET /metrics` | — | the metrics snapshot JSON |
//! | `GET /healthz` | — | `{"status": "ok"}` |
//! | `POST /admin/swap` | `XRLFSNAP` checkpoint bytes | swap confirmation |
//!
//! All formats are specified in `docs/FORMATS.md`; `docs/OPERATIONS.md`
//! covers running and operating the server.
//!
//! ```
//! use std::sync::Arc;
//! use xrlflow_core::XrlflowConfig;
//! use xrlflow_serve::{http_call, OptimizeServer, OptimizeService};
//!
//! let service = OptimizeService::untrained(&XrlflowConfig::smoke_test(), 0).unwrap();
//! let server = OptimizeServer::bind(Arc::new(service), "127.0.0.1:0").unwrap();
//! let reply = http_call(server.local_addr(), "GET", "/healthz", &[]).unwrap();
//! assert_eq!(reply.status, 200);
//! assert!(reply.body.contains("ok"));
//! ```

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xrlflow_core::ConfigError;
use xrlflow_graph::JsonValue;
use xrlflow_tensor::ParamSnapshot;

use crate::error::ServeError;
use crate::service::OptimizeService;

/// Size and patience bounds for the HTTP boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Largest accepted request body; a bigger `Content-Length` is
    /// rejected with `413` before any body byte is read. Default 16 MiB.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line plus headers); longer
    /// heads are rejected with `431`. Default 16 KiB.
    pub max_header_bytes: usize,
    /// Per-socket read/write timeout; a stalled client gets `408` (or a
    /// dropped connection) instead of a wedged thread. Default 30 s.
    pub io_timeout: Duration,
    /// How long [`OptimizeServer::shutdown`] waits for in-flight connection
    /// threads to write their responses before giving up on them. Default
    /// 5 s.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_body_bytes: 16 * 1024 * 1024,
            max_header_bytes: 16 * 1024,
            io_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    /// Builds a configuration from the environment, falling back to the
    /// defaults: `XRLFLOW_HTTP_MAX_BODY_BYTES`, `XRLFLOW_HTTP_MAX_HEADER_BYTES`,
    /// `XRLFLOW_HTTP_IO_TIMEOUT_MS` and `XRLFLOW_HTTP_DRAIN_MS` (all
    /// positive integers).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending variable when a value is set
    /// but not a positive integer.
    pub fn from_env() -> Result<Self, ConfigError> {
        let mut config = Self::default();
        if let Some(v) = env_usize("XRLFLOW_HTTP_MAX_BODY_BYTES", "http.max_body_bytes")? {
            config.max_body_bytes = v;
        }
        if let Some(v) = env_usize("XRLFLOW_HTTP_MAX_HEADER_BYTES", "http.max_header_bytes")? {
            config.max_header_bytes = v;
        }
        if let Some(v) = env_usize("XRLFLOW_HTTP_IO_TIMEOUT_MS", "http.io_timeout_ms")? {
            config.io_timeout = Duration::from_millis(v as u64);
        }
        if let Some(v) = env_usize("XRLFLOW_HTTP_DRAIN_MS", "http.drain_timeout_ms")? {
            config.drain_timeout = Duration::from_millis(v as u64);
        }
        Ok(config)
    }
}

fn env_usize(var: &str, field: &'static str) -> Result<Option<usize>, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v > 0 => Ok(Some(v)),
            _ => {
                Err(ConfigError { field, message: format!("{var} must be a positive integer, got {raw:?}") })
            }
        },
    }
}

/// Counts live connection threads so a shutdown can wait for their
/// responses to reach the wire instead of racing them to process exit.
#[derive(Debug)]
struct ConnTracker {
    live: Mutex<usize>,
    idle: Condvar,
}

impl ConnTracker {
    fn new() -> Self {
        Self { live: Mutex::new(0), idle: Condvar::new() }
    }

    /// Registers a connection. Called on the accept thread *before* the
    /// connection thread is spawned, so a shutdown that starts draining an
    /// instant later can never miss an accepted connection.
    fn enter(self: &Arc<Self>) -> ConnGuard {
        *self.live.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        ConnGuard { tracker: Arc::clone(self) }
    }

    /// Waits until every live connection has finished, bounded by
    /// `timeout`. Returns `false` when connections were still running at
    /// the deadline.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        while *live > 0 {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            live = self.idle.wait_timeout(live, remaining).unwrap_or_else(PoisonError::into_inner).0;
        }
        true
    }
}

/// Decrements the live-connection count when a connection thread finishes —
/// including when the thread unwinds, so a panicking handler can never
/// wedge a draining shutdown.
struct ConnGuard {
    tracker: Arc<ConnTracker>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        *self.tracker.live.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
        self.tracker.idle.notify_all();
    }
}

/// A running HTTP server wrapped around an [`OptimizeService`].
///
/// Binding spawns the accept loop; dropping the server (or calling
/// [`OptimizeServer::shutdown`]) stops accepting new connections and then
/// **drains**: it waits up to [`ServerConfig::drain_timeout`]
/// (`XRLFLOW_HTTP_DRAIN_MS`) for in-flight connection threads to write
/// their responses, so a graceful shutdown never drops an accepted
/// request.
#[derive(Debug)]
pub struct OptimizeServer {
    service: Arc<OptimizeService>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    tracker: Arc<ConnTracker>,
    drain_timeout: Duration,
}

impl OptimizeServer {
    /// Binds to `addr` (use port `0` for an ephemeral port) with the
    /// default [`ServerConfig`] and starts serving.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] when the address cannot be bound.
    pub fn bind(service: Arc<OptimizeService>, addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Self::bind_with_config(service, addr, ServerConfig::default())
    }

    /// Binds with explicit boundary bounds.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] when the address cannot be bound.
    pub fn bind_with_config(
        service: Arc<OptimizeService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Http(format!("bind failed: {e}")))?;
        let local = listener.local_addr().map_err(|e| ServeError::Http(format!("local_addr failed: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(ConnTracker::new());
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let tracker = Arc::clone(&tracker);
            std::thread::spawn(move || accept_loop(&listener, &service, &stop, &tracker, config))
        };
        Ok(Self {
            service,
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            tracker,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The bound address — read this after binding port `0` to learn the
    /// ephemeral port the OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<OptimizeService> {
        &self.service
    }

    /// Stops accepting new connections, joins the accept thread, then
    /// waits up to [`ServerConfig::drain_timeout`] for in-flight connection
    /// threads to finish writing their responses — a graceful shutdown
    /// never drops a request the server already accepted. Connections
    /// still running at the deadline (e.g. a client stalling inside its
    /// [`ServerConfig::io_timeout`]) are abandoned to their threads, with
    /// the give-up visible in the `serve/http_drain_timeouts` counter.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop is blocked in `accept`; poke it with a throwaway
        // connection so it observes the stop flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // With the accept loop joined, the live count can only fall.
        if !self.tracker.wait_idle(self.drain_timeout) {
            xrlflow_obs::counter!("serve/http_drain_timeouts").inc();
        }
    }
}

impl Drop for OptimizeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<OptimizeService>,
    stop: &Arc<AtomicBool>,
    tracker: &Arc<ConnTracker>,
    config: ServerConfig,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        // Registered here, on the accept thread, so by the time shutdown
        // joins this loop every accepted connection is already counted.
        let guard = tracker.enter();
        std::thread::spawn(move || {
            let _guard = guard;
            serve_connection(stream, &service, config);
        });
    }
}

/// One response about to go on the wire.
struct Response {
    status: u16,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, body }
    }

    /// A typed error response; the message is JSON-escaped through the
    /// same writer the graph format uses.
    fn error(status: u16, message: impl Into<String>) -> Self {
        let body = JsonValue::Object(vec![("error".to_string(), JsonValue::String(message.into()))]);
        Self { status, body: body.to_json() }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

fn serve_connection(mut stream: TcpStream, service: &Arc<OptimizeService>, config: ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let (response, rejected_early) = match read_request(&mut stream, &config) {
        Err(resp) => (resp, true),
        Ok(request) => {
            // The handler is pure request → response over a `Sync` service;
            // a panic here would be a server defect, and even then the
            // client gets a 500 instead of a dropped connection.
            let response = catch_unwind(AssertUnwindSafe(|| handle(service, &request)))
                .unwrap_or_else(|_| Response::error(500, "internal error"));
            (response, false)
        }
    };
    xrlflow_obs::counter!("serve/http_requests").inc();
    match response.status / 100 {
        2 => xrlflow_obs::counter!("serve/http_2xx").inc(),
        4 => xrlflow_obs::counter!("serve/http_4xx").inc(),
        _ => xrlflow_obs::counter!("serve/http_5xx").inc(),
    }
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    // The client may already be gone; that is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
    if rejected_early {
        // The request was refused before being fully read (oversized head
        // or body, truncation). Closing now would RST the connection —
        // destroying the error response before the client reads it — so
        // drain what the client already sent, bounded in bytes and time.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut scratch = [0u8; 4096];
        let mut drained = 0usize;
        while drained < 256 * 1024 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
}

/// One parsed request: method, path and (for `POST`) the exact body.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Reads and parses one request off the socket, enforcing every bound in
/// [`ServerConfig`]. Any violation is an `Err` carrying the 4xx to send.
fn read_request(stream: &mut TcpStream, config: &ServerConfig) -> Result<Request, Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > config.max_header_bytes {
            return Err(Response::error(431, "request head exceeds the configured limit"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(Response::error(400, "truncated request: connection closed mid-head")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(Response::error(408, "timed out reading the request head"));
            }
            Err(_) => return Err(Response::error(400, "error reading the request head")),
        }
    };
    if head_end > config.max_header_bytes {
        return Err(Response::error(431, "request head exceeds the configured limit"));
    }
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(head) => head,
        Err(_) => return Err(Response::error(400, "request head is not valid UTF-8")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if v.starts_with("HTTP/") => (m, p, v),
        _ => return Err(Response::error(400, format!("malformed request line: {request_line:?}"))),
    };
    let _ = version;
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) => content_length = Some(n),
                Err(_) => return Err(Response::error(400, "malformed Content-Length header")),
            }
        }
    }
    let mut body = buf[head_end + 4..].to_vec();
    if method.eq_ignore_ascii_case("POST") {
        let Some(expected) = content_length else {
            return Err(Response::error(411, "POST requires a Content-Length header"));
        };
        if expected > config.max_body_bytes {
            return Err(Response::error(
                413,
                format!("body of {expected} bytes exceeds the limit of {}", config.max_body_bytes),
            ));
        }
        while body.len() < expected {
            match stream.read(&mut chunk) {
                Ok(0) => return Err(Response::error(400, "truncated request: connection closed mid-body")),
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(Response::error(408, "timed out reading the request body"));
                }
                Err(_) => return Err(Response::error(400, "error reading the request body")),
            }
        }
        body.truncate(expected);
    } else {
        body.clear();
    }
    Ok(Request { method: method.to_string(), path: path.to_string(), body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Routes one well-formed request. Service-level failures surface as typed
/// 4xx responses; this function never panics on untrusted content.
fn handle(service: &Arc<OptimizeService>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/optimize") => {
            let Ok(text) = std::str::from_utf8(&request.body) else {
                return Response::error(400, "request body is not valid UTF-8");
            };
            match service.optimize_json(text) {
                Ok(response) => {
                    let body = JsonValue::Object(vec![
                        ("graph".to_string(), response.graph.to_json_value()),
                        ("initial_latency_ms".to_string(), JsonValue::Number(response.initial_latency_ms)),
                        ("final_latency_ms".to_string(), JsonValue::Number(response.final_latency_ms)),
                        ("steps".to_string(), JsonValue::Number(response.steps as f64)),
                        ("cache_hit".to_string(), JsonValue::Bool(response.cache_hit)),
                        ("speedup_percent".to_string(), JsonValue::Number(response.speedup_percent())),
                    ]);
                    Response::json(200, body.to_json())
                }
                Err(e) => Response::error(400, e.to_string()),
            }
        }
        ("GET", "/metrics") => Response::json(200, service.metrics_json()),
        ("GET", "/healthz") => Response::json(
            200,
            JsonValue::Object(vec![("status".to_string(), JsonValue::String("ok".to_string()))]).to_json(),
        ),
        ("POST", "/admin/swap") => {
            let snapshot = match ParamSnapshot::from_bytes(&request.body) {
                Ok(snapshot) => snapshot,
                Err(e) => return Response::error(400, format!("not a valid checkpoint: {e}")),
            };
            let tensors = snapshot.len();
            let scalars = snapshot.num_scalars();
            match service.swap_snapshot(&snapshot) {
                Ok(()) => {
                    let body = JsonValue::Object(vec![
                        ("swapped".to_string(), JsonValue::Bool(true)),
                        ("tensors".to_string(), JsonValue::Number(tensors as f64)),
                        ("scalars".to_string(), JsonValue::Number(scalars as f64)),
                    ]);
                    Response::json(200, body.to_json())
                }
                Err(e) => Response::error(422, e.to_string()),
            }
        }
        (_, "/optimize") | (_, "/admin/swap") => {
            Response::error(405, format!("{} not allowed here; use POST", request.method))
        }
        (_, "/metrics") | (_, "/healthz") => {
            Response::error(405, format!("{} not allowed here; use GET", request.method))
        }
        (_, path) => Response::error(404, format!("no such route: {path}")),
    }
}

/// A response received by [`http_call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// The HTTP status code.
    pub status: u16,
    /// The response body (the servers in this crate always send JSON).
    pub body: String,
}

/// A minimal blocking HTTP/1.1 client for one-shot calls against an
/// [`OptimizeServer`] — shared by the integration tests, the bench harness
/// and `examples/serve_http.rs`, and small enough to crib for ad-hoc
/// scripting.
///
/// # Errors
///
/// [`ServeError::Http`] when the connection, write, read or response
/// parse fails. A non-2xx status is **not** an error — inspect
/// [`HttpReply::status`].
pub fn http_call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Result<HttpReply, ServeError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Http(format!("connect {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| ServeError::Http(format!("write: {e}")))?;
    stream.write_all(body).map_err(|e| ServeError::Http(format!("write: {e}")))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| ServeError::Http(format!("read: {e}")))?;
    parse_reply(&raw)
}

fn parse_reply(raw: &[u8]) -> Result<HttpReply, ServeError> {
    let head_end =
        find_head_end(raw).ok_or_else(|| ServeError::Http("response has no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ServeError::Http("response head is not valid UTF-8".into()))?;
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::Http(format!("malformed status line: {status_line:?}")))?;
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok(HttpReply { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found_only_when_complete() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn reply_parser_rejects_garbage() {
        assert!(parse_reply(b"not http at all").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        let ok = parse_reply(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n{}").unwrap();
        assert_eq!(ok, HttpReply { status: 200, body: "{}".to_string() });
    }

    #[test]
    fn server_config_from_env_rejects_non_numbers() {
        // Env mutation is process-global; this test owns these variables.
        std::env::set_var("XRLFLOW_HTTP_MAX_BODY_BYTES", "12345");
        std::env::set_var("XRLFLOW_HTTP_MAX_HEADER_BYTES", "zero");
        assert!(ServerConfig::from_env().is_err());
        std::env::set_var("XRLFLOW_HTTP_MAX_HEADER_BYTES", "4096");
        std::env::set_var("XRLFLOW_HTTP_IO_TIMEOUT_MS", "250");
        std::env::set_var("XRLFLOW_HTTP_DRAIN_MS", "750");
        let config = ServerConfig::from_env().unwrap();
        assert_eq!(config.max_body_bytes, 12345);
        assert_eq!(config.max_header_bytes, 4096);
        assert_eq!(config.io_timeout, Duration::from_millis(250));
        assert_eq!(config.drain_timeout, Duration::from_millis(750));
        std::env::remove_var("XRLFLOW_HTTP_MAX_BODY_BYTES");
        std::env::remove_var("XRLFLOW_HTTP_MAX_HEADER_BYTES");
        std::env::remove_var("XRLFLOW_HTTP_IO_TIMEOUT_MS");
        std::env::remove_var("XRLFLOW_HTTP_DRAIN_MS");
    }
}
