//! The persistent optimisation-result cache, with configurable entry/byte
//! budgets and LRU eviction.
//!
//! Results are keyed by the *request* graph's [`Graph::canonical_hash`], so
//! structurally identical graphs — regardless of node numbering, insertion
//! order, or names — share one entry. The cache serialises to a versioned
//! JSON document (graphs embedded in the interchange format of
//! [`xrlflow_graph::json`]; see `docs/FORMATS.md` for the full schema) so a
//! restarted server can reload it and keep answering repeat requests
//! without re-running the policy.
//!
//! Cache keys are serialised as **decimal strings**, not JSON numbers:
//! canonical hashes use all 64 bits and JSON numbers are `f64`, which is
//! only exact up to 2^53.
//!
//! ## Budgets and eviction
//!
//! A [`CacheConfig`] bounds the cache by entry count and/or by (estimated)
//! bytes; [`ResultCache::insert`] evicts least-recently-used entries until
//! both budgets hold again. Recency is advanced by [`ResultCache::get`]
//! (every served hit refreshes its entry) and by inserts; recency is **not**
//! persisted — a reloaded snapshot starts with recency in document order, so
//! when a snapshot is loaded into a smaller budget the clamp keeps the
//! entries latest in the document. Every eviction bumps the
//! `serve/cache_evictions` counter and the `serve/cache_entries` /
//! `serve/cache_bytes` gauges track live occupancy, so budget pressure is
//! visible in the `/metrics` snapshot.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use xrlflow_core::ConfigError;
use xrlflow_graph::{Graph, JsonValue};

use crate::error::ServeError;

/// The persistence format version this build writes and accepts.
pub const CACHE_JSON_VERSION: u64 = 1;

/// The `"format"` marker identifying a cache snapshot document.
pub const CACHE_JSON_FORMAT: &str = "xrlflow-serve-cache";

/// One cached optimisation outcome.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The optimised graph.
    pub graph: Arc<Graph>,
    /// Simulated latency of the request graph (ms).
    pub initial_latency_ms: f64,
    /// Simulated latency of the optimised graph (ms).
    pub final_latency_ms: f64,
    /// Number of substitutions the policy applied.
    pub steps: usize,
}

impl CacheEntry {
    /// Deterministic structural estimate of this entry's in-memory
    /// footprint, used for the [`CacheConfig`] byte budget.
    ///
    /// The estimate is intentionally *structural* (node and edge counts at
    /// fixed per-item costs), not an exact heap measurement: it is cheap,
    /// identical across platforms and allocator states, and scales with the
    /// thing that actually dominates an entry — the optimised graph.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 128;
        const PER_NODE: usize = 160;
        const PER_EDGE: usize = 24;
        ENTRY_OVERHEAD + self.graph.num_nodes() * PER_NODE + self.graph.num_edges() * PER_EDGE
    }
}

/// Entry-count and byte budgets for a [`ResultCache`].
///
/// Built via the validating [`CacheConfig::builder`] (zero budgets are
/// rejected — a cache that can hold nothing is a misconfiguration, not a
/// policy) or read from the environment with [`CacheConfig::from_env`].
/// `None` means unbounded on that axis; [`CacheConfig::unbounded`] (the
/// [`ResultCache::new`] default) bounds neither.
///
/// # Examples
///
/// ```
/// use xrlflow_serve::CacheConfig;
///
/// let config = CacheConfig::builder().max_entries(1024).max_bytes(64 << 20).build().unwrap();
/// assert_eq!(config.max_entries(), Some(1024));
/// assert!(CacheConfig::builder().max_entries(0).build().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheConfig {
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
}

impl CacheConfig {
    /// No budget on either axis — the pre-PR-9 behaviour.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Starts a validating builder with both axes unbounded.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder { max_entries: None, max_bytes: None }
    }

    /// Reads budgets from `XRLFLOW_CACHE_MAX_ENTRIES` and
    /// `XRLFLOW_CACHE_MAX_BYTES`. Unset variables leave the axis unbounded;
    /// set-but-invalid values (non-numeric, zero) are a typed error rather
    /// than a silently unbounded cache.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending variable.
    pub fn from_env() -> Result<Self, ConfigError> {
        let axis = |var: &'static str, field: &'static str| -> Result<Option<usize>, ConfigError> {
            match std::env::var(var) {
                Err(_) => Ok(None),
                Ok(raw) => raw
                    .parse::<usize>()
                    .map_err(|_| ConfigError {
                        field,
                        message: format!("{var} must be a positive integer, got {raw:?}"),
                    })
                    .map(Some),
            }
        };
        let mut builder = Self::builder();
        if let Some(n) = axis("XRLFLOW_CACHE_MAX_ENTRIES", "cache.max_entries")? {
            builder = builder.max_entries(n);
        }
        if let Some(n) = axis("XRLFLOW_CACHE_MAX_BYTES", "cache.max_bytes")? {
            builder = builder.max_bytes(n);
        }
        builder.build()
    }

    /// The entry-count budget, if bounded.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// The byte budget (against [`CacheEntry::approx_bytes`]), if bounded.
    pub fn max_bytes(&self) -> Option<usize> {
        self.max_bytes
    }
}

/// Validating builder for [`CacheConfig`] — see [`CacheConfig::builder`].
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
}

impl CacheConfigBuilder {
    /// Bounds the cache to at most `n` entries.
    pub fn max_entries(mut self, n: usize) -> Self {
        self.max_entries = Some(n);
        self
    }

    /// Bounds the cache to approximately `n` bytes of entries
    /// (per [`CacheEntry::approx_bytes`]).
    pub fn max_bytes(mut self, n: usize) -> Self {
        self.max_bytes = Some(n);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when a configured budget is zero.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        if self.max_entries == Some(0) {
            return Err(ConfigError {
                field: "cache.max_entries",
                message: "must be positive when set (omit it for an unbounded cache)".to_string(),
            });
        }
        if self.max_bytes == Some(0) {
            return Err(ConfigError {
                field: "cache.max_bytes",
                message: "must be positive when set (omit it for an unbounded cache)".to_string(),
            });
        }
        Ok(CacheConfig { max_entries: self.max_entries, max_bytes: self.max_bytes })
    }
}

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    tick: u64,
    bytes: usize,
}

/// An in-memory result cache keyed by canonical graph hash: budget-bounded
/// with LRU eviction, snapshot-persistable to disk.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<u64, Slot>,
    /// Recency index: monotonic tick -> key. The smallest tick is the
    /// least-recently-used entry, so eviction is a `pop_first`.
    recency: BTreeMap<u64, u64>,
    next_tick: u64,
    total_bytes: usize,
    config: CacheConfig,
}

impl ResultCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with the given budgets.
    pub fn with_config(config: CacheConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// The budgets currently in force.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Replaces the budgets, immediately evicting least-recently-used
    /// entries until the new budgets hold. Returns the number of entries
    /// evicted — the load path uses this to report how hard a reloaded
    /// snapshot was clamped.
    pub fn set_config(&mut self, config: CacheConfig) -> usize {
        self.config = config;
        let evicted = self.evict_to_budget();
        self.record_occupancy();
        evicted
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated bytes held by all entries (see [`CacheEntry::approx_bytes`]).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Looks up the result for a request graph's canonical hash, refreshing
    /// the entry's recency: a served hit is the signal the entry is worth
    /// keeping, so `get` is `&mut self`. Use [`ResultCache::peek`] for a
    /// recency-neutral read.
    pub fn get(&mut self, key: u64) -> Option<&CacheEntry> {
        let next_tick = self.next_tick;
        let slot = self.entries.get_mut(&key)?;
        self.recency.remove(&slot.tick);
        slot.tick = next_tick;
        self.recency.insert(next_tick, key);
        self.next_tick += 1;
        Some(&slot.entry)
    }

    /// Looks up a result without touching recency (tests, inspection).
    pub fn peek(&self, key: u64) -> Option<&CacheEntry> {
        self.entries.get(&key).map(|slot| &slot.entry)
    }

    /// Stores a result and evicts least-recently-used entries until the
    /// configured budgets hold, returning how many were evicted.
    ///
    /// Overwriting an existing key is deliberate and harmless: optimisation
    /// is deterministic per key (the policy is read-only and the episode RNG
    /// is seeded from the key), so two racing misses compute identical
    /// entries.
    ///
    /// Budgets are strict: an entry that alone exceeds the byte budget is
    /// evicted immediately (the cache never lies about its footprint); the
    /// `serve/cache_evictions` counter is where such a misconfiguration
    /// becomes visible.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) -> usize {
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.tick);
            self.total_bytes -= old.bytes;
        }
        let bytes = entry.approx_bytes();
        let tick = self.next_tick;
        self.next_tick += 1;
        self.entries.insert(key, Slot { entry, tick, bytes });
        self.recency.insert(tick, key);
        self.total_bytes += bytes;
        let evicted = self.evict_to_budget();
        self.record_occupancy();
        evicted
    }

    /// Evicts LRU entries until both budgets hold. Returns the eviction
    /// count (also recorded into the `serve/cache_evictions` counter).
    fn evict_to_budget(&mut self) -> usize {
        let mut evicted = 0;
        loop {
            let over_entries = self.config.max_entries.is_some_and(|max| self.entries.len() > max);
            let over_bytes = self.config.max_bytes.is_some_and(|max| self.total_bytes > max);
            if !(over_entries || over_bytes) {
                break;
            }
            let Some((_, key)) = self.recency.pop_first() else { break };
            if let Some(slot) = self.entries.remove(&key) {
                self.total_bytes -= slot.bytes;
                evicted += 1;
            }
        }
        if evicted > 0 {
            xrlflow_obs::counter!("serve/cache_evictions").add(evicted as u64);
        }
        evicted
    }

    /// Publishes current occupancy to the `serve/cache_entries` and
    /// `serve/cache_bytes` gauges (values already computed — observation
    /// only).
    fn record_occupancy(&self) {
        xrlflow_obs::gauge!("serve/cache_entries").set(self.entries.len() as f64);
        xrlflow_obs::gauge!("serve/cache_bytes").set(self.total_bytes as f64);
    }

    /// Serialises the cache as a versioned JSON snapshot. Entries are
    /// ordered by key so the output is byte-stable; recency is not
    /// persisted (see the module docs).
    pub fn to_json(&self) -> String {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let entries: Vec<JsonValue> = keys
            .iter()
            .map(|key| {
                let e = &self.entries[key].entry;
                JsonValue::Object(vec![
                    ("key".to_string(), JsonValue::String(key.to_string())),
                    ("initial_latency_ms".to_string(), JsonValue::Number(e.initial_latency_ms)),
                    ("final_latency_ms".to_string(), JsonValue::Number(e.final_latency_ms)),
                    ("steps".to_string(), JsonValue::Number(e.steps as f64)),
                    ("graph".to_string(), e.graph.to_json_value()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("format".to_string(), JsonValue::String(CACHE_JSON_FORMAT.to_string())),
            ("version".to_string(), JsonValue::Number(CACHE_JSON_VERSION as f64)),
            ("entries".to_string(), JsonValue::Array(entries)),
        ])
        .to_json()
    }

    /// Restores an unbounded cache from a JSON snapshot, fully validating
    /// it: the format marker and version, every key, every latency, and
    /// every embedded graph (which goes through the same import validation
    /// as a request graph). See [`ResultCache::from_json_with_config`] to
    /// restore under a budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::Cache`] for malformed documents, [`ServeError::Graph`]
    /// for embedded graphs that fail import validation.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        Self::from_json_with_config(text, CacheConfig::unbounded())
    }

    /// Restores a cache from a JSON snapshot under `config`, clamping with
    /// an eviction pass when the snapshot holds more than the budgets allow
    /// (entries earliest in the document go first — recency is document
    /// order on load). The clamp is visible: evictions land in the
    /// `serve/cache_evictions` counter and the caller can compare
    /// [`ResultCache::len`] against the document.
    ///
    /// # Errors
    ///
    /// See [`ResultCache::from_json`].
    pub fn from_json_with_config(text: &str, config: CacheConfig) -> Result<Self, ServeError> {
        let cache_err = |message: String| ServeError::Cache(message);
        let value = JsonValue::parse(text).map_err(cache_err)?;
        let format = value
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| cache_err("missing \"format\" marker".to_string()))?;
        if format != CACHE_JSON_FORMAT {
            return Err(cache_err(format!("not a cache snapshot (format {format:?})")));
        }
        let version = value
            .get("version")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| cache_err("missing \"version\"".to_string()))?;
        if version as u64 != CACHE_JSON_VERSION {
            return Err(cache_err(format!(
                "unsupported version {version} (this build reads version {CACHE_JSON_VERSION})"
            )));
        }
        let entry_values = value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| cache_err("missing \"entries\" array".to_string()))?;
        let mut cache = Self::with_config(config);
        let mut clamped = 0usize;
        for (i, ev) in entry_values.iter().enumerate() {
            let key = ev
                .get("key")
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| cache_err(format!("entry {i}: key must be a decimal u64 string")))?;
            let latency = |field: &str| {
                ev.get(field)
                    .and_then(JsonValue::as_f64)
                    .filter(|l| l.is_finite() && *l >= 0.0)
                    .ok_or_else(|| cache_err(format!("entry {i}: {field} must be a non-negative number")))
            };
            let initial_latency_ms = latency("initial_latency_ms")?;
            let final_latency_ms = latency("final_latency_ms")?;
            let steps = ev
                .get("steps")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| cache_err(format!("entry {i}: steps must be a non-negative integer")))?;
            let graph_value =
                ev.get("graph").ok_or_else(|| cache_err(format!("entry {i}: missing graph")))?;
            let graph = Graph::from_json_value(graph_value)?;
            clamped += cache.insert(
                key,
                CacheEntry { graph: Arc::new(graph), initial_latency_ms, final_latency_ms, steps },
            );
        }
        if clamped > 0 {
            xrlflow_obs::counter!("serve/cache_load_clamped").add(clamped as u64);
        }
        Ok(cache)
    }

    /// Writes a JSON snapshot of the cache to `path`, atomically: the
    /// document is staged into a temp file, fsynced and renamed over the
    /// target, so a crash mid-save can never leave a torn snapshot under the
    /// final name (a warm restart either sees the old snapshot or the new
    /// one, never garbage).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        xrlflow_tensor::atomic_write(path, self.to_json().as_bytes())
            .map_err(|e| ServeError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Loads and validates a JSON snapshot from `path` into an unbounded
    /// cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be read; the
    /// [`ResultCache::from_json`] errors for malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::load_with_config(path, CacheConfig::unbounded())
    }

    /// Loads a JSON snapshot from `path` under `config`, clamping to the
    /// budgets (see [`ResultCache::from_json_with_config`]).
    ///
    /// # Errors
    ///
    /// See [`ResultCache::load`].
    pub fn load_with_config(path: impl AsRef<Path>, config: CacheConfig) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_json_with_config(&text, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn entry() -> (u64, CacheEntry) {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let key = graph.canonical_hash();
        (
            key,
            CacheEntry { graph: Arc::new(graph), initial_latency_ms: 4.25, final_latency_ms: 3.5, steps: 7 },
        )
    }

    /// Distinct keys over one shared graph: cache budgets don't care that
    /// the graphs coincide, only about keys and sizes.
    fn synthetic_entries(n: usize) -> Vec<(u64, CacheEntry)> {
        let (_, e) = entry();
        (0..n as u64).map(|k| (k, e.clone())).collect()
    }

    #[test]
    fn json_round_trip_preserves_entries_exactly() {
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e.clone());
        let back = ResultCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(back.len(), 1);
        let b = back.peek(key).unwrap();
        assert_eq!(b.graph.canonical_hash(), e.graph.canonical_hash());
        assert_eq!(b.initial_latency_ms, e.initial_latency_ms);
        assert_eq!(b.final_latency_ms, e.final_latency_ms);
        assert_eq!(b.steps, e.steps);
        // Byte-stable output.
        assert_eq!(back.to_json(), cache.to_json());
    }

    #[test]
    fn large_keys_survive_the_round_trip() {
        // Keys above 2^53 are exactly the ones JSON numbers would corrupt.
        let (_, e) = entry();
        let mut cache = ResultCache::new();
        let key = u64::MAX - 1;
        cache.insert(key, e);
        let back = ResultCache::from_json(&cache.to_json()).unwrap();
        assert!(back.peek(key).is_some());
        assert!(back.peek(u64::MAX).is_none());
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        assert!(matches!(ResultCache::from_json("nope"), Err(ServeError::Cache(_))));
        assert!(matches!(
            ResultCache::from_json("{\"format\": \"other\", \"version\": 1, \"entries\": []}"),
            Err(ServeError::Cache(_))
        ));
        assert!(matches!(
            ResultCache::from_json("{\"format\": \"xrlflow-serve-cache\", \"version\": 9, \"entries\": []}"),
            Err(ServeError::Cache(_))
        ));
        // Numeric (non-string) key: rejected to protect 64-bit exactness.
        let doc = "{\"format\": \"xrlflow-serve-cache\", \"version\": 1, \"entries\": [\
            {\"key\": 12, \"initial_latency_ms\": 1, \"final_latency_ms\": 1, \"steps\": 0, \
             \"graph\": {}}]}";
        assert!(matches!(ResultCache::from_json(doc), Err(ServeError::Cache(_))));
        // Corrupted embedded graph: surfaces as a graph import error.
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e);
        let broken = cache.to_json().replace("MatMul", "BogusOp").replace("Conv2d", "BogusOp");
        assert!(matches!(ResultCache::from_json(&broken), Err(ServeError::Graph(_))));
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e);
        let path = std::env::temp_dir().join("xrlflow-serve-cache-unit-test.json");
        cache.save(&path).unwrap();
        let back = ResultCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 1);
        assert!(back.peek(key).is_some());
        assert!(matches!(
            ResultCache::load(std::env::temp_dir().join("xrlflow-no-such-cache.json")),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn config_builder_validates_budgets() {
        assert!(CacheConfig::builder().build().unwrap().max_entries().is_none());
        let cfg = CacheConfig::builder().max_entries(4).max_bytes(1 << 20).build().unwrap();
        assert_eq!(cfg.max_entries(), Some(4));
        assert_eq!(cfg.max_bytes(), Some(1 << 20));
        assert_eq!(CacheConfig::builder().max_entries(0).build().unwrap_err().field, "cache.max_entries");
        assert_eq!(CacheConfig::builder().max_bytes(0).build().unwrap_err().field, "cache.max_bytes");
    }

    #[test]
    fn entry_budget_never_exceeded_and_eviction_is_lru() {
        let config = CacheConfig::builder().max_entries(3).build().unwrap();
        let mut cache = ResultCache::with_config(config);
        let entries = synthetic_entries(5);
        for (key, e) in entries.iter().take(3).cloned() {
            assert_eq!(cache.insert(key, e), 0);
        }
        // Touch key 0 so key 1 becomes the LRU entry.
        assert!(cache.get(0).is_some());
        let (key3, e3) = entries[3].clone();
        assert_eq!(cache.insert(key3, e3), 1, "inserting over budget evicts exactly one entry");
        assert_eq!(cache.len(), 3);
        assert!(cache.peek(1).is_none(), "the least-recently-used entry must be the one evicted");
        assert!(cache.peek(0).is_some() && cache.peek(2).is_some() && cache.peek(3).is_some());
        // Sustained load: the budget holds at every step.
        let (key4, e4) = entries[4].clone();
        cache.insert(key4, e4);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn byte_budget_evicts_and_accounting_tracks_entries() {
        let (_, e) = entry();
        let per_entry = e.approx_bytes();
        assert!(per_entry > 0);
        let config = CacheConfig::builder().max_bytes(per_entry * 2).build().unwrap();
        let mut cache = ResultCache::with_config(config);
        for (key, e) in synthetic_entries(4) {
            cache.insert(key, e);
        }
        assert_eq!(cache.len(), 2, "byte budget fits exactly two entries");
        assert!(cache.total_bytes() <= per_entry * 2);
        // An unbounded cache tracks bytes without evicting.
        let mut unbounded = ResultCache::new();
        for (key, e) in synthetic_entries(4) {
            assert_eq!(unbounded.insert(key, e), 0);
        }
        assert_eq!(unbounded.total_bytes(), per_entry * 4);
        // Overwriting a key must not double-count its bytes.
        let (_, e) = entry();
        unbounded.insert(0, e);
        assert_eq!(unbounded.total_bytes(), per_entry * 4);
    }

    #[test]
    fn oversized_single_entry_is_evicted_not_kept_over_budget() {
        let (_, e) = entry();
        let config = CacheConfig::builder().max_bytes(e.approx_bytes() / 2).build().unwrap();
        let mut cache = ResultCache::with_config(config);
        assert_eq!(cache.insert(9, e), 1, "an entry alone over the byte budget cannot stay");
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn set_config_clamps_immediately() {
        let mut cache = ResultCache::new();
        for (key, e) in synthetic_entries(5) {
            cache.insert(key, e);
        }
        let evicted = cache.set_config(CacheConfig::builder().max_entries(2).build().unwrap());
        assert_eq!(evicted, 3);
        assert_eq!(cache.len(), 2);
        // The survivors are the most recently inserted keys.
        assert!(cache.peek(3).is_some() && cache.peek(4).is_some());
    }

    #[test]
    fn loading_a_snapshot_larger_than_the_budget_clamps_with_evictions() {
        let mut cache = ResultCache::new();
        for (key, e) in synthetic_entries(4) {
            cache.insert(key, e);
        }
        let json = cache.to_json();
        let config = CacheConfig::builder().max_entries(2).build().unwrap();
        let clamped = ResultCache::from_json_with_config(&json, config).unwrap();
        assert_eq!(clamped.len(), 2, "load must clamp to the entry budget, not grow unbounded");
        // Document order is recency order on load: the latest entries stay.
        assert!(clamped.peek(2).is_some() && clamped.peek(3).is_some());
        // An unbounded load of the same document keeps everything.
        assert_eq!(ResultCache::from_json(&json).unwrap().len(), 4);
    }

    #[test]
    fn from_env_reads_and_validates_budgets() {
        // Unset: unbounded. (Serial-safe: these vars are only read here.)
        std::env::remove_var("XRLFLOW_CACHE_MAX_ENTRIES");
        std::env::remove_var("XRLFLOW_CACHE_MAX_BYTES");
        assert_eq!(CacheConfig::from_env().unwrap(), CacheConfig::unbounded());
        std::env::set_var("XRLFLOW_CACHE_MAX_ENTRIES", "8");
        std::env::set_var("XRLFLOW_CACHE_MAX_BYTES", "1048576");
        let cfg = CacheConfig::from_env().unwrap();
        assert_eq!(cfg.max_entries(), Some(8));
        assert_eq!(cfg.max_bytes(), Some(1048576));
        std::env::set_var("XRLFLOW_CACHE_MAX_ENTRIES", "lots");
        assert_eq!(CacheConfig::from_env().unwrap_err().field, "cache.max_entries");
        std::env::set_var("XRLFLOW_CACHE_MAX_ENTRIES", "0");
        assert_eq!(CacheConfig::from_env().unwrap_err().field, "cache.max_entries");
        std::env::remove_var("XRLFLOW_CACHE_MAX_ENTRIES");
        std::env::remove_var("XRLFLOW_CACHE_MAX_BYTES");
    }
}
