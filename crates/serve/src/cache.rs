//! The persistent optimisation-result cache.
//!
//! Results are keyed by the *request* graph's [`Graph::canonical_hash`], so
//! structurally identical graphs — regardless of node numbering, insertion
//! order, or names — share one entry. The cache serialises to a versioned
//! JSON document (graphs embedded in the interchange format of
//! [`xrlflow_graph::json`]) so a restarted server can reload it and keep
//! answering repeat requests without re-running the policy.
//!
//! Cache keys are serialised as **decimal strings**, not JSON numbers:
//! canonical hashes use all 64 bits and JSON numbers are `f64`, which is
//! only exact up to 2^53.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use xrlflow_graph::{Graph, JsonValue};

use crate::error::ServeError;

/// The persistence format version this build writes and accepts.
pub const CACHE_JSON_VERSION: u64 = 1;

/// The `"format"` marker identifying a cache snapshot document.
pub const CACHE_JSON_FORMAT: &str = "xrlflow-serve-cache";

/// One cached optimisation outcome.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The optimised graph.
    pub graph: Arc<Graph>,
    /// Simulated latency of the request graph (ms).
    pub initial_latency_ms: f64,
    /// Simulated latency of the optimised graph (ms).
    pub final_latency_ms: f64,
    /// Number of substitutions the policy applied.
    pub steps: usize,
}

/// An in-memory result cache keyed by canonical graph hash, snapshot-
/// persistable to disk.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<u64, CacheEntry>,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the result for a request graph's canonical hash.
    pub fn get(&self, key: u64) -> Option<&CacheEntry> {
        self.entries.get(&key)
    }

    /// Stores a result. Overwriting an existing key is deliberate and
    /// harmless: optimisation is deterministic per key (the policy is
    /// read-only and the episode RNG is seeded from the key), so two racing
    /// misses compute identical entries.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Serialises the cache as a versioned JSON snapshot. Entries are
    /// ordered by key so the output is byte-stable.
    pub fn to_json(&self) -> String {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let entries: Vec<JsonValue> = keys
            .iter()
            .map(|key| {
                let e = &self.entries[key];
                JsonValue::Object(vec![
                    ("key".to_string(), JsonValue::String(key.to_string())),
                    ("initial_latency_ms".to_string(), JsonValue::Number(e.initial_latency_ms)),
                    ("final_latency_ms".to_string(), JsonValue::Number(e.final_latency_ms)),
                    ("steps".to_string(), JsonValue::Number(e.steps as f64)),
                    ("graph".to_string(), e.graph.to_json_value()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("format".to_string(), JsonValue::String(CACHE_JSON_FORMAT.to_string())),
            ("version".to_string(), JsonValue::Number(CACHE_JSON_VERSION as f64)),
            ("entries".to_string(), JsonValue::Array(entries)),
        ])
        .to_json()
    }

    /// Restores a cache from a JSON snapshot, fully validating it: the
    /// format marker and version, every key, every latency, and every
    /// embedded graph (which goes through the same import validation as a
    /// request graph).
    ///
    /// # Errors
    ///
    /// [`ServeError::Cache`] for malformed documents, [`ServeError::Graph`]
    /// for embedded graphs that fail import validation.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        let cache_err = |message: String| ServeError::Cache(message);
        let value = JsonValue::parse(text).map_err(cache_err)?;
        let format = value
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| cache_err("missing \"format\" marker".to_string()))?;
        if format != CACHE_JSON_FORMAT {
            return Err(cache_err(format!("not a cache snapshot (format {format:?})")));
        }
        let version = value
            .get("version")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| cache_err("missing \"version\"".to_string()))?;
        if version as u64 != CACHE_JSON_VERSION {
            return Err(cache_err(format!(
                "unsupported version {version} (this build reads version {CACHE_JSON_VERSION})"
            )));
        }
        let entry_values = value
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| cache_err("missing \"entries\" array".to_string()))?;
        let mut entries = HashMap::with_capacity(entry_values.len());
        for (i, ev) in entry_values.iter().enumerate() {
            let key = ev
                .get("key")
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| cache_err(format!("entry {i}: key must be a decimal u64 string")))?;
            let latency = |field: &str| {
                ev.get(field)
                    .and_then(JsonValue::as_f64)
                    .filter(|l| l.is_finite() && *l >= 0.0)
                    .ok_or_else(|| cache_err(format!("entry {i}: {field} must be a non-negative number")))
            };
            let initial_latency_ms = latency("initial_latency_ms")?;
            let final_latency_ms = latency("final_latency_ms")?;
            let steps = ev
                .get("steps")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| cache_err(format!("entry {i}: steps must be a non-negative integer")))?;
            let graph_value =
                ev.get("graph").ok_or_else(|| cache_err(format!("entry {i}: missing graph")))?;
            let graph = Graph::from_json_value(graph_value)?;
            entries.insert(
                key,
                CacheEntry { graph: Arc::new(graph), initial_latency_ms, final_latency_ms, steps },
            );
        }
        Ok(Self { entries })
    }

    /// Writes a JSON snapshot of the cache to `path`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())
            .map_err(|e| ServeError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Loads and validates a JSON snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be read; the
    /// [`ResultCache::from_json`] errors for malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn entry() -> (u64, CacheEntry) {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let key = graph.canonical_hash();
        (
            key,
            CacheEntry { graph: Arc::new(graph), initial_latency_ms: 4.25, final_latency_ms: 3.5, steps: 7 },
        )
    }

    #[test]
    fn json_round_trip_preserves_entries_exactly() {
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e.clone());
        let back = ResultCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(back.len(), 1);
        let b = back.get(key).unwrap();
        assert_eq!(b.graph.canonical_hash(), e.graph.canonical_hash());
        assert_eq!(b.initial_latency_ms, e.initial_latency_ms);
        assert_eq!(b.final_latency_ms, e.final_latency_ms);
        assert_eq!(b.steps, e.steps);
        // Byte-stable output.
        assert_eq!(back.to_json(), cache.to_json());
    }

    #[test]
    fn large_keys_survive_the_round_trip() {
        // Keys above 2^53 are exactly the ones JSON numbers would corrupt.
        let (_, e) = entry();
        let mut cache = ResultCache::new();
        let key = u64::MAX - 1;
        cache.insert(key, e);
        let back = ResultCache::from_json(&cache.to_json()).unwrap();
        assert!(back.get(key).is_some());
        assert!(back.get(u64::MAX).is_none());
    }

    #[test]
    fn malformed_snapshots_are_typed_errors() {
        assert!(matches!(ResultCache::from_json("nope"), Err(ServeError::Cache(_))));
        assert!(matches!(
            ResultCache::from_json("{\"format\": \"other\", \"version\": 1, \"entries\": []}"),
            Err(ServeError::Cache(_))
        ));
        assert!(matches!(
            ResultCache::from_json("{\"format\": \"xrlflow-serve-cache\", \"version\": 9, \"entries\": []}"),
            Err(ServeError::Cache(_))
        ));
        // Numeric (non-string) key: rejected to protect 64-bit exactness.
        let doc = "{\"format\": \"xrlflow-serve-cache\", \"version\": 1, \"entries\": [\
            {\"key\": 12, \"initial_latency_ms\": 1, \"final_latency_ms\": 1, \"steps\": 0, \
             \"graph\": {}}]}";
        assert!(matches!(ResultCache::from_json(doc), Err(ServeError::Cache(_))));
        // Corrupted embedded graph: surfaces as a graph import error.
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e);
        let broken = cache.to_json().replace("MatMul", "BogusOp").replace("Conv2d", "BogusOp");
        assert!(matches!(ResultCache::from_json(&broken), Err(ServeError::Graph(_))));
    }

    #[test]
    fn save_load_round_trip_on_disk() {
        let mut cache = ResultCache::new();
        let (key, e) = entry();
        cache.insert(key, e);
        let path = std::env::temp_dir().join("xrlflow-serve-cache-unit-test.json");
        cache.save(&path).unwrap();
        let back = ResultCache::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 1);
        assert!(back.get(key).is_some());
        assert!(matches!(
            ResultCache::load(std::env::temp_dir().join("xrlflow-no-such-cache.json")),
            Err(ServeError::Io(_))
        ));
    }
}
