//! The optimisation service: snapshot-replica policy serving behind a
//! bounded persistent result cache, with hot snapshot swap and single-flight
//! miss admission.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, RwLock};

use xrlflow_core::fault;
use xrlflow_core::{greedy_optimize, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::Environment;
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_tensor::{ParamSnapshot, XorShiftRng};

use crate::cache::{CacheConfig, CacheEntry, ResultCache};
use crate::error::ServeError;

/// The outcome of one optimisation request.
#[derive(Debug, Clone)]
pub struct OptimizeResponse {
    /// The optimised graph (shared with the cache — cheap to clone).
    pub graph: Arc<Graph>,
    /// Simulated latency of the request graph (ms).
    pub initial_latency_ms: f64,
    /// Simulated latency of the optimised graph (ms).
    pub final_latency_ms: f64,
    /// Number of substitutions the policy applied.
    pub steps: usize,
    /// Whether the response came from the result cache (no policy run).
    pub cache_hit: bool,
}

impl OptimizeResponse {
    /// End-to-end speedup in percent.
    pub fn speedup_percent(&self) -> f64 {
        if self.final_latency_ms == 0.0 {
            0.0
        } else {
            (self.initial_latency_ms / self.final_latency_ms - 1.0) * 100.0
        }
    }
}

/// Monotonic request counters, for observability and for asserting cache
/// behaviour in tests.
///
/// A [`OptimizeService::stats`] snapshot is **consistent**: the counters are
/// updated and read under one lock, so
/// `requests == cache_hits + policy_invocations` holds in every snapshot a
/// concurrent reader can observe (earlier versions bumped three independent
/// atomics and readers could see a torn trio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Total optimisation requests accepted (invalid graphs not counted).
    pub requests: usize,
    /// Requests answered from the result cache. Includes *coalesced* misses:
    /// requests that arrived while another request was already optimising
    /// the same graph, waited for it, and were then served from the cache.
    pub cache_hits: usize,
    /// Requests that ran the policy (greedy episodes executed). With
    /// single-flight admission, N racing misses on one key cost exactly one
    /// invocation.
    pub policy_invocations: usize,
    /// The subset of `cache_hits` that waited for an in-flight optimisation
    /// of the same key instead of finding the entry already present.
    pub coalesced: usize,
}

/// How one in-flight optimisation ended, from a waiter's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlightOutcome {
    /// The leader is still optimising.
    Pending,
    /// The leader finished and published its result to the cache.
    Complete,
    /// The leader panicked mid-episode; no result was published.
    LeaderFailed,
}

/// One in-flight optimisation a racing miss can wait on instead of running
/// its own episode.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightOutcome>,
    condvar: Condvar,
}

impl Default for Flight {
    fn default() -> Self {
        Self { state: Mutex::new(FlightOutcome::Pending), condvar: Condvar::new() }
    }
}

impl Flight {
    fn wait(&self) -> FlightOutcome {
        let mut state = self.state.lock().expect("flight lock");
        while *state == FlightOutcome::Pending {
            state = self.condvar.wait(state).expect("flight lock");
        }
        *state
    }

    fn finish(&self, outcome: FlightOutcome) {
        *self.state.lock().expect("flight lock") = outcome;
        self.condvar.notify_all();
    }
}

/// Removes the flight from the table and wakes every waiter when the leader
/// is done — including when it unwinds, so waiters can never deadlock on a
/// flight whose leader died. A leader that unwinds is detected with
/// [`std::thread::panicking`] and reported to its waiters as
/// [`FlightOutcome::LeaderFailed`], which they surface as the typed
/// [`ServeError::FlightFailed`] instead of hanging or silently re-running.
struct FlightGuard<'a> {
    service: &'a OptimizeService,
    key: u64,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let flight = self.service.flights.lock().expect("flights lock").remove(&self.key);
        if let Some(flight) = flight {
            let outcome = if std::thread::panicking() {
                xrlflow_obs::counter!("serve/flight_leader_panics").inc();
                FlightOutcome::LeaderFailed
            } else {
                FlightOutcome::Complete
            };
            flight.finish(outcome);
        }
    }
}

/// Optimisation-as-a-service over a frozen policy.
///
/// The service owns a read-only agent replica built from a
/// [`ParamSnapshot`] (the same bit-identical replica protocol the parallel
/// rollout engine uses), a shared rewrite rule set and latency simulator,
/// and a budget-bounded [`ResultCache`] keyed by [`Graph::canonical_hash`].
/// Repeat requests for structurally identical graphs are answered from the
/// cache without touching the policy; the cache snapshots to disk so a
/// restarted server stays warm.
///
/// Three serving-hardening properties (PR 9) on top of that:
///
/// * **Hot snapshot swap** ([`OptimizeService::swap_snapshot`]): the policy
///   replica lives behind an `Arc` pointer; a new checkpoint is loaded and
///   validated *off* the request path and then swapped in as a pointer
///   exchange. In-flight requests keep the replica they started with;
///   rejected checkpoints leave the old policy serving.
/// * **Single-flight admission**: concurrent misses on the same canonical
///   hash run **one** greedy episode — the first request leads, the rest
///   wait and are served from the cache (counted in
///   [`ServeStats::coalesced`]).
/// * **Bounded cache** ([`OptimizeService::set_cache_config`]): entry/byte
///   budgets with LRU eviction, visible in `/metrics`.
///
/// All methods take `&self`: the service is `Sync` and can be shared across
/// request threads behind an `Arc` (the HTTP front end in
/// [`crate::http`] does exactly that).
#[derive(Debug)]
pub struct OptimizeService {
    /// The serving replica. Requests clone the `Arc` under a read lock and
    /// drop the lock before optimising; `swap_snapshot` exchanges the
    /// pointer under the write lock. Neither side ever holds the lock while
    /// running the policy.
    policy: RwLock<Arc<XrlflowAgent>>,
    config: XrlflowConfig,
    rules: Arc<RuleSet>,
    simulator: Arc<InferenceSimulator>,
    cache: Mutex<ResultCache>,
    stats: Mutex<ServeStats>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl OptimizeService {
    /// Builds a service around a trained policy snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the configuration is degenerate,
    /// [`ServeError::Snapshot`] when the snapshot does not match the
    /// architecture the configuration describes.
    pub fn from_snapshot(config: &XrlflowConfig, snapshot: &ParamSnapshot) -> Result<Self, ServeError> {
        config.validate()?;
        let agent = XrlflowAgent::from_snapshot(config, snapshot)?;
        Ok(Self::assemble(config.clone(), agent))
    }

    /// Builds a service around a freshly initialised (untrained) policy —
    /// useful for smoke tests and for exercising the serving path before a
    /// training run has produced a snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the configuration is degenerate.
    pub fn untrained(config: &XrlflowConfig, seed: u64) -> Result<Self, ServeError> {
        config.validate()?;
        let agent = XrlflowAgent::new(config, seed);
        Ok(Self::assemble(config.clone(), agent))
    }

    fn assemble(config: XrlflowConfig, agent: XrlflowAgent) -> Self {
        Self {
            policy: RwLock::new(Arc::new(agent)),
            config,
            rules: Arc::new(RuleSet::standard()),
            simulator: Arc::new(InferenceSimulator::new(DeviceProfile::default())),
            cache: Mutex::new(ResultCache::new()),
            stats: Mutex::new(ServeStats::default()),
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Hot-swaps the serving policy to a new checkpoint while traffic keeps
    /// flowing.
    ///
    /// The new snapshot is validated and materialised into a replica
    /// **before** any serving state changes — the old policy keeps serving
    /// throughout the load, and in-flight requests that already cloned the
    /// old replica's `Arc` finish on it undisturbed. Only once the new
    /// replica is fully built does the swap happen, as a pointer exchange
    /// under a briefly held write lock. A snapshot that does not match the
    /// service architecture is rejected with the old policy untouched.
    ///
    /// The result cache deliberately survives a swap: entries are keyed by
    /// request graph, and serving a cached result computed by the previous
    /// policy is exactly the paper's amortisation story. Call
    /// [`OptimizeService::clear_cache`] after swapping if the new policy
    /// should re-optimise everything from scratch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] when the snapshot does not match the
    /// configured architecture; the previous policy remains in service.
    pub fn swap_snapshot(&self, snapshot: &ParamSnapshot) -> Result<(), ServeError> {
        let replica = match XrlflowAgent::from_snapshot(&self.config, snapshot) {
            Ok(agent) => Arc::new(agent),
            Err(e) => {
                xrlflow_obs::counter!("serve/snapshot_swap_rejected").inc();
                return Err(e.into());
            }
        };
        *self.policy.write().expect("policy lock") = replica;
        xrlflow_obs::counter!("serve/snapshot_swaps").inc();
        Ok(())
    }

    /// The replica currently serving (requests pin their own clone of this).
    fn current_policy(&self) -> Arc<XrlflowAgent> {
        Arc::clone(&self.policy.read().expect("policy lock"))
    }

    /// Classifies one accepted request, updating `requests` **and** its
    /// outcome counter under a single lock so no reader ever observes
    /// `requests != cache_hits + policy_invocations`.
    fn record_request(&self, cache_hit: bool, coalesced: bool) {
        let mut stats = self.stats.lock().expect("stats lock");
        stats.requests += 1;
        if cache_hit {
            stats.cache_hits += 1;
            xrlflow_obs::counter!("serve/cache_hit").inc();
            if coalesced {
                stats.coalesced += 1;
                xrlflow_obs::counter!("serve/coalesced").inc();
            }
        } else {
            stats.policy_invocations += 1;
            xrlflow_obs::counter!("serve/policy_invocation").inc();
        }
        xrlflow_obs::counter!("serve/requests").inc();
    }

    /// Optimises a graph document in the JSON interchange format — the
    /// boundary the HTTP front end ([`crate::http`]) calls with a request
    /// body.
    ///
    /// # Errors
    ///
    /// [`ServeError::Graph`] when the document is malformed or invalid;
    /// never panics on untrusted input.
    pub fn optimize_json(&self, text: &str) -> Result<OptimizeResponse, ServeError> {
        let graph = Graph::from_json(text)?;
        self.optimize_validated(graph)
    }

    /// Optimises an in-process graph.
    ///
    /// # Errors
    ///
    /// [`ServeError::Graph`] when the graph fails validation.
    pub fn optimize(&self, graph: &Graph) -> Result<OptimizeResponse, ServeError> {
        graph.validate()?;
        self.optimize_validated(graph.clone())
    }

    fn optimize_validated(&self, graph: Graph) -> Result<OptimizeResponse, ServeError> {
        let _span = xrlflow_obs::span!("serve/request");
        let key = graph.canonical_hash();
        let mut coalesced = false;
        // Single-flight admission: check the cache, and on a miss either
        // become the leader for this key or wait for the request already
        // optimising it. Waiters of a *completed* flight loop back to the
        // cache check; they may find the entry, or (if it was evicted in
        // between) become the new leader themselves. Waiters of a flight
        // whose leader panicked get the typed [`ServeError::FlightFailed`]
        // instead — one fault fails its coalesced cohort loudly rather than
        // stampeding the policy with silent re-runs.
        loop {
            if let Some(entry) = self.cache.lock().expect("cache lock").get(key) {
                self.record_request(true, coalesced);
                return Ok(response_from(entry, true));
            }
            let existing = {
                let mut flights = self.flights.lock().expect("flights lock");
                match flights.get(&key) {
                    Some(flight) => Some(Arc::clone(flight)),
                    None => {
                        flights.insert(key, Arc::new(Flight::default()));
                        None
                    }
                }
            };
            match existing {
                Some(flight) => {
                    if flight.wait() == FlightOutcome::LeaderFailed {
                        return Err(ServeError::FlightFailed { key });
                    }
                    coalesced = true;
                }
                None => break,
            }
        }
        // Leader: run a greedy episode against the frozen policy. No lock is
        // held while optimising — cache hits and other keys' misses proceed
        // concurrently, and a hot swap can land mid-episode (this request
        // pinned its replica). The guard wakes the waiters even on unwind.
        let _flight_guard = FlightGuard { service: self, key };
        let policy = self.current_policy();
        self.record_request(false, false);
        // Fault-injection hook (inert unless a plan is installed): lets the
        // suites kill a single-flight leader mid-episode deterministically.
        fault::trip(fault::FaultPhase::Serve, key, 0);
        let mut env = Environment::from_shared(
            Arc::new(graph),
            Arc::clone(&self.rules),
            Arc::clone(&self.simulator),
            self.config.env.clone(),
        );
        let mut rng = XorShiftRng::new(key);
        let result = greedy_optimize(&policy, &mut env, &mut rng);
        let entry = CacheEntry {
            graph: Arc::new(result.graph),
            initial_latency_ms: result.initial_latency_ms,
            final_latency_ms: result.final_latency_ms,
            steps: result.steps,
        };
        let response = response_from(&entry, false);
        self.cache.lock().expect("cache lock").insert(key, entry);
        Ok(response)
    }

    /// Current request counters, as one consistent snapshot
    /// (`requests == cache_hits + policy_invocations` always holds).
    pub fn stats(&self) -> ServeStats {
        *self.stats.lock().expect("stats lock")
    }

    /// The process-wide telemetry registry as a metrics JSON document —
    /// request counters, the `serve/request` latency histogram, cache
    /// occupancy/eviction series, and every other subsystem's series. This
    /// is the `GET /metrics` body of the HTTP front end; `docs/FORMATS.md`
    /// and `docs/OPERATIONS.md` describe the schema field by field.
    pub fn metrics_json(&self) -> String {
        xrlflow_obs::Registry::global().snapshot().to_json()
    }

    /// Number of distinct graphs with cached results.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Estimated bytes held by the result cache.
    pub fn cache_bytes(&self) -> usize {
        self.cache.lock().expect("cache lock").total_bytes()
    }

    /// Replaces the result-cache budgets, evicting immediately if the live
    /// cache exceeds them. Returns the number of entries evicted.
    pub fn set_cache_config(&self, config: CacheConfig) -> usize {
        self.cache.lock().expect("cache lock").set_config(config)
    }

    /// The result-cache budgets currently in force.
    pub fn cache_config(&self) -> CacheConfig {
        self.cache.lock().expect("cache lock").config()
    }

    /// Drops every cached result (budgets are kept). Useful after a
    /// [`OptimizeService::swap_snapshot`] when the new policy should
    /// re-optimise previously seen graphs.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("cache lock");
        let config = cache.config();
        *cache = ResultCache::with_config(config);
    }

    /// Serialises the current result cache as a JSON snapshot.
    pub fn cache_to_json(&self) -> String {
        self.cache.lock().expect("cache lock").to_json()
    }

    /// Writes the result cache to disk so a restarted service can
    /// [`OptimizeService::load_cache`] it and stay warm.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be written.
    pub fn save_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        self.cache.lock().expect("cache lock").save(path)
    }

    /// Replaces the result cache with a snapshot loaded from disk
    /// (validating every entry), **clamped to the budgets currently in
    /// force**: a snapshot holding more than the configured entry/byte
    /// budget is evicted down to fit during the load — never silently
    /// adopted unbounded — with the clamp visible in the
    /// `serve/cache_load_clamped` counter.
    ///
    /// # Errors
    ///
    /// The [`ResultCache::load_with_config`] errors.
    pub fn load_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let config = self.cache_config();
        let loaded = ResultCache::load_with_config(path, config)?;
        let mut cache = self.cache.lock().expect("cache lock");
        *cache = loaded;
        Ok(())
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &XrlflowConfig {
        &self.config
    }
}

fn response_from(entry: &CacheEntry, cache_hit: bool) -> OptimizeResponse {
    OptimizeResponse {
        graph: Arc::clone(&entry.graph),
        initial_latency_ms: entry.initial_latency_ms,
        final_latency_ms: entry.final_latency_ms,
        steps: entry.steps,
        cache_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::{OpAttributes, OpKind, TensorShape};

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let input = g.add_input(TensorShape::new(vec![1, 8]));
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![input.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn waiters_on_a_failed_leader_get_a_typed_error_and_the_service_recovers() {
        let service = Arc::new(OptimizeService::untrained(&XrlflowConfig::smoke_test(), 1).unwrap());
        let graph = tiny_graph();
        let key = graph.canonical_hash();

        // Simulate an in-flight leader, then have it die: remove the
        // flight and report LeaderFailed — exactly what FlightGuard does
        // when the leader thread unwinds.
        service.flights.lock().unwrap().insert(key, Arc::new(Flight::default()));
        let reaper = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let flight = service.flights.lock().unwrap().remove(&key).unwrap();
                flight.finish(FlightOutcome::LeaderFailed);
            })
        };
        let err = service.optimize(&graph).unwrap_err();
        assert!(
            matches!(err, ServeError::FlightFailed { key: k } if k == key),
            "coalesced request must fail with the typed flight error, got: {err}"
        );
        reaper.join().unwrap();

        // The flight table is clear — the next request leads and succeeds.
        let response = service.optimize(&graph).unwrap();
        assert!(!response.cache_hit);
        let stats = service.stats();
        assert_eq!(stats.cache_hits + stats.policy_invocations, stats.requests);
    }
}
