//! The optimisation service: snapshot-replica policy serving behind a
//! persistent result cache.

use std::sync::{Arc, Mutex};

use xrlflow_core::{greedy_optimize, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::Environment;
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_tensor::{ParamSnapshot, XorShiftRng};

use crate::cache::{CacheEntry, ResultCache};
use crate::error::ServeError;

/// The outcome of one optimisation request.
#[derive(Debug, Clone)]
pub struct OptimizeResponse {
    /// The optimised graph (shared with the cache — cheap to clone).
    pub graph: Arc<Graph>,
    /// Simulated latency of the request graph (ms).
    pub initial_latency_ms: f64,
    /// Simulated latency of the optimised graph (ms).
    pub final_latency_ms: f64,
    /// Number of substitutions the policy applied.
    pub steps: usize,
    /// Whether the response came from the result cache (no policy run).
    pub cache_hit: bool,
}

impl OptimizeResponse {
    /// End-to-end speedup in percent.
    pub fn speedup_percent(&self) -> f64 {
        if self.final_latency_ms == 0.0 {
            0.0
        } else {
            (self.initial_latency_ms / self.final_latency_ms - 1.0) * 100.0
        }
    }
}

/// Monotonic request counters, for observability and for asserting cache
/// behaviour in tests.
///
/// A [`OptimizeService::stats`] snapshot is **consistent**: the three
/// counters are updated and read under one lock, so
/// `requests == cache_hits + policy_invocations` holds in every snapshot a
/// concurrent reader can observe (earlier versions bumped three independent
/// atomics and readers could see a torn trio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Total optimisation requests accepted (invalid graphs not counted).
    pub requests: usize,
    /// Requests answered from the result cache.
    pub cache_hits: usize,
    /// Requests that ran the policy (greedy episodes executed).
    pub policy_invocations: usize,
}

/// Optimisation-as-a-service over a frozen policy.
///
/// The service owns a read-only agent replica built from a
/// [`ParamSnapshot`] (the same bit-identical replica protocol the parallel
/// rollout engine uses), a shared rewrite rule set and latency simulator,
/// and a [`ResultCache`] keyed by [`Graph::canonical_hash`]. Repeat
/// requests for structurally identical graphs are answered from the cache
/// without touching the policy; the cache snapshots to disk so a restarted
/// server stays warm.
///
/// All methods take `&self`: the service is `Sync` and can be shared across
/// request threads behind an `Arc`.
#[derive(Debug)]
pub struct OptimizeService {
    agent: XrlflowAgent,
    config: XrlflowConfig,
    rules: Arc<RuleSet>,
    simulator: Arc<InferenceSimulator>,
    cache: Mutex<ResultCache>,
    stats: Mutex<ServeStats>,
}

impl OptimizeService {
    /// Builds a service around a trained policy snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the configuration is degenerate,
    /// [`ServeError::Snapshot`] when the snapshot does not match the
    /// architecture the configuration describes.
    pub fn from_snapshot(config: &XrlflowConfig, snapshot: &ParamSnapshot) -> Result<Self, ServeError> {
        config.validate()?;
        let agent = XrlflowAgent::from_snapshot(config, snapshot)?;
        Ok(Self::assemble(config.clone(), agent))
    }

    /// Builds a service around a freshly initialised (untrained) policy —
    /// useful for smoke tests and for exercising the serving path before a
    /// training run has produced a snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the configuration is degenerate.
    pub fn untrained(config: &XrlflowConfig, seed: u64) -> Result<Self, ServeError> {
        config.validate()?;
        let agent = XrlflowAgent::new(config, seed);
        Ok(Self::assemble(config.clone(), agent))
    }

    fn assemble(config: XrlflowConfig, agent: XrlflowAgent) -> Self {
        Self {
            agent,
            config,
            rules: Arc::new(RuleSet::standard()),
            simulator: Arc::new(InferenceSimulator::new(DeviceProfile::default())),
            cache: Mutex::new(ResultCache::new()),
            stats: Mutex::new(ServeStats::default()),
        }
    }

    /// Classifies one accepted request, updating `requests` **and** its
    /// outcome counter under a single lock so no reader ever observes
    /// `requests != cache_hits + policy_invocations`.
    fn record_request(&self, cache_hit: bool) {
        let mut stats = self.stats.lock().expect("stats lock");
        stats.requests += 1;
        if cache_hit {
            stats.cache_hits += 1;
            xrlflow_obs::counter!("serve/cache_hit").inc();
        } else {
            stats.policy_invocations += 1;
            xrlflow_obs::counter!("serve/policy_invocation").inc();
        }
        xrlflow_obs::counter!("serve/requests").inc();
    }

    /// Optimises a graph document in the JSON interchange format — the
    /// boundary a network front-end would call with a request body.
    ///
    /// # Errors
    ///
    /// [`ServeError::Graph`] when the document is malformed or invalid;
    /// never panics on untrusted input.
    pub fn optimize_json(&self, text: &str) -> Result<OptimizeResponse, ServeError> {
        let graph = Graph::from_json(text)?;
        self.optimize_validated(graph)
    }

    /// Optimises an in-process graph.
    ///
    /// # Errors
    ///
    /// [`ServeError::Graph`] when the graph fails validation.
    pub fn optimize(&self, graph: &Graph) -> Result<OptimizeResponse, ServeError> {
        graph.validate()?;
        self.optimize_validated(graph.clone())
    }

    fn optimize_validated(&self, graph: Graph) -> Result<OptimizeResponse, ServeError> {
        let _span = xrlflow_obs::span!("serve/request");
        let key = graph.canonical_hash();
        if let Some(entry) = self.cache.lock().expect("cache lock").get(key) {
            self.record_request(true);
            return Ok(response_from(entry, true));
        }
        // Miss: run a greedy episode against the frozen policy. The lock is
        // NOT held while optimising, so a slow request never blocks cache
        // hits; two racing misses for the same key both compute and one
        // idempotently overwrites the other (per-key determinism: read-only
        // policy, episode RNG seeded from the key, memoised simulator).
        self.record_request(false);
        let mut env = Environment::from_shared(
            Arc::new(graph),
            Arc::clone(&self.rules),
            Arc::clone(&self.simulator),
            self.config.env.clone(),
        );
        let mut rng = XorShiftRng::new(key);
        let result = greedy_optimize(&self.agent, &mut env, &mut rng);
        let entry = CacheEntry {
            graph: Arc::new(result.graph),
            initial_latency_ms: result.initial_latency_ms,
            final_latency_ms: result.final_latency_ms,
            steps: result.steps,
        };
        let response = response_from(&entry, false);
        self.cache.lock().expect("cache lock").insert(key, entry);
        Ok(response)
    }

    /// Current request counters, as one consistent snapshot
    /// (`requests == cache_hits + policy_invocations` always holds).
    pub fn stats(&self) -> ServeStats {
        *self.stats.lock().expect("stats lock")
    }

    /// The process-wide telemetry registry as a metrics JSON document —
    /// request counters, the `serve/request` latency histogram, and every
    /// other subsystem's series — ready for a future HTTP `/metrics`
    /// endpoint. See `xrlflow-obs` for the schema.
    pub fn metrics_json(&self) -> String {
        xrlflow_obs::Registry::global().snapshot().to_json()
    }

    /// Number of distinct graphs with cached results.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Serialises the current result cache as a JSON snapshot.
    pub fn cache_to_json(&self) -> String {
        self.cache.lock().expect("cache lock").to_json()
    }

    /// Writes the result cache to disk so a restarted service can
    /// [`OptimizeService::load_cache`] it and stay warm.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be written.
    pub fn save_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        self.cache.lock().expect("cache lock").save(path)
    }

    /// Replaces the result cache with a snapshot loaded from disk
    /// (validating every entry).
    ///
    /// # Errors
    ///
    /// The [`ResultCache::load`] errors.
    pub fn load_cache(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let loaded = ResultCache::load(path)?;
        *self.cache.lock().expect("cache lock") = loaded;
        Ok(())
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &XrlflowConfig {
        &self.config
    }
}

fn response_from(entry: &CacheEntry, cache_hit: bool) -> OptimizeResponse {
    OptimizeResponse {
        graph: Arc::clone(&entry.graph),
        initial_latency_ms: entry.initial_latency_ms,
        final_latency_ms: entry.final_latency_ms,
        steps: entry.steps,
        cache_hit,
    }
}
