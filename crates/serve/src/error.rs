//! The serving layer's error type.

use std::fmt;

use xrlflow_core::ConfigError;
use xrlflow_graph::GraphError;
use xrlflow_tensor::SnapshotError;

/// Anything that can go wrong while serving optimisation requests.
///
/// Every failure at the service boundary — malformed graph documents,
/// incompatible policy snapshots, degenerate configurations, cache
/// persistence problems — arrives as one of these variants; the service
/// never panics on untrusted input.
#[derive(Debug)]
pub enum ServeError {
    /// The request graph is malformed or semantically invalid.
    Graph(GraphError),
    /// The policy snapshot does not match the configured architecture, or
    /// could not be read.
    Snapshot(SnapshotError),
    /// The service configuration is degenerate.
    Config(ConfigError),
    /// A cache snapshot could not be read or written.
    Io(String),
    /// A persisted cache document is malformed.
    Cache(String),
    /// The HTTP front end could not bind, accept, or (client-side) speak
    /// the protocol.
    Http(String),
    /// The request coalesced onto another request optimising the same graph
    /// (single-flight admission) and that leader panicked before publishing
    /// a result. The flight has been cleared — retrying the request runs a
    /// fresh optimisation.
    FlightFailed {
        /// Canonical hash of the graph whose optimisation failed.
        key: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Graph(e) => write!(f, "invalid request graph: {e}"),
            ServeError::Snapshot(e) => write!(f, "policy snapshot rejected: {e}"),
            ServeError::Config(e) => write!(f, "service misconfigured: {e}"),
            ServeError::Io(message) => write!(f, "cache i/o failed: {message}"),
            ServeError::Cache(message) => write!(f, "malformed cache snapshot: {message}"),
            ServeError::Http(message) => write!(f, "http error: {message}"),
            ServeError::FlightFailed { key } => {
                write!(f, "optimisation of graph {key:#018x} panicked upstream; retry the request")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Graph(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Config(e) => Some(e),
            ServeError::Io(_)
            | ServeError::Cache(_)
            | ServeError::Http(_)
            | ServeError::FlightFailed { .. } => None,
        }
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        ServeError::Graph(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}
