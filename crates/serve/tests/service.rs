//! End-to-end tests of the optimisation service: cache hits bypass the
//! policy, persisted caches survive a restart, the boundary returns typed
//! errors, and the service is usable from multiple request threads.

use std::sync::Arc;

use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::{Graph, OpAttributes, OpKind, TensorShape};
use xrlflow_serve::{OptimizeService, ServeError};

fn service() -> OptimizeService {
    let config = XrlflowConfig::smoke_test();
    let snapshot = XrlflowAgent::new(&config, 7).snapshot();
    OptimizeService::from_snapshot(&config, &snapshot).unwrap()
}

fn zoo_graph() -> Graph {
    build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap()
}

#[test]
fn repeat_requests_hit_the_cache_without_running_the_policy() {
    let service = service();
    let graph = zoo_graph();
    let first = service.optimize(&graph).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(service.stats().policy_invocations, 1);

    // Same graph again: cache hit, and the policy invocation counter is
    // the proof no episode ran.
    let second = service.optimize(&graph).unwrap();
    assert!(second.cache_hit);
    assert_eq!(service.stats().policy_invocations, 1, "cache hit must not run the policy");
    assert_eq!(second.graph.canonical_hash(), first.graph.canonical_hash());
    assert_eq!(second.final_latency_ms, first.final_latency_ms);
    assert_eq!(second.steps, first.steps);

    // A structurally identical graph arriving as JSON (different route,
    // same canonical hash) also hits.
    let third = service.optimize_json(&graph.to_json()).unwrap();
    assert!(third.cache_hit);
    assert_eq!(
        service.stats(),
        xrlflow_serve::ServeStats { requests: 3, cache_hits: 2, policy_invocations: 1, coalesced: 0 }
    );
}

#[test]
fn distinct_graphs_get_distinct_entries() {
    let service = service();
    service.optimize(&zoo_graph()).unwrap();
    let other = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
    let response = service.optimize(&other).unwrap();
    assert!(!response.cache_hit);
    assert_eq!(service.cache_len(), 2);
    assert_eq!(service.stats().policy_invocations, 2);
}

#[test]
fn persisted_cache_survives_a_service_restart() {
    let path = std::env::temp_dir().join("xrlflow-serve-restart-test.json");
    let graph = zoo_graph();

    let first = {
        let service = service();
        let first = service.optimize(&graph).unwrap();
        service.save_cache(&path).unwrap();
        first
    };

    // A brand-new service instance (fresh policy replica, empty cache)
    // reloads the snapshot and answers the repeat request without a single
    // policy invocation.
    let restarted = service();
    restarted.load_cache(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let replay = restarted.optimize(&graph).unwrap();
    assert!(replay.cache_hit);
    assert_eq!(restarted.stats().policy_invocations, 0, "warm restart must not run the policy");
    assert_eq!(replay.graph.canonical_hash(), first.graph.canonical_hash());
    assert_eq!(replay.final_latency_ms, first.final_latency_ms);
    assert_eq!(replay.steps, first.steps);
}

#[test]
fn optimised_graphs_are_valid_and_reported_latencies_positive() {
    let service = service();
    let response = service.optimize(&zoo_graph()).unwrap();
    assert!(response.graph.validate().is_ok());
    assert!(response.initial_latency_ms > 0.0);
    assert!(response.final_latency_ms > 0.0);
}

#[test]
fn malformed_requests_are_typed_errors_not_panics() {
    let service = service();
    for body in ["", "not json", "{\"format\": \"xrlflow-graph\"}", "[1, 2, 3]"] {
        match service.optimize_json(body) {
            Err(ServeError::Graph(_)) => {}
            other => panic!("expected a graph error for {body:?}, got {other:?}"),
        }
    }
    // Semantically invalid but well-formed JSON too.
    let cyclic = r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
        {"op": "Relu", "inputs": [[1, 0]], "outputs": [[1]]},
        {"op": "Relu", "inputs": [[0, 0]], "outputs": [[1]]}], "outputs": [[1, 0]]}"#;
    assert!(matches!(service.optimize_json(cyclic), Err(ServeError::Graph(_))));
    // Failed requests are not counted and nothing was cached.
    assert_eq!(service.stats().requests, 0);
    assert_eq!(service.cache_len(), 0);
}

#[test]
fn mismatched_snapshot_is_rejected_at_construction() {
    // Snapshot taken from a wider architecture than the config describes.
    let big = XrlflowConfig::bench();
    let snapshot = XrlflowAgent::new(&big, 0).snapshot();
    let small = XrlflowConfig::smoke_test();
    match OptimizeService::from_snapshot(&small, &snapshot) {
        Err(ServeError::Snapshot(_)) => {}
        other => panic!("expected a snapshot error, got {:?}", other.map(|_| "service")),
    }
}

#[test]
fn degenerate_config_is_rejected_at_construction() {
    let mut config = XrlflowConfig::smoke_test();
    config.training_episodes = 0;
    let snapshot = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 0).snapshot();
    assert!(matches!(OptimizeService::from_snapshot(&config, &snapshot), Err(ServeError::Config(_))));
    assert!(matches!(OptimizeService::untrained(&config, 0), Err(ServeError::Config(_))));
}

#[test]
fn concurrent_requests_share_the_cache() {
    let service = Arc::new(service());
    let graph = Arc::new(zoo_graph());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let service = Arc::clone(&service);
            let graph = Arc::clone(&graph);
            scope.spawn(move || {
                let a = service.optimize(&graph).unwrap();
                let b = service.optimize(&graph).unwrap();
                assert!(b.cache_hit);
                assert_eq!(a.final_latency_ms, b.final_latency_ms);
            });
        }
    });
    // Single-flight admission: however the eight requests interleaved,
    // exactly one greedy episode ran; every other request was a cache hit
    // (possibly a coalesced one that waited for the leader).
    assert_eq!(service.cache_len(), 1);
    let after = service.optimize(&graph).unwrap();
    assert!(after.cache_hit);
    let stats = service.stats();
    assert_eq!(stats.requests, 9);
    assert_eq!(stats.policy_invocations, 1, "racing misses must coalesce into one episode");
    assert_eq!(stats.cache_hits + stats.policy_invocations, stats.requests);
}

#[test]
fn racing_identical_misses_run_exactly_one_episode() {
    // The dedicated single-flight race: N threads released simultaneously
    // against a cold cache with the *same* graph. Without single-flight
    // admission each would run its own greedy episode; with it the first
    // leads and the rest wait on the flight and are served as coalesced
    // cache hits.
    const RACERS: usize = 8;
    let service = Arc::new(service());
    let graph = Arc::new(zoo_graph());
    let barrier = Arc::new(std::sync::Barrier::new(RACERS));
    std::thread::scope(|scope| {
        for _ in 0..RACERS {
            let service = Arc::clone(&service);
            let graph = Arc::clone(&graph);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let response = service.optimize(&graph).unwrap();
                assert!(response.final_latency_ms > 0.0);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.requests, RACERS);
    assert_eq!(stats.policy_invocations, 1, "N racing identical misses must cost exactly one episode");
    assert_eq!(stats.cache_hits, RACERS - 1);
    assert!(stats.coalesced <= stats.cache_hits);
    assert_eq!(service.cache_len(), 1);
}

#[test]
fn hot_swap_replaces_the_policy_and_rejects_mismatches() {
    let config = XrlflowConfig::smoke_test();
    let service = service();
    let graph = zoo_graph();
    let before = service.optimize(&graph).unwrap();

    // A mismatched checkpoint (different architecture) is rejected and the
    // old policy keeps serving.
    let wrong = XrlflowAgent::new(&XrlflowConfig::bench(), 0).snapshot();
    assert!(matches!(service.swap_snapshot(&wrong), Err(ServeError::Snapshot(_))));
    assert!(service.optimize(&graph).unwrap().cache_hit, "rejected swap must leave the service serving");

    // A compatible checkpoint swaps in. The cache deliberately survives…
    let retrained = XrlflowAgent::new(&config, 99).snapshot();
    service.swap_snapshot(&retrained).unwrap();
    assert!(service.optimize(&graph).unwrap().cache_hit, "the result cache survives a swap");
    assert_eq!(service.stats().policy_invocations, 1);

    // …until cleared, after which the *new* policy re-optimises. Same
    // graph, same deterministic seeding per key, but a different policy may
    // choose a different rewrite sequence — all we assert is that an
    // episode ran and produced a valid result.
    service.clear_cache();
    let after = service.optimize(&graph).unwrap();
    assert!(!after.cache_hit);
    assert_eq!(service.stats().policy_invocations, 2);
    assert!(after.graph.validate().is_ok());
    assert_eq!(after.initial_latency_ms, before.initial_latency_ms);
}

#[test]
fn stats_snapshots_are_never_torn_under_concurrent_readers() {
    // Writers hammer the (warm) cache while readers poll stats(); every
    // snapshot a reader observes must satisfy
    // requests == cache_hits + policy_invocations. With the three counters
    // updated as independent atomics this test catches the torn trio (a
    // reader could land between the `requests` bump and the outcome bump);
    // the single-lock snapshot makes it impossible.
    let service = Arc::new(service());
    let graph = Arc::new(zoo_graph());
    service.optimize(&graph).unwrap(); // warm the cache so writer requests are fast hits
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let stats = service.stats();
                    assert_eq!(
                        stats.cache_hits + stats.policy_invocations,
                        stats.requests,
                        "torn stats snapshot observed: {stats:?}"
                    );
                }
            });
        }
        for _ in 0..2 {
            let service = Arc::clone(&service);
            let graph = Arc::clone(&graph);
            scope.spawn(move || {
                for _ in 0..300 {
                    assert!(service.optimize(&graph).unwrap().cache_hit);
                }
            });
        }
        // Writers joined by scope exit order: flag the readers down once
        // the writer handles finish. Spawn a small supervisor for that.
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        scope.spawn(move || {
            while service.stats().requests < 601 {
                std::thread::yield_now();
            }
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });
    let stats = service.stats();
    assert_eq!(stats.requests, 601);
    assert_eq!(stats.cache_hits + stats.policy_invocations, stats.requests);
}

#[test]
fn metrics_json_exposes_serve_counters_and_latency_histogram() {
    let service = service();
    let graph = zoo_graph();
    service.optimize(&graph).unwrap();
    service.optimize(&graph).unwrap();
    let parsed = xrlflow_graph::JsonValue::parse(&service.metrics_json()).expect("metrics JSON must parse");
    assert_eq!(parsed.get("format").and_then(xrlflow_graph::JsonValue::as_str), Some("xrlflow-metrics"));
    let counters = parsed.get("counters").expect("counters object");
    let counter = |name: &str| counters.get(name).and_then(xrlflow_graph::JsonValue::as_f64).unwrap_or(0.0);
    // The registry is process-wide and other tests in this binary also
    // serve requests, so assert lower bounds, not exact counts.
    assert!(counter("serve/requests") >= 2.0);
    assert!(counter("serve/cache_hit") >= 1.0);
    assert!(counter("serve/policy_invocation") >= 1.0);
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("serve/request"))
        .expect("serve/request latency histogram");
    assert!(hist.get("count").and_then(xrlflow_graph::JsonValue::as_f64).unwrap() >= 2.0);
    let buckets = hist.get("buckets").and_then(xrlflow_graph::JsonValue::as_array).unwrap();
    assert!(!buckets.is_empty(), "latency histogram must have non-empty buckets");
}

#[test]
fn hand_built_graphs_serve_like_zoo_graphs() {
    let service = service();
    let mut g = Graph::new();
    let x = g.add_input(TensorShape::new(vec![1, 3, 16, 16]));
    let w = g.add_weight(TensorShape::new(vec![8, 3, 3, 3]));
    let conv = g
        .add_node(
            OpKind::Conv2d,
            OpAttributes::conv2d([3, 3], [1, 1], xrlflow_graph::Padding::Same, 1),
            vec![x.into(), w.into()],
        )
        .unwrap();
    let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![conv.into()]).unwrap();
    g.mark_output(relu.into());
    let response = service.optimize_json(&g.to_json()).unwrap();
    assert!(response.graph.validate().is_ok());
    assert!(service.optimize(&g).unwrap().cache_hit);
}

#[test]
fn a_panicking_leader_clears_its_flight_and_the_service_survives() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use xrlflow_core::fault::{FaultPhase, FaultPlan};

    let service = service();
    let graph = zoo_graph();
    let key = graph.canonical_hash();

    // Kill the single-flight leader mid-episode via the deterministic
    // fault hook (serve trips on the graph's canonical hash).
    let guard = FaultPlan::new().panic_on(FaultPhase::Serve, key, 0).install();
    let result = catch_unwind(AssertUnwindSafe(|| service.optimize(&graph)));
    assert!(result.is_err(), "the injected fault must unwind the leader");
    drop(guard);

    // The flight was cleared by the leader's guard and no lock was
    // poisoned: the retry runs a fresh episode and succeeds.
    let response = service.optimize(&graph).unwrap();
    assert!(!response.cache_hit, "the failed leader must not have published a result");
    let stats = service.stats();
    assert_eq!(stats.cache_hits + stats.policy_invocations, stats.requests);
}
