//! Integration tests of the HTTP front end: the happy path end to end, the
//! negative suite (every malformed or out-of-bounds request is a typed 4xx,
//! never a panic or a parse-triggered 5xx), hot snapshot swap under live
//! traffic, and cache budgets enforced under HTTP load.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::{Graph, JsonValue, OpAttributes, OpKind, TensorShape};
use xrlflow_serve::{http_call, CacheConfig, OptimizeServer, OptimizeService, ServerConfig};

fn start_server() -> OptimizeServer {
    start_server_with_config(ServerConfig::default())
}

fn start_server_with_config(config: ServerConfig) -> OptimizeServer {
    let service = OptimizeService::untrained(&XrlflowConfig::smoke_test(), 7).unwrap();
    OptimizeServer::bind_with_config(Arc::new(service), "127.0.0.1:0", config).unwrap()
}

/// A hand-built graph whose canonical hash varies with `len`: a Relu chain
/// of that length. Cheap to optimise, and each length is a distinct cache
/// entry — the workload for eviction and miss-under-swap tests.
fn relu_chain(len: usize) -> Graph {
    let mut g = Graph::new();
    let input = g.add_input(TensorShape::new(vec![1, 8]));
    let mut last: xrlflow_graph::TensorRef = input.into();
    for _ in 0..len {
        last = g.add_node(OpKind::Relu, OpAttributes::default(), vec![last]).unwrap().into();
    }
    g.mark_output(last);
    g
}

/// Sends raw bytes (possibly a deliberately broken request), half-closes,
/// and returns the `(status, body)` the server answered with.
fn raw_call(addr: SocketAddr, bytes: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("no status line in response: {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn optimize_healthz_and_metrics_end_to_end() {
    let server = start_server();
    let addr = server.local_addr();

    let health = http_call(addr, "GET", "/healthz", &[]).unwrap();
    assert_eq!(health.status, 200);
    let parsed = JsonValue::parse(&health.body).unwrap();
    assert_eq!(parsed.get("status").and_then(JsonValue::as_str), Some("ok"));

    // First optimisation request: a policy run, with the optimised graph
    // round-trippable through the interchange format.
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let first = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes()).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    let parsed = JsonValue::parse(&first.body).unwrap();
    assert_eq!(parsed.get("cache_hit").and_then(JsonValue::as_bool), Some(false));
    assert!(parsed.get("final_latency_ms").and_then(JsonValue::as_f64).unwrap() > 0.0);
    let optimised = Graph::from_json_value(parsed.get("graph").unwrap()).unwrap();
    assert!(optimised.validate().is_ok());

    // The repeat request is a cache hit with identical latencies.
    let second = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes()).unwrap();
    assert_eq!(second.status, 200);
    let parsed2 = JsonValue::parse(&second.body).unwrap();
    assert_eq!(parsed2.get("cache_hit").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        parsed2.get("final_latency_ms").and_then(JsonValue::as_f64),
        parsed.get("final_latency_ms").and_then(JsonValue::as_f64)
    );

    // /metrics is the versioned metrics snapshot and has seen this traffic.
    let metrics = http_call(addr, "GET", "/metrics", &[]).unwrap();
    assert_eq!(metrics.status, 200);
    let parsed = JsonValue::parse(&metrics.body).unwrap();
    assert_eq!(parsed.get("format").and_then(JsonValue::as_str), Some("xrlflow-metrics"));
    let counters = parsed.get("counters").unwrap();
    assert!(counters.get("serve/http_requests").and_then(JsonValue::as_f64).unwrap() >= 3.0);
    assert!(counters.get("serve/http_2xx").and_then(JsonValue::as_f64).unwrap() >= 3.0);
}

#[test]
fn concurrent_posts_are_served_end_to_end() {
    let server = start_server();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for i in 0..8 {
            scope.spawn(move || {
                let graph = relu_chain(1 + (i % 2));
                let reply = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes()).unwrap();
                assert_eq!(reply.status, 200, "body: {}", reply.body);
                let parsed = JsonValue::parse(&reply.body).unwrap();
                assert!(parsed.get("final_latency_ms").and_then(JsonValue::as_f64).unwrap() > 0.0);
            });
        }
    });
    let stats = server.service().stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.policy_invocations, 2, "two distinct graphs, single-flight per key");
}

#[test]
fn negative_requests_get_typed_4xx_and_never_kill_the_server() {
    let config = ServerConfig { max_body_bytes: 1024, max_header_bytes: 512, ..ServerConfig::default() };
    let server = start_server_with_config(config);
    let addr = server.local_addr();

    // Malformed request line.
    let (status, body) = raw_call(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "body: {body}");

    // Truncated mid-head.
    let (status, _) = raw_call(addr, b"GET /healthz HTT");
    assert_eq!(status, 400);

    // Truncated mid-body: Content-Length promises more than arrives.
    let (status, _) = raw_call(addr, b"POST /optimize HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc");
    assert_eq!(status, 400);

    // POST without a Content-Length.
    let (status, _) = raw_call(addr, b"POST /optimize HTTP/1.1\r\n\r\n");
    assert_eq!(status, 411);

    // Unparseable Content-Length.
    let (status, _) = raw_call(addr, b"POST /optimize HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
    assert_eq!(status, 400);

    // Declared body over the budget is refused before any body byte is read.
    let (status, _) = raw_call(addr, b"POST /optimize HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
    assert_eq!(status, 413);

    // A request head over the budget.
    let mut huge_head = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..64 {
        huge_head.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    huge_head.extend_from_slice(b"\r\n");
    let (status, _) = raw_call(addr, &huge_head);
    assert_eq!(status, 431);

    // Wrong methods on known routes; unknown route.
    let (status, _) = raw_call(addr, b"DELETE /optimize HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);
    assert_eq!(http_call(addr, "POST", "/metrics", &[]).unwrap().status, 405);
    assert_eq!(http_call(addr, "GET", "/nope", &[]).unwrap().status, 404);

    // Malformed and semantically invalid graph JSON: typed 400 with an
    // error body, not a panic and not a 5xx.
    for bad in ["", "not json", "{\"format\": \"bogus\"}", "[1, 2, 3]"] {
        let reply = http_call(addr, "POST", "/optimize", bad.as_bytes()).unwrap();
        assert_eq!(reply.status, 400, "request body {bad:?}");
        let parsed = JsonValue::parse(&reply.body).unwrap();
        assert!(parsed.get("error").and_then(JsonValue::as_str).is_some());
    }

    // Non-UTF-8 request body.
    let reply = http_call(addr, "POST", "/optimize", &[0xff, 0xfe, 0x00, 0x80]).unwrap();
    assert_eq!(reply.status, 400);

    // Garbage checkpoint bytes; then a structurally valid checkpoint for
    // the wrong architecture.
    let reply = http_call(addr, "POST", "/admin/swap", b"not a checkpoint").unwrap();
    assert_eq!(reply.status, 400);
    let wrong =
        xrlflow_tensor::ParamSnapshot::new(vec![("w".to_string(), xrlflow_tensor::Tensor::zeros(&[2]))])
            .to_bytes();
    let reply = http_call(addr, "POST", "/admin/swap", &wrong).unwrap();
    assert_eq!(reply.status, 422);

    // After the whole gauntlet the server is still healthy and still
    // optimises — nothing panicked, no thread died with a request.
    assert_eq!(http_call(addr, "GET", "/healthz", &[]).unwrap().status, 200);
    let graph = relu_chain(2);
    let reply = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes()).unwrap();
    assert_eq!(reply.status, 200, "body: {}", reply.body);

    // The process-wide 4xx counter saw this suite.
    let metrics = JsonValue::parse(&server.service().metrics_json()).unwrap();
    let rejected =
        metrics.get("counters").unwrap().get("serve/http_4xx").and_then(JsonValue::as_f64).unwrap();
    assert!(rejected >= 10.0, "expected the negative suite in serve/http_4xx, saw {rejected}");
}

#[test]
fn hot_swap_mid_traffic_never_drops_or_errors_in_flight_requests() {
    let config = XrlflowConfig::smoke_test();
    let server = start_server();
    let addr = server.local_addr();

    // Traffic threads POST a rotating set of graphs — mostly misses, so
    // greedy episodes are genuinely in flight while checkpoints swap.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..3 {
            let stop = Arc::clone(&stop);
            workers.push(scope.spawn(move || {
                let mut served = 0usize;
                let mut len = t * 10;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    len += 1;
                    let graph = relu_chain(1 + (len % 20));
                    let reply = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes())
                        .expect("request during swap must not be dropped");
                    assert_eq!(reply.status, 200, "request during swap must not error: {}", reply.body);
                    served += 1;
                }
                served
            }));
        }

        // Interleave several swaps (and one rejected one) with the traffic.
        for seed in [11u64, 22, 33] {
            let snapshot = XrlflowAgent::new(&config, seed).snapshot().to_bytes();
            let reply = http_call(addr, "POST", "/admin/swap", &snapshot).unwrap();
            assert_eq!(reply.status, 200, "body: {}", reply.body);
            let parsed = JsonValue::parse(&reply.body).unwrap();
            assert_eq!(parsed.get("swapped").and_then(JsonValue::as_bool), Some(true));
            assert!(parsed.get("tensors").and_then(JsonValue::as_f64).unwrap() > 0.0);
            std::thread::sleep(Duration::from_millis(30));
        }
        let wrong = XrlflowAgent::new(&XrlflowConfig::bench(), 0).snapshot().to_bytes();
        assert_eq!(http_call(addr, "POST", "/admin/swap", &wrong).unwrap().status, 422);

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0, "traffic threads must have served requests during the swaps");
    });

    // Every accepted request resolved to a hit or an episode; the rejected
    // checkpoint left the (last swapped) policy serving.
    let stats = server.service().stats();
    assert_eq!(stats.cache_hits + stats.policy_invocations, stats.requests);
    assert_eq!(http_call(addr, "GET", "/healthz", &[]).unwrap().status, 200);
}

#[test]
fn shutdown_under_load_never_drops_an_accepted_request() {
    let mut server = start_server();
    let addr = server.local_addr();

    // Clients race the shutdown with distinct graphs (all cache misses, so
    // each runs a real greedy episode). Every request the server accepts
    // must come back as a complete 200 — the drain in `shutdown` waits for
    // the in-flight connection threads instead of racing them.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let graph = relu_chain(1 + i);
                http_call(addr, "POST", "/optimize", graph.to_json().as_bytes())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    let served_after_drain = server.service().stats().requests;

    let mut completed = 0;
    for client in clients {
        // A client refused at the socket (connected after the listener
        // died) is fine; a client whose request was accepted must get its
        // full response.
        if let Ok(reply) = client.join().unwrap() {
            assert_eq!(reply.status, 200, "accepted request dropped by shutdown: {}", reply.body);
            JsonValue::parse(&reply.body).expect("response truncated by shutdown");
            completed += 1;
        }
    }
    assert!(
        completed >= served_after_drain,
        "server counted {served_after_drain} requests but only {completed} clients got responses"
    );
}

#[test]
fn shutdown_drain_is_bounded_when_a_client_wedges_a_connection() {
    let config = ServerConfig { drain_timeout: Duration::from_millis(100), ..ServerConfig::default() };
    let mut server = start_server_with_config(config);
    let addr = server.local_addr();

    // A connection that never finishes its request head: the connection
    // thread sits in its (30 s) read timeout. Shutdown must give up on it
    // after the 100 ms drain budget instead of hanging.
    let mut wedged = TcpStream::connect(addr).unwrap();
    wedged.write_all(b"GET /hea").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must be bounded by the drain timeout, took {:?}",
        started.elapsed()
    );
    drop(wedged);
}

#[test]
fn cache_budget_is_never_exceeded_under_http_load() {
    let server = start_server();
    let addr = server.local_addr();
    let budget = 4;
    let evicted =
        server.service().set_cache_config(CacheConfig::builder().max_entries(budget).build().unwrap());
    assert_eq!(evicted, 0);

    for len in 1..=12 {
        let graph = relu_chain(len);
        let reply = http_call(addr, "POST", "/optimize", graph.to_json().as_bytes()).unwrap();
        assert_eq!(reply.status, 200);
        assert!(
            server.service().cache_len() <= budget,
            "cache exceeded its entry budget: {} > {budget}",
            server.service().cache_len()
        );
    }
    assert_eq!(server.service().cache_len(), budget);

    // The evictions are visible in /metrics (process-wide counter: assert
    // at least this test's eight evictions happened).
    let metrics = http_call(addr, "GET", "/metrics", &[]).unwrap();
    let parsed = JsonValue::parse(&metrics.body).unwrap();
    let evictions =
        parsed.get("counters").unwrap().get("serve/cache_evictions").and_then(JsonValue::as_f64).unwrap();
    assert!(evictions >= 8.0, "expected >= 8 evictions in /metrics, saw {evictions}");

    // LRU: the oldest entries are the ones gone. Graph 12 is resident…
    let reply = http_call(addr, "POST", "/optimize", relu_chain(12).to_json().as_bytes()).unwrap();
    assert_eq!(
        JsonValue::parse(&reply.body).unwrap().get("cache_hit").and_then(JsonValue::as_bool),
        Some(true)
    );
    // …and graph 1 was evicted long ago.
    let reply = http_call(addr, "POST", "/optimize", relu_chain(1).to_json().as_bytes()).unwrap();
    assert_eq!(
        JsonValue::parse(&reply.body).unwrap().get("cache_hit").and_then(JsonValue::as_bool),
        Some(false)
    );
}
