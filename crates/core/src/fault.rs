//! Deterministic fault injection for robustness tests.
//!
//! Production fault tolerance is only trustworthy if it is exercised, so the
//! supervised worker pools (`xrlflow-rollout`) and the serving layer
//! (`xrlflow-serve`) call [`trip`] at the top of every work item. The hook
//! is compiled in unconditionally — the code under test is the code that
//! ships — but it is **inert** unless a test installs a [`FaultPlan`]: the
//! disarmed fast path is a single relaxed atomic load, cheap enough for the
//! allocation-free hot loops.
//!
//! A plan is a deterministic schedule of one-shot panics ("panic on item `k`
//! at attempt `a` of phase `p`"). Determinism matters: the differential
//! suites assert that a run with injected faults produces **bit-identical**
//! parameters to a fault-free run, which only makes sense when the faults
//! themselves are reproducible.
//!
//! ```
//! use xrlflow_core::fault::{self, FaultPhase, FaultPlan};
//!
//! let guard = FaultPlan::new().panic_on(FaultPhase::Collect, 3, 0).install();
//! let caught = std::panic::catch_unwind(|| fault::trip(FaultPhase::Collect, 3, 0));
//! assert!(caught.is_err(), "armed fault must panic");
//! // One-shot: the same (phase, item, attempt) does not fire twice.
//! fault::trip(FaultPhase::Collect, 3, 0);
//! drop(guard); // disarms and clears the plan
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The phase of the system a scheduled fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Single-spec episode collection (`collect_parallel` work items).
    Collect,
    /// Curriculum episode collection (spec-major work items).
    CurriculumCollect,
    /// Data-parallel minibatch gradient shards.
    Update,
    /// The greedy optimisation episode run by the serving layer's
    /// single-flight leader (`item` is the request graph's canonical hash).
    Serve,
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultPhase::Collect => "collect",
            FaultPhase::CurriculumCollect => "curriculum-collect",
            FaultPhase::Update => "update",
            FaultPhase::Serve => "serve",
        })
    }
}

/// One scheduled injected panic: phase, work-item index and the attempt
/// (0 = first execution, 1 = first retry, …) at which it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Phase the fault targets.
    pub phase: FaultPhase,
    /// Work-item index within the phase (episode, curriculum item,
    /// minibatch position or request hash).
    pub item: u64,
    /// Attempt number at which to fire.
    pub attempt: u32,
}

/// A deterministic schedule of injected panics.
///
/// Each entry fires **once**: the first [`trip`] call matching its
/// `(phase, item, attempt)` panics and consumes the entry. To make an item
/// exhaust a retry budget of `n`, schedule entries for attempts `0..=n`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panics: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Creates an empty plan (installing it arms nothing but still
    /// serialises against other installers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a one-shot panic on `item` at `attempt` of `phase`.
    #[must_use]
    pub fn panic_on(mut self, phase: FaultPhase, item: u64, attempt: u32) -> Self {
        self.panics.push(FaultSpec { phase, item, attempt });
        self
    }

    /// Schedules panics on every attempt `0..=budget` of `item`, so the
    /// supervised pool's retry budget of `budget` is exhausted and the
    /// caller observes the typed worker-fault error.
    #[must_use]
    pub fn exhaust_budget_on(mut self, phase: FaultPhase, item: u64, budget: u32) -> Self {
        for attempt in 0..=budget {
            self.panics.push(FaultSpec { phase, item, attempt });
        }
        self
    }

    /// Installs the plan process-wide and arms the [`trip`] hook.
    ///
    /// Installation is exclusive: concurrent installers (tests running in
    /// the same process) are serialised on an internal lock held by the
    /// returned guard, and dropping the guard disarms the hook and clears
    /// the plan. Keep the guard alive for the duration of the faulty run.
    #[must_use]
    pub fn install(self) -> FaultInjectionGuard {
        static INSTALL_LOCK: Mutex<()> = Mutex::new(());
        let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) =
            Some(self.panics.into_iter().map(|spec| (spec, false)).collect());
        ARMED.store(true, Ordering::SeqCst);
        FaultInjectionGuard { _lock: lock }
    }
}

/// A work item that kept panicking until the supervised pool's retry budget
/// was exhausted.
///
/// `item` uses the same numbering as [`FaultSpec::item`] (and therefore
/// [`FaultPlan`]), so the id in an error message can be pasted straight into
/// a reproduction plan. `attempts` counts every execution, including the
/// first (`budget + 1` when the budget is exhausted), and `payload` carries
/// the text of the last panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Phase in which the item kept failing.
    pub phase: FaultPhase,
    /// Work-item id, numbered as in [`FaultSpec::item`].
    pub item: u64,
    /// Total executions before giving up (first attempt + retries).
    pub attempts: u32,
    /// Text of the final panic payload.
    pub payload: String,
}

impl std::fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} item {} still failing after {} attempts: {}",
            self.phase, self.item, self.attempts, self.payload
        )
    }
}

impl std::error::Error for WorkerFault {}

/// Renders a caught panic payload as text for [`WorkerFault::payload`].
///
/// `&str` and `String` payloads (everything `panic!` produces) are shown
/// verbatim; anything else degrades to a placeholder rather than being lost.
pub fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Keeps an installed [`FaultPlan`] armed; disarms and clears it on drop.
pub struct FaultInjectionGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultInjectionGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *plan_slot().lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Fast-path arm flag: [`trip`] returns immediately when this is `false`,
/// so the hook costs one relaxed load in production.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Installed plan entries, each with a `fired` flag for one-shot semantics.
fn plan_slot() -> &'static Mutex<Option<Vec<(FaultSpec, bool)>>> {
    static PLAN: Mutex<Option<Vec<(FaultSpec, bool)>>> = Mutex::new(None);
    &PLAN
}

/// Fault-injection hook: panics iff an installed [`FaultPlan`] schedules a
/// (not yet fired) panic for this `(phase, item, attempt)`.
///
/// Inert — a single relaxed atomic load — unless a plan is installed. The
/// panic payload is a `String` naming the phase, item and attempt, which the
/// supervised pool surfaces verbatim in `RolloutError::WorkerFault`.
///
/// # Panics
///
/// By design, when an armed plan matches.
pub fn trip(phase: FaultPhase, item: u64, attempt: u32) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = {
        let mut slot = plan_slot().lock().unwrap_or_else(PoisonError::into_inner);
        match slot.as_mut() {
            Some(entries) => entries
                .iter_mut()
                .find(|(spec, fired)| {
                    !*fired && spec.phase == phase && spec.item == item && spec.attempt == attempt
                })
                .map(|entry| {
                    entry.1 = true;
                    entry.0
                }),
            None => None,
        }
    };
    if let Some(spec) = fire {
        panic!("injected fault: phase {} item {} attempt {}", spec.phase, spec.item, spec.attempt);
    }
}

/// Number of scheduled faults that have not fired yet (0 when disarmed).
///
/// Tests assert this drops to zero to prove every scheduled fault was
/// actually exercised by the run under test.
pub fn pending_faults() -> usize {
    if !ARMED.load(Ordering::Relaxed) {
        return 0;
    }
    plan_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map_or(0, |entries| entries.iter().filter(|(_, fired)| !fired).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn disarmed_hook_is_inert() {
        trip(FaultPhase::Collect, 0, 0);
        trip(FaultPhase::Update, u64::MAX, u32::MAX);
        assert_eq!(pending_faults(), 0);
    }

    #[test]
    fn armed_faults_fire_once_with_a_descriptive_payload() {
        let guard = FaultPlan::new().panic_on(FaultPhase::Collect, 7, 1).install();
        assert_eq!(pending_faults(), 1);
        // Wrong item / attempt / phase: no fire.
        trip(FaultPhase::Collect, 7, 0);
        trip(FaultPhase::Collect, 6, 1);
        trip(FaultPhase::Update, 7, 1);
        assert_eq!(pending_faults(), 1);

        let payload = catch_unwind(AssertUnwindSafe(|| trip(FaultPhase::Collect, 7, 1)))
            .expect_err("scheduled fault must panic");
        let text = payload.downcast_ref::<String>().expect("payload is a String");
        assert_eq!(text, "injected fault: phase collect item 7 attempt 1");

        // One-shot: consumed.
        assert_eq!(pending_faults(), 0);
        trip(FaultPhase::Collect, 7, 1);
        drop(guard);
        assert_eq!(pending_faults(), 0);
    }

    #[test]
    fn exhaust_budget_schedules_every_attempt() {
        let guard = FaultPlan::new().exhaust_budget_on(FaultPhase::Update, 2, 2).install();
        assert_eq!(pending_faults(), 3);
        for attempt in 0..=2 {
            assert!(catch_unwind(AssertUnwindSafe(|| trip(FaultPhase::Update, 2, attempt))).is_err());
        }
        assert_eq!(pending_faults(), 0);
        drop(guard);
    }
}
