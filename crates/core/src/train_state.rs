//! Durable exact-resume checkpoints (`XRLFTRST` format).
//!
//! A [`crate::Trainer`] checkpointed with only a `ParamSnapshot` silently
//! restarts its optimiser on resume: Adam's moment buffers and bias-correction
//! step reset to zero, so a resumed run diverges from the uninterrupted one on
//! the very first update. [`TrainState`] bundles everything the training loop
//! needs to continue **bit-identically**:
//!
//! * the parameter snapshot,
//! * Adam's first and second moment buffers and step counter,
//! * the PPO update counter (drives the minibatch shuffle schedule),
//! * the RNG schedule position (`next_episode` — per-episode seeds are pure
//!   functions of `base_seed` and the episode index, so the position *is*
//!   the schedule) and the `base_seed` itself.
//!
//! ## Binary format (version 1)
//!
//! ```text
//! magic     8 bytes   b"XRLFTRST"
//! version   u32 LE    1
//! update_counter / next_episode / adam_steps / base_seed   4 × u64 LE
//! params    u32 LE length + XRLFSNAP bytes
//! adam_m    u32 LE length + XRLFSNAP bytes (first moments)
//! adam_v    u32 LE length + XRLFSNAP bytes (second moments)
//! ```
//!
//! Parsing mirrors the `XRLFSNAP` discipline: every length is bounded
//! against the remaining input before any allocation, trailing bytes are
//! rejected, and the moment sections must name exactly the parameters of the
//! `params` section — corruption surfaces as a typed [`SnapshotError`],
//! never a panic and never a partially adopted optimiser state. Files are
//! written through `atomic_write`, so a crash mid-save leaves the previous
//! checkpoint intact.

use std::path::{Path, PathBuf};

use xrlflow_tensor::{atomic_write, is_atomic_temp_file, ParamSnapshot, SnapshotError};

/// File magic of the train-state format.
const MAGIC: &[u8; 8] = b"XRLFTRST";
/// Current format version.
const FORMAT_VERSION: u32 = 1;
/// File extension used by the checkpoint schedule.
pub const TRAIN_STATE_EXTENSION: &str = "xrlftrst";

/// Complete training state for exact resume. See the module docs for the
/// contract and the binary layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Parameter values at the checkpoint.
    pub params: ParamSnapshot,
    /// Adam first-moment buffers, named like `params`.
    pub adam_first: ParamSnapshot,
    /// Adam second-moment buffers, named like `params`.
    pub adam_second: ParamSnapshot,
    /// Adam step counter (bias correction position).
    pub adam_steps: u64,
    /// PPO updates performed (drives the minibatch shuffle schedule).
    pub update_counter: u64,
    /// Episodes (per spec, for curricula) already trained — the position in
    /// the deterministic per-episode seed schedule where training resumes.
    pub next_episode: u64,
    /// Base seed of the rollout engine's per-episode seed schedule.
    pub base_seed: u64,
}

impl TrainState {
    /// Serialises the state to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let params = self.params.to_bytes();
        let first = self.adam_first.to_bytes();
        let second = self.adam_second.to_bytes();
        let mut out = Vec::with_capacity(8 + 4 + 4 * 8 + 3 * 4 + params.len() + first.len() + second.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.update_counter.to_le_bytes());
        out.extend_from_slice(&self.next_episode.to_le_bytes());
        out.extend_from_slice(&self.adam_steps.to_le_bytes());
        out.extend_from_slice(&self.base_seed.to_le_bytes());
        for section in [&params, &first, &second] {
            out.extend_from_slice(
                &u32::try_from(section.len()).expect("snapshot section under 4 GiB").to_le_bytes(),
            );
            out.extend_from_slice(section);
        }
        out
    }

    /// Parses a state written by [`TrainState::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Format`] for a bad magic/version, truncation at any
    /// offset, trailing bytes or an invalid embedded snapshot section;
    /// [`SnapshotError::CountMismatch`] / [`SnapshotError::NameMismatch`] /
    /// [`SnapshotError::ShapeMismatch`] when the moment sections do not
    /// mirror the parameter section. Nothing is adopted on error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut cursor = Reader { bytes, pos: 0 };
        let magic = cursor.take(8)?;
        if magic != MAGIC {
            return Err(SnapshotError::Format(format!("bad magic {:02x?}, expected {MAGIC:02x?}", magic)));
        }
        let version = cursor.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported train-state version {version}, expected {FORMAT_VERSION}"
            )));
        }
        let update_counter = cursor.u64()?;
        let next_episode = cursor.u64()?;
        let adam_steps = cursor.u64()?;
        let base_seed = cursor.u64()?;
        let mut sections = Vec::with_capacity(3);
        for name in ["params", "adam_first", "adam_second"] {
            let len = cursor.u32()? as usize;
            let raw = cursor.take(len).map_err(|_| {
                SnapshotError::Format(format!(
                    "truncated {name} section: declared {len} bytes, {} remain",
                    cursor.remaining()
                ))
            })?;
            sections.push(
                ParamSnapshot::from_bytes(raw)
                    .map_err(|e| SnapshotError::Format(format!("invalid {name} section: {e}")))?,
            );
        }
        if cursor.pos != bytes.len() {
            return Err(SnapshotError::Format(format!(
                "{} trailing bytes after the last section",
                bytes.len() - cursor.pos
            )));
        }
        let adam_second = sections.pop().expect("three sections parsed");
        let adam_first = sections.pop().expect("three sections parsed");
        let params = sections.pop().expect("three sections parsed");
        // The moment buffers must mirror the parameters exactly; checking
        // here (not at restore time) means a corrupt file can never pass
        // params validation and then fail moment validation half-adopted.
        params.compatible_with(&adam_first)?;
        params.compatible_with(&adam_second)?;
        Ok(Self { params, adam_first, adam_second, adam_steps, update_counter, next_episode, base_seed })
    }

    /// Writes the state to `path` via `atomic_write` (creating parent
    /// directories) — a crash mid-save never truncates a previous file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        atomic_write(path, self.to_bytes())
    }

    /// Reads a state from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read; the
    /// [`TrainState::from_bytes`] errors for malformed contents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path.as_ref()).map_err(SnapshotError::Io)?;
        Self::from_bytes(&bytes)
    }
}

/// The canonical checkpoint file name for a schedule position:
/// `state-{next_episode:08}.xrlftrst` (zero-padded so lexicographic order
/// is numeric order).
pub fn train_state_path(dir: impl AsRef<Path>, next_episode: u64) -> PathBuf {
    dir.as_ref().join(format!("state-{next_episode:08}.{TRAIN_STATE_EXTENSION}"))
}

/// Scans `dir` for schedule checkpoints and returns the one with the
/// highest episode position, ignoring `atomic_write` temp debris and
/// foreign files. `Ok(None)` when the directory is missing or holds no
/// checkpoint.
///
/// # Errors
///
/// Returns any I/O error from reading the directory (a missing directory is
/// not an error).
pub fn latest_train_state(dir: impl AsRef<Path>) -> std::io::Result<Option<PathBuf>> {
    Ok(scan_train_states(dir)?.into_iter().last().map(|(_, path)| path))
}

/// Deletes all but the `keep_last` newest schedule checkpoints in `dir`,
/// returning the number removed. Temp debris and foreign files are never
/// touched.
///
/// # Errors
///
/// Returns any I/O error from reading the directory or deleting a file.
pub fn prune_train_states(dir: impl AsRef<Path>, keep_last: usize) -> std::io::Result<usize> {
    let states = scan_train_states(dir)?;
    let excess = states.len().saturating_sub(keep_last.max(1));
    for (_, path) in &states[..excess] {
        std::fs::remove_file(path)?;
    }
    Ok(excess)
}

/// Schedule checkpoints in `dir`, sorted oldest → newest by episode
/// position.
fn scan_train_states(dir: impl AsRef<Path>) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir.as_ref()) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut states = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_atomic_temp_file(name) {
            continue;
        }
        let Some(stem) = name
            .strip_prefix("state-")
            .and_then(|rest| rest.strip_suffix(&format!(".{TRAIN_STATE_EXTENSION}")))
        else {
            continue;
        };
        let Ok(position) = stem.parse::<u64>() else { continue };
        states.push((position, entry.path()));
    }
    states.sort();
    Ok(states)
}

/// Bounded byte-slice reader (same discipline as the `XRLFSNAP` parser).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Format(format!(
                "truncated train state: needed {n} bytes at offset {}, file has {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_tensor::Tensor;

    fn sample_state() -> TrainState {
        let params = ParamSnapshot::new(vec![
            ("w".into(), Tensor::from_vec(vec![1.0, -2.0], &[2])),
            ("b".into(), Tensor::from_vec(vec![0.5], &[1])),
        ]);
        let adam_first = ParamSnapshot::new(vec![
            ("w".into(), Tensor::from_vec(vec![0.1, 0.2], &[2])),
            ("b".into(), Tensor::from_vec(vec![-0.3], &[1])),
        ]);
        let adam_second = ParamSnapshot::new(vec![
            ("w".into(), Tensor::from_vec(vec![0.01, 0.02], &[2])),
            ("b".into(), Tensor::from_vec(vec![0.03], &[1])),
        ]);
        TrainState {
            params,
            adam_first,
            adam_second,
            adam_steps: 7,
            update_counter: 5,
            next_episode: 12,
            base_seed: 42,
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let state = sample_state();
        let decoded = TrainState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("xrlflow-trainstate-{}", std::process::id()));
        let path = train_state_path(&dir, 12);
        let state = sample_state();
        state.save(&path).unwrap();
        assert_eq!(TrainState::load(&path).unwrap(), state);
        assert_eq!(latest_train_state(&dir).unwrap(), Some(path));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_prefix_truncation_is_a_typed_error() {
        let bytes = sample_state().to_bytes();
        for len in 0..bytes.len() {
            let result = TrainState::from_bytes(&bytes[..len]);
            assert!(result.is_err(), "prefix of {len}/{} bytes must not parse", bytes.len());
        }
        assert!(TrainState::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_state().to_bytes();
        bytes.push(0);
        assert!(matches!(TrainState::from_bytes(&bytes), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn every_single_byte_corruption_parses_fully_or_errors_and_never_panics() {
        // A flipped byte may land in tensor data (still a structurally valid
        // file) — that must parse completely. A flip in any structural field
        // must surface a typed error. Nothing may panic, and a file whose
        // moment sections no longer mirror the params must be rejected.
        let bytes = sample_state().to_bytes();
        let mut parsed = 0usize;
        let mut rejected = 0usize;
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            let result = std::panic::catch_unwind(|| TrainState::from_bytes(&corrupt))
                .unwrap_or_else(|_| panic!("byte flip at offset {i} caused a panic"));
            match result {
                Ok(_) => parsed += 1,
                Err(_) => rejected += 1,
            }
        }
        assert!(rejected > 0, "structural corruption must be detected");
        assert_eq!(parsed + rejected, bytes.len());
    }

    #[test]
    fn mismatched_moment_sections_are_rejected() {
        let mut state = sample_state();
        state.adam_second = ParamSnapshot::new(vec![
            ("w".into(), Tensor::from_vec(vec![0.01, 0.02], &[2])),
            ("other".into(), Tensor::from_vec(vec![0.03], &[1])),
        ]);
        assert!(matches!(TrainState::from_bytes(&state.to_bytes()), Err(SnapshotError::NameMismatch { .. })));
    }

    #[test]
    fn retention_keeps_the_newest_and_skips_debris() {
        let dir = std::env::temp_dir().join(format!("xrlflow-retention-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let state = sample_state();
        for position in [4u64, 8, 12, 16] {
            state.save(train_state_path(&dir, position)).unwrap();
        }
        // Crashed-writer debris and foreign files must be ignored by both
        // discovery and pruning.
        std::fs::write(dir.join(".state-00000020.xrlftrst.1.2.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"unrelated").unwrap();

        assert_eq!(latest_train_state(&dir).unwrap(), Some(train_state_path(&dir, 16)));
        assert_eq!(prune_train_states(&dir, 2).unwrap(), 2);
        assert!(!train_state_path(&dir, 4).exists());
        assert!(!train_state_path(&dir, 8).exists());
        assert!(train_state_path(&dir, 12).exists());
        assert!(train_state_path(&dir, 16).exists());
        assert!(dir.join("notes.txt").exists());
        assert!(dir.join(".state-00000020.xrlftrst.1.2.tmp").exists());
        // keep_last is clamped to at least one checkpoint.
        assert_eq!(prune_train_states(&dir, 0).unwrap(), 1);
        assert!(train_state_path(&dir, 16).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
