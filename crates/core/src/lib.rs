//! # xrlflow-core
//!
//! The X-RLflow system itself: the actor-critic agent (GNN encoder + policy
//! and value heads), the PPO trainer, the deployment-time optimiser and the
//! tensor-shape generalisation harness, as described in Sections 3.3–3.4 of
//! the MLSys 2023 paper.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_core::{XrlflowConfig, XrlflowSystem};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
//! let (report, result) = system.train_and_optimize(&graph, 2);
//! println!(
//!     "trained for {} episodes; optimised graph runs at {:.3} ms ({:+.1}% speedup)",
//!     report.episodes.len(),
//!     result.final_latency_ms,
//!     result.speedup_percent(),
//! );
//! ```

#![warn(missing_docs)]

mod agent;
mod config;
pub mod fault;
mod generalization;
mod optimizer;
mod train_state;
mod trainer;

pub use agent::{AgentDecision, PolicyEvaluation, XrlflowAgent};
pub use config::{ConfigError, HyperParameterTable, XrlflowConfig, XrlflowConfigBuilder};
pub use generalization::{run_generalization, GeneralizationPoint, GeneralizationReport};
pub use optimizer::{greedy_optimize, XrlflowResult, XrlflowSystem};
pub use train_state::{
    latest_train_state, prune_train_states, train_state_path, TrainState, TRAIN_STATE_EXTENSION,
};
pub use trainer::{
    collect_episode_with_rng, collect_phase_breakdown_ns, minibatch_grads_serial, minibatch_shuffle_seed,
    transition_grad, transition_grad_into, MinibatchContext, MinibatchGrads, ModelBreakdown, TrainReport,
    Trainer, TransitionLossStats, UpdateTiming,
};
