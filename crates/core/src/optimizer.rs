//! Deployment-time optimisation with a (trained) agent, plus the
//! `XrlflowSystem` facade tying the agent, environment and trainer together.

use std::collections::HashMap;
use std::time::Instant;

use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::{EnvConfig, Environment};
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_tensor::XorShiftRng;

use crate::agent::XrlflowAgent;
use crate::config::XrlflowConfig;
use crate::trainer::{TrainReport, Trainer};

/// Result of optimising one graph with X-RLflow.
#[derive(Debug, Clone)]
pub struct XrlflowResult {
    /// The optimised graph.
    pub graph: Graph,
    /// Simulated end-to-end latency of the initial graph (ms).
    pub initial_latency_ms: f64,
    /// Simulated end-to-end latency of the optimised graph (ms).
    pub final_latency_ms: f64,
    /// Number of substitutions applied.
    pub steps: usize,
    /// How many times each rewrite rule was applied (Figure 5 heatmap data).
    pub rule_applications: HashMap<&'static str, usize>,
    /// Wall-clock optimisation (inference) time in seconds — Figure 6.
    pub optimisation_time_s: f64,
}

impl XrlflowResult {
    /// End-to-end speedup in percent.
    pub fn speedup_percent(&self) -> f64 {
        if self.final_latency_ms == 0.0 {
            0.0
        } else {
            (self.initial_latency_ms / self.final_latency_ms - 1.0) * 100.0
        }
    }
}

/// The complete X-RLflow system: configuration, agent and the pieces needed
/// to build environments on demand.
#[derive(Debug)]
pub struct XrlflowSystem {
    config: XrlflowConfig,
    agent: XrlflowAgent,
    trainer: Trainer,
    profile: DeviceProfile,
    rng: XorShiftRng,
}

impl XrlflowSystem {
    /// Creates a system with freshly initialised agent parameters.
    pub fn new(config: XrlflowConfig, seed: u64) -> Self {
        let agent = XrlflowAgent::new(&config, seed);
        let trainer = Trainer::new(config.clone(), seed.wrapping_add(1));
        Self { config, agent, trainer, profile: DeviceProfile::gtx1080(), rng: XorShiftRng::new(seed) }
    }

    /// Replaces the device profile used for latency simulation.
    pub fn with_profile(mut self, profile: DeviceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &XrlflowConfig {
        &self.config
    }

    /// The underlying agent.
    pub fn agent(&self) -> &XrlflowAgent {
        &self.agent
    }

    /// Mutable access to the underlying agent, e.g. to load a checkpointed
    /// policy before [`XrlflowSystem::optimize`] (the agent must keep the
    /// architecture described by the system's configuration).
    pub fn agent_mut(&mut self) -> &mut XrlflowAgent {
        &mut self.agent
    }

    /// Builds an environment for a graph using the system's configuration.
    pub fn make_environment(&self, graph: &Graph) -> Environment {
        self.make_environment_with(graph, self.config.env.clone())
    }

    /// Builds an environment with an explicit environment configuration.
    pub fn make_environment_with(&self, graph: &Graph, env_config: EnvConfig) -> Environment {
        Environment::new(
            graph.clone(),
            RuleSet::standard(),
            InferenceSimulator::new(self.profile.clone()),
            env_config,
        )
    }

    /// Trains the agent on a single graph for the given number of episodes
    /// (the paper trains one agent per DNN).
    pub fn train_on(&mut self, graph: &Graph, episodes: usize) -> TrainReport {
        let mut env = self.make_environment(graph);
        self.trainer.train(&mut self.agent, &mut env, episodes)
    }

    /// Optimises a graph with the current policy acting greedily (the
    /// deployment path: one forward pass per transformation step).
    pub fn optimize(&mut self, graph: &Graph) -> XrlflowResult {
        let mut env = self.make_environment(graph);
        greedy_optimize(&self.agent, &mut env, &mut self.rng)
    }

    /// Trains on a graph and then optimises it greedily — the end-to-end
    /// workflow of Figure 4.
    pub fn train_and_optimize(&mut self, graph: &Graph, episodes: usize) -> (TrainReport, XrlflowResult) {
        let report = self.train_on(graph, episodes);
        let result = self.optimize(graph);
        (report, result)
    }
}

/// Runs one greedy optimisation episode of `agent` against `env` and
/// collects the deployment-path metrics.
///
/// This is the policy-inference loop shared by [`XrlflowSystem::optimize`]
/// and the serving layer, which drives it with a read-only snapshot replica
/// of a trained agent (`XrlflowAgent::from_snapshot`) over a shared
/// environment — the agent is only read, so one replica can serve many
/// sequential requests.
pub fn greedy_optimize(agent: &XrlflowAgent, env: &mut Environment, rng: &mut XorShiftRng) -> XrlflowResult {
    let start = Instant::now();
    let mut obs = env.reset(0);
    let mut rule_applications: HashMap<&'static str, usize> = HashMap::new();
    let mut steps = 0;
    loop {
        if obs.num_candidates() == 0 {
            break;
        }
        let decision = agent.act(&obs, rng, true);
        if decision.action == obs.noop_action() {
            break;
        }
        let rule = obs.candidates[decision.action].rule_name;
        let result = env.step(&obs, decision.action);
        *rule_applications.entry(rule).or_insert(0) += 1;
        steps += 1;
        if result.done {
            break;
        }
        obs = result.observation;
    }
    let stats = env.episode_stats();
    XrlflowResult {
        graph: env.current_graph().clone(),
        initial_latency_ms: stats.initial_latency_ms,
        final_latency_ms: stats.final_latency_ms,
        steps,
        rule_applications,
        optimisation_time_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    #[test]
    fn untrained_agent_still_produces_valid_optimised_graphs() {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
        let result = system.optimize(&graph);
        assert!(result.graph.validate().is_ok());
        assert!(result.initial_latency_ms > 0.0);
        assert!(result.final_latency_ms > 0.0);
        assert!(result.optimisation_time_s >= 0.0);
        assert_eq!(result.steps, result.rule_applications.values().sum::<usize>());
    }

    #[test]
    fn train_and_optimize_workflow() {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 1);
        let (report, result) = system.train_and_optimize(&graph, 2);
        assert_eq!(report.episodes.len(), 2);
        assert!(result.graph.validate().is_ok());
    }

    #[test]
    fn system_exposes_config_and_agent() {
        let system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 2);
        assert_eq!(system.config().encoder.hidden_dim, 16);
        assert!(system.agent().num_parameters() > 0);
    }
}
