//! The X-RLflow agent: GNN encoder plus policy and value heads
//! (Figure 3 of the paper).
//!
//! The encoder embeds the current graph and every candidate; the policy head
//! scores each candidate against the current graph (plus a dedicated No-Op
//! score) to form a masked categorical distribution over the padded action
//! space, and the value head estimates the state value from the current
//! graph's embedding.
//!
//! Policy evaluation is **delta-aware and batched**: candidate features are
//! derived from the current graph's features plus each candidate's patch
//! ([`GraphFeatures::delta_from_base_and_patch`] — no candidate graph is
//! ever materialised on the inference path), and the current graph plus all
//! `K` candidates run through the GAT stack in one batched pass
//! ([`GnnEncoder::encode_candidates`]) that re-computes only each patch's
//! dirty region per layer instead of `K + 1` serial full-graph tapes. The
//! policy head then scores all `K + 1` pairs in a single stacked forward,
//! so the `[1, K + 1]` logit row is assembled in one op. Only the action the
//! environment actually takes materialises a graph, inside
//! `Environment::step`.

use xrlflow_env::Observation;
use xrlflow_gnn::{CandidateDelta, GnnEncoder, GraphFeatures};
use xrlflow_rl::MaskedCategorical;
use xrlflow_tensor::{Mlp, ParamSnapshot, ParamStore, SnapshotError, Tape, Tensor, VarId, XorShiftRng};

use crate::config::XrlflowConfig;

/// Differentiable outputs of one policy evaluation, used by the PPO update.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEvaluation {
    /// Log-probability of the chosen action.
    pub log_prob: VarId,
    /// Entropy of the action distribution.
    pub entropy: VarId,
    /// State-value estimate.
    pub value: VarId,
}

/// The decision the agent took for one observation (inference path).
#[derive(Debug, Clone)]
pub struct AgentDecision {
    /// Index into the padded action space.
    pub action: usize,
    /// Log-probability of the action under the current policy.
    pub log_prob: f32,
    /// Value estimate of the observation.
    pub value: f32,
    /// The full masked distribution (useful for analysis).
    pub distribution: MaskedCategorical,
}

/// The X-RLflow actor-critic agent.
#[derive(Debug)]
pub struct XrlflowAgent {
    /// Persistent parameter storage for every learnable component.
    pub store: ParamStore,
    encoder: GnnEncoder,
    policy_head: Mlp,
    value_head: Mlp,
}

impl XrlflowAgent {
    /// Creates an agent with freshly initialised parameters.
    pub fn new(config: &XrlflowConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(seed);
        let encoder = GnnEncoder::new(&mut store, config.encoder, &mut rng);
        let hidden = config.encoder.hidden_dim;
        let mut policy_dims = vec![2 * hidden];
        policy_dims.extend_from_slice(&config.head_dims);
        policy_dims.push(1);
        let policy_head = Mlp::new(&mut store, "policy_head", &policy_dims, &mut rng);
        let mut value_dims = vec![hidden];
        value_dims.extend_from_slice(&config.head_dims);
        value_dims.push(1);
        let value_head = Mlp::new(&mut store, "value_head", &value_dims, &mut rng);
        Self { store, encoder, policy_head, value_head }
    }

    /// Builds an agent with the architecture of `config` whose parameters
    /// are loaded from `snapshot` — the worker-side half of the parallel
    /// rollout engine's snapshot-based parameter broadcast.
    ///
    /// The replica is bit-identical to the agent the snapshot was captured
    /// from: construction seeds fresh parameters (seed 0) and then
    /// overwrites every value, and the forward pass depends only on values
    /// and architecture. Optimiser state is *not* part of a snapshot;
    /// replicas are for inference (rollout collection), not for training.
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] describing the first name/shape/count
    /// mismatch when the snapshot was captured under a different
    /// architecture configuration.
    pub fn from_snapshot(config: &XrlflowConfig, snapshot: &ParamSnapshot) -> Result<Self, SnapshotError> {
        let mut agent = Self::new(config, 0);
        agent.store.load_snapshot(snapshot)?;
        Ok(agent)
    }

    /// Captures a named-tensor snapshot of every parameter's current value
    /// (see [`XrlflowAgent::from_snapshot`] and `ParamSnapshot::save`).
    pub fn snapshot(&self) -> ParamSnapshot {
        self.store.snapshot()
    }

    /// Number of scalar parameters in the agent.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// The graph encoder.
    pub fn encoder(&self) -> &GnnEncoder {
        &self.encoder
    }

    /// Builds the differentiable logits (one per valid action: candidates in
    /// order followed by No-Op) and the value estimate for an observation.
    ///
    /// One batched evaluation: candidate features are derived delta-wise
    /// from the current graph's features (no candidate is materialised), the
    /// current graph and all `K` candidates are encoded in one delta-aware
    /// batched pass, and the policy head scores every `[current ‖ candidate]`
    /// pair (plus the `[current ‖ current]` No-Op pair) in a single stacked
    /// forward, yielding the `[1, K + 1]` logit row in one transpose.
    fn forward(&self, tape: &mut Tape, observation: &Observation) -> (VarId, VarId) {
        let current = GraphFeatures::from_graph(&observation.graph);
        let num_candidates = observation.candidates.len();
        let deltas: Vec<CandidateDelta> = observation
            .candidates
            .iter()
            .map(|c| GraphFeatures::delta_from_base_and_patch(&observation.graph, &current, c.patch()))
            .collect();
        // Row 0: the current graph; rows 1..=K: the candidates. Clean rows
        // of every candidate are shared with the current graph's encoding;
        // only each patch's dirty region is re-computed per GAT layer.
        let embeddings = self.encoder.encode_candidates(tape, &self.store, &current, &deltas);

        // Pair row i scores candidate i against the current graph; the last
        // row is the No-Op pair (the current graph against itself).
        let left = tape.gather_rows(embeddings, &vec![0; num_candidates + 1]);
        let mut right_rows: Vec<usize> = (1..=num_candidates).collect();
        right_rows.push(0);
        let right = tape.gather_rows(embeddings, &right_rows);
        let pairs = tape.concat_cols(left, right);
        let scores = self.policy_head.forward(tape, &self.store, pairs);
        let logits = tape.transpose(scores);

        let current_emb = tape.gather_rows(embeddings, &[0]);
        let value = self.value_head.forward(tape, &self.store, current_emb);
        (logits, value)
    }

    /// Inference-only policy evaluation: the per-valid-action logits
    /// (candidates in order, then No-Op) and the value estimate.
    ///
    /// This is the batched + delta-aware path [`XrlflowAgent::act`] uses,
    /// exposed for benchmarks and differential tests against
    /// [`XrlflowAgent::policy_logits_serial`].
    pub fn policy_logits_batched(&self, observation: &Observation) -> (Vec<f32>, f32) {
        let mut tape = Tape::new();
        let (logits_var, value_var) = self.forward(&mut tape, observation);
        (tape.value(logits_var).data().to_vec(), tape.value(value_var).item())
    }

    /// The pre-batching reference implementation of policy evaluation:
    /// materialises every candidate graph, featurises it from scratch and
    /// runs one serial encoder pass per graph. Kept (off the hot path) as
    /// the differential-testing oracle and the benchmark baseline for
    /// [`XrlflowAgent::policy_logits_batched`]; do not use it in training
    /// loops.
    pub fn policy_logits_serial(&self, observation: &Observation) -> (Vec<f32>, f32) {
        let mut tape = Tape::new();
        let current = GraphFeatures::from_graph(&observation.graph);
        let current_emb = self.encoder.encode(&mut tape, &self.store, &current);
        let mut logits = Vec::with_capacity(observation.candidates.len() + 1);
        for candidate in &observation.candidates {
            let graph = candidate.materialize(&observation.graph).expect("candidate applies to its base");
            let features = GraphFeatures::from_graph(&graph);
            let emb = self.encoder.encode(&mut tape, &self.store, &features);
            let pair = tape.concat_cols(current_emb, emb);
            let score = self.policy_head.forward(&mut tape, &self.store, pair);
            logits.push(tape.value(score).item());
        }
        let self_pair = tape.concat_cols(current_emb, current_emb);
        let noop_score = self.policy_head.forward(&mut tape, &self.store, self_pair);
        logits.push(tape.value(noop_score).item());
        let value = self.value_head.forward(&mut tape, &self.store, current_emb);
        (logits, tape.value(value).item())
    }

    /// Chooses an action for an observation.
    ///
    /// With `greedy = true` the most probable action is returned
    /// (deployment); otherwise the action is sampled (training).
    pub fn act(&self, observation: &Observation, rng: &mut XorShiftRng, greedy: bool) -> AgentDecision {
        let mut tape = Tape::new();
        self.act_with_tape(&mut tape, observation, rng, greedy)
    }

    /// [`XrlflowAgent::act`] on a caller-owned scratch tape.
    ///
    /// The tape is [recycled](Tape::recycle) before use, so a rollout loop
    /// that holds one tape across an episode re-runs every step's policy
    /// evaluation in recycled buffers instead of re-allocating a tape per
    /// step. Decisions are bit-identical to [`XrlflowAgent::act`].
    pub fn act_with_tape(
        &self,
        tape: &mut Tape,
        observation: &Observation,
        rng: &mut XorShiftRng,
        greedy: bool,
    ) -> AgentDecision {
        tape.recycle();
        let (logits_var, value_var) = self.forward(tape, observation);
        let logits = tape.value(logits_var).data().to_vec();
        let value = tape.value(value_var).item();

        // Scatter the per-valid-action logits into the padded action space.
        let padded = observation.action_mask.len();
        let mut padded_logits = vec![0.0f32; padded];
        let num_candidates = observation.candidates.len();
        padded_logits[..num_candidates].copy_from_slice(&logits[..num_candidates]);
        padded_logits[padded - 1] = logits[num_candidates];
        let distribution = MaskedCategorical::new(padded_logits, observation.action_mask.clone());
        let action = if greedy { distribution.argmax() } else { distribution.sample(rng) };
        let log_prob = distribution.log_prob(action);
        AgentDecision { action, log_prob, value, distribution }
    }

    /// Differentiable evaluation of a stored transition for the PPO update:
    /// returns the log-probability of `action`, the policy entropy and the
    /// value estimate, all as tape variables.
    ///
    /// # Panics
    ///
    /// Panics if `action` is invalid for the observation.
    pub fn evaluate(&self, tape: &mut Tape, observation: &Observation, action: usize) -> PolicyEvaluation {
        let (logits, value) = self.forward(tape, observation);
        let log_probs = tape.log_softmax(logits);
        let num_candidates = observation.candidates.len();
        let index = if action == observation.noop_action() {
            num_candidates
        } else {
            assert!(action < num_candidates, "action {action} is invalid for this observation");
            action
        };
        let log_prob = tape.pick(log_probs, index);
        // entropy = -sum(p * log p) over the valid actions.
        let probs = tape.exp(log_probs);
        let p_logp = tape.mul(probs, log_probs);
        let neg_entropy = tape.sum_all(p_logp);
        let entropy = tape.neg(neg_entropy);
        // The value head outputs [1, 1]; reduce to a scalar.
        let value = tape.pick(value, 0);
        PolicyEvaluation { log_prob, entropy, value }
    }

    /// Embeds a graph with the current encoder parameters (used by analysis
    /// tooling and tests).
    pub fn embed_graph(&self, graph: &xrlflow_graph::Graph) -> Tensor {
        self.encoder.encode_value(&self.store, &GraphFeatures::from_graph(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_cost::{DeviceProfile, InferenceSimulator};
    use xrlflow_env::Environment;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_rewrite::RuleSet;

    fn observation() -> Observation {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let config = XrlflowConfig::smoke_test();
        let mut env = Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            config.env.clone(),
        );
        env.reset(0)
    }

    #[test]
    fn act_returns_valid_actions() {
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 0);
        let obs = observation();
        let mut rng = XorShiftRng::new(1);
        for _ in 0..10 {
            let decision = agent.act(&obs, &mut rng, false);
            assert!(obs.action_mask[decision.action], "sampled an invalid action");
            assert!(decision.log_prob <= 0.0);
            assert!(decision.value.is_finite());
        }
        let greedy = agent.act(&obs, &mut rng, true);
        assert_eq!(greedy.action, greedy.distribution.argmax());
    }

    #[test]
    fn evaluate_matches_act_log_prob() {
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 3);
        let obs = observation();
        let mut rng = XorShiftRng::new(5);
        let decision = agent.act(&obs, &mut rng, false);
        let mut tape = Tape::new();
        let eval = agent.evaluate(&mut tape, &obs, decision.action);
        let lp = tape.value(eval.log_prob).item();
        assert!(
            (lp - decision.log_prob).abs() < 1e-3,
            "evaluate log-prob {lp} differs from act log-prob {}",
            decision.log_prob
        );
        let entropy = tape.value(eval.entropy).item();
        assert!(entropy >= 0.0);
    }

    #[test]
    fn batched_policy_evaluation_matches_serial_baseline() {
        // The batched + delta-aware path must be bit-identical to the
        // pre-batching serial implementation: same delta features, same
        // per-graph encodings, same stacked policy-head rows.
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 11);
        let obs = observation();
        assert!(obs.num_candidates() > 1, "test needs several candidates");
        let (batched, batched_value) = agent.policy_logits_batched(&obs);
        let (serial, serial_value) = agent.policy_logits_serial(&obs);
        assert_eq!(batched, serial, "batched logits diverge from the serial baseline");
        assert_eq!(batched_value, serial_value, "value estimates diverge");
        assert_eq!(batched.len(), obs.num_candidates() + 1);
    }

    #[test]
    fn act_does_not_materialise_candidates() {
        // The delta featuriser must keep every unchosen candidate
        // unmaterialised; only Environment::step() materialises the chosen
        // one.
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 2);
        let obs = observation();
        let mut rng = XorShiftRng::new(9);
        let _ = agent.act(&obs, &mut rng, false);
        let mut tape = Tape::new();
        let _ = agent.evaluate(&mut tape, &obs, obs.noop_action());
        for c in &obs.candidates {
            assert!(!c.is_materialized(), "policy evaluation materialised a candidate ({})", c.rule_name);
        }
    }

    #[test]
    fn snapshot_replica_is_bit_identical() {
        let config = XrlflowConfig::smoke_test();
        let agent = XrlflowAgent::new(&config, 17);
        let replica = XrlflowAgent::from_snapshot(&config, &agent.snapshot()).unwrap();
        let obs = observation();
        let (logits_a, value_a) = agent.policy_logits_batched(&obs);
        let (logits_b, value_b) = replica.policy_logits_batched(&obs);
        assert_eq!(logits_a, logits_b, "replica logits diverge from the source agent");
        assert_eq!(value_a, value_b);
    }

    #[test]
    fn snapshot_from_different_architecture_is_rejected() {
        let config = XrlflowConfig::smoke_test();
        let agent = XrlflowAgent::new(&config, 0);
        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        assert!(XrlflowAgent::from_snapshot(&wider, &agent.snapshot()).is_err());
    }

    #[test]
    fn agent_has_a_reasonable_parameter_count() {
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 0);
        assert!(agent.num_parameters() > 1000);
        let paper_agent = XrlflowAgent::new(&XrlflowConfig::paper(), 0);
        assert!(paper_agent.num_parameters() > agent.num_parameters());
    }

    #[test]
    fn embeddings_distinguish_models() {
        let agent = XrlflowAgent::new(&XrlflowConfig::smoke_test(), 0);
        let a = agent.embed_graph(&build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap());
        let b = agent.embed_graph(&build_model(ModelKind::Bert, ModelScale::Bench).unwrap());
        let diff: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }
}
