//! Tensor-shape generalisation (Figure 7 of the paper).
//!
//! X-RLflow is trained against one fixed input tensor shape and then reused,
//! without retraining, on the same architecture instantiated with different
//! input shapes (e.g. InceptionV3 at 225/250/299-pixel inputs or DALL-E at
//! different sequence lengths). The graph *structure* is unchanged, so the
//! GNN policy transfers; this module runs exactly that protocol.

use xrlflow_graph::models::{ModelConfig, ModelKind, ModelScale};
use xrlflow_graph::GraphError;

use crate::optimizer::{XrlflowResult, XrlflowSystem};

/// Result of evaluating a trained agent on one input shape.
#[derive(Debug, Clone)]
pub struct GeneralizationPoint {
    /// The input size (image side length or sequence length).
    pub input_size: usize,
    /// Whether this is the shape the agent was trained on.
    pub trained_on: bool,
    /// The optimisation result at this shape.
    pub result: XrlflowResult,
}

/// Report of a tensor-shape generalisation experiment.
#[derive(Debug, Clone)]
pub struct GeneralizationReport {
    /// The architecture evaluated.
    pub kind: ModelKind,
    /// One entry per evaluated input size.
    pub points: Vec<GeneralizationPoint>,
}

impl GeneralizationReport {
    /// Speedup (percent) at the training shape.
    pub fn trained_speedup(&self) -> f64 {
        self.points.iter().find(|p| p.trained_on).map(|p| p.result.speedup_percent()).unwrap_or(0.0)
    }

    /// Mean speedup (percent) over the unseen shapes.
    pub fn unseen_mean_speedup(&self) -> f64 {
        let unseen: Vec<f64> =
            self.points.iter().filter(|p| !p.trained_on).map(|p| p.result.speedup_percent()).collect();
        if unseen.is_empty() {
            0.0
        } else {
            unseen.iter().sum::<f64>() / unseen.len() as f64
        }
    }
}

/// Trains an agent on `kind` at `train_size`, then evaluates it (without any
/// further training) on every size in `eval_sizes`.
///
/// # Errors
///
/// Propagates graph-construction errors for invalid input sizes.
pub fn run_generalization(
    system: &mut XrlflowSystem,
    kind: ModelKind,
    scale: ModelScale,
    train_size: usize,
    eval_sizes: &[usize],
    training_episodes: usize,
) -> Result<GeneralizationReport, GraphError> {
    let train_graph = ModelConfig::new(kind, scale).with_input_size(train_size).build()?;
    let _ = system.train_on(&train_graph, training_episodes);

    let mut points = Vec::new();
    for &size in eval_sizes {
        let graph = ModelConfig::new(kind, scale).with_input_size(size).build()?;
        let result = system.optimize(&graph);
        points.push(GeneralizationPoint { input_size: size, trained_on: size == train_size, result });
    }
    Ok(GeneralizationReport { kind, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XrlflowConfig;

    #[test]
    fn generalization_across_bert_sequence_lengths() {
        let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
        let report =
            run_generalization(&mut system, ModelKind::Bert, ModelScale::Bench, 64, &[32, 64, 96], 2)
                .unwrap();
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.points.iter().filter(|p| p.trained_on).count(), 1);
        for p in &report.points {
            assert!(p.result.graph.validate().is_ok(), "size {} produced an invalid graph", p.input_size);
        }
        // The report helpers are well-defined even for an untrained-ish agent.
        let _ = report.trained_speedup();
        let _ = report.unseen_mean_speedup();
    }
}
