//! PPO training loop (Section 3.3.4, Equations 3–5).
//!
//! The trainer collects `update_frequency` episodes with the current policy,
//! computes generalised advantages and then performs several epochs of
//! mini-batch updates of the combined objective
//! `J = L_clip + c1 * L_value + c2 * L_entropy`, back-propagating through
//! the policy head, value head and GNN encoder in one pass (the paper's
//! "end-to-end" training).
//!
//! Each stored transition is re-evaluated with the batched + delta-aware
//! policy path ([`XrlflowAgent::evaluate`]): the observation's graph and all
//! of its candidates run through the encoder as one delta-aware batch on the
//! update tape (clean candidate rows share the current graph's sub-tree, so
//! their gradient contributions route through it), instead of `K + 1` serial
//! encoder tapes per transition.
//!
//! The update's canonical gradient semantics are **per transition, in
//! transition-index order**: every transition of a minibatch back-propagates
//! its scaled loss into its own zero-initialised [`GradBuffer`]
//! ([`transition_grad`]), and the buffers are merged in minibatch-position
//! order before the merged gradient is loaded into the store, clipped and
//! stepped. Because each contribution starts from zeros and the merge order
//! is fixed, the same merged gradient falls out no matter which thread
//! evaluated which transition — the property the data-parallel update engine
//! in `xrlflow-rollout` builds on ([`Trainer::update_with_segments_via`]
//! accepts the evaluator; [`minibatch_grads_serial`] is the retained serial
//! oracle, same spirit as `collect_serial` / `policy_logits_serial`).

use std::path::Path;
use std::time::Instant;

use xrlflow_env::{Environment, Observation};
use xrlflow_rl::{explained_variance, PpoHyperParams, RolloutBuffer, TrainingStats, Transition};
use xrlflow_tensor::{splitmix64, Adam, GradBuffer, ParamSnapshot, SnapshotError, Tape, XorShiftRng};

use crate::agent::XrlflowAgent;
use crate::config::XrlflowConfig;
use crate::fault::WorkerFault;
use crate::train_state::TrainState;

/// Wall-clock breakdown of one collect-then-update round, so the speedup
/// from parallel episode collection and the parallel PPO update is
/// observable in training reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateTiming {
    /// Milliseconds spent collecting the episodes consumed by this update.
    pub collect_ms: f64,
    /// Milliseconds of the collect phase spent inside the latency
    /// simulator's `measure_ms` (summed across worker threads, so this can
    /// exceed the wall-clock `collect_ms` under parallel collection).
    /// Attributed from the telemetry registry; `0` while telemetry is
    /// disabled.
    pub sim_ms: f64,
    /// Milliseconds of the collect phase spent generating rewrite
    /// candidates (summed across worker threads, like
    /// [`UpdateTiming::sim_ms`]). `0` while telemetry is disabled.
    pub candidate_gen_ms: f64,
    /// Milliseconds spent in the PPO update itself.
    pub update_ms: f64,
    /// Worker threads the update phase ran on (`1` = the serial oracle
    /// path; both phases are sized by `XrlflowConfig::effective_num_workers`
    /// when driven by `ParallelTrainer`).
    pub update_workers: usize,
}

/// Cumulative (simulator-measure, candidate-generation) span time in
/// nanoseconds from the global telemetry registry. Training loops read this
/// before and after a collect phase and attribute the delta to
/// [`UpdateTiming::sim_ms`] / [`UpdateTiming::candidate_gen_ms`]. The sums
/// aggregate across threads (span histograms are process-wide atomics), and
/// stay flat while telemetry is disabled.
pub fn collect_phase_breakdown_ns() -> (u64, u64) {
    (
        xrlflow_obs::histogram!("cost/simulator/measure").sum(),
        xrlflow_obs::histogram!("rewrite/generate_candidates").sum(),
    )
}

/// Per-model aggregate of a multi-model (curriculum) training run: how one
/// model-zoo entry fared across every episode it contributed to the shared
/// agent's updates.
#[derive(Debug, Clone)]
pub struct ModelBreakdown {
    /// The curriculum entry's name (e.g. `"SqueezeNet"`).
    pub name: String,
    /// Episodes this model contributed.
    pub episodes: usize,
    /// Mean shaped reward per episode.
    pub mean_reward: f64,
    /// Mean end-to-end latency reduction over the model's episodes, in
    /// percent of the initial latency (positive = faster final graph).
    pub mean_latency_reduction_percent: f64,
    /// Mean final-graph latency (ms) over the model's episodes.
    pub mean_final_latency_ms: f64,
}

impl ModelBreakdown {
    /// Aggregates episode statistics for one named model.
    pub fn from_episodes(name: impl Into<String>, episodes: &[xrlflow_env::EpisodeStats]) -> Self {
        let n = episodes.len().max(1) as f64;
        let mean_reward = episodes.iter().map(|e| e.total_reward as f64).sum::<f64>() / n;
        let mean_latency_reduction_percent = episodes
            .iter()
            .map(|e| {
                if e.initial_latency_ms == 0.0 {
                    0.0
                } else {
                    (e.initial_latency_ms - e.final_latency_ms) / e.initial_latency_ms * 100.0
                }
            })
            .sum::<f64>()
            / n;
        let mean_final_latency_ms = episodes.iter().map(|e| e.final_latency_ms).sum::<f64>() / n;
        Self {
            name: name.into(),
            episodes: episodes.len(),
            mean_reward,
            mean_latency_reduction_percent,
            mean_final_latency_ms,
        }
    }
}

/// Report of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-episode statistics, in collection order.
    pub episodes: Vec<xrlflow_env::EpisodeStats>,
    /// Statistics of every PPO update performed.
    pub updates: Vec<TrainingStats>,
    /// Wall-clock collection/update split per entry of
    /// [`TrainReport::updates`].
    pub timings: Vec<UpdateTiming>,
    /// Per-model reward/latency-reduction breakdowns, one entry per
    /// curriculum model in curriculum order. Empty for single-model runs.
    pub per_model: Vec<ModelBreakdown>,
}

impl TrainReport {
    /// Mean end-to-end speedup over the last `n` episodes (percent).
    pub fn recent_mean_speedup(&self, n: usize) -> f64 {
        let tail: Vec<f64> = self.episodes.iter().rev().take(n).map(|e| e.speedup_percent()).collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// The canonical episode-collection loop: resets `env` with `reset_seed`,
/// samples actions from `rng` until the episode terminates, and pushes every
/// transition into `buffer`.
///
/// This single function is shared by [`Trainer::collect_episode`] (which
/// feeds it the trainer's continuous RNG stream) and the parallel rollout
/// engine (which feeds it a fresh per-episode-seeded RNG), so the two paths
/// record identical transitions by construction.
pub fn collect_episode_with_rng(
    agent: &XrlflowAgent,
    env: &mut Environment,
    rng: &mut XorShiftRng,
    buffer: &mut RolloutBuffer<Observation>,
    reset_seed: u64,
) -> xrlflow_env::EpisodeStats {
    let mut obs = env.reset(reset_seed);
    // One scratch tape for the whole episode: every step's policy evaluation
    // recycles it instead of allocating a fresh tape (bit-identical
    // decisions, see `XrlflowAgent::act_with_tape`).
    let mut tape = Tape::new();
    loop {
        let decision = agent.act_with_tape(&mut tape, &obs, rng, false);
        let result = env.step(&obs, decision.action);
        buffer.push(Transition {
            observation: obs,
            action: decision.action,
            log_prob: decision.log_prob,
            value: decision.value,
            reward: result.reward,
            done: result.done,
            action_mask: result.observation.action_mask.clone(),
        });
        if result.done {
            break;
        }
        obs = result.observation;
    }
    env.episode_stats()
}

/// The deterministic minibatch-shuffle seed of `epoch` within update
/// `update`.
///
/// Both inputs are folded through SplitMix64 mixes (the same construction as
/// the rollout engine's `curriculum_rng_seed`), so no two `(update, epoch)`
/// pairs share a shuffle order. The naive `update_counter + epoch` scheme
/// this replaces collided across consecutive updates: the counter advanced
/// by `epochs_per_update` per update, so update `u`'s epoch `e` and update
/// `u + 1`'s epoch `e - epochs_per_update` reused the same seed.
pub fn minibatch_shuffle_seed(update: u64, epoch: u64) -> u64 {
    splitmix64(splitmix64(update) ^ epoch.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Scalar diagnostics of one transition's loss evaluation, recorded in
/// minibatch-position order by every update path (serial or parallel) so
/// [`TrainingStats`] are independent of how the evaluation was sharded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionLossStats {
    /// The clipped surrogate policy loss (Eq. 3), unscaled.
    pub policy_loss: f32,
    /// The squared-error value loss (Eq. 4), unscaled.
    pub value_loss: f32,
    /// Entropy of the action distribution at this observation.
    pub entropy: f32,
    /// The value head's prediction for this observation.
    pub predicted_value: f32,
    /// Whether the PPO probability ratio left the `[1-ε, 1+ε]` trust
    /// region, i.e. the clip in Eq. 3 was active for this transition. The
    /// fraction of clipped transitions per update is the standard check
    /// that the policy is not stepping too far per update.
    pub clipped: bool,
}

/// Everything a minibatch gradient evaluator needs: the stored transitions,
/// the shuffled index batch, the precomputed advantages/returns and the PPO
/// hyper-parameters. Borrowed views only — evaluators never mutate the
/// buffer or the agent.
#[derive(Debug, Clone, Copy)]
pub struct MinibatchContext<'a> {
    /// Every stored transition of the update's rollout buffer.
    pub transitions: &'a [Transition<Observation>],
    /// The transition indices of this minibatch, in shuffled order.
    pub batch: &'a [usize],
    /// Normalised GAE advantages, indexed like `transitions`.
    pub advantages: &'a [f32],
    /// Value targets, indexed like `transitions`.
    pub returns: &'a [f32],
    /// The update's PPO hyper-parameters.
    pub ppo: PpoHyperParams,
}

/// The result of evaluating one minibatch: the per-transition gradient
/// contributions merged in minibatch-position order, plus each transition's
/// scalar loss diagnostics in the same order.
#[derive(Debug, Clone)]
pub struct MinibatchGrads {
    /// The merged gradient of the minibatch's mean loss.
    pub grads: GradBuffer,
    /// Per-transition diagnostics, aligned with `MinibatchContext::batch`.
    pub stats: Vec<TransitionLossStats>,
}

/// Back-propagates one transition's scaled PPO loss
/// (`(L_clip + c1 * L_vf + c2 * L_entropy) * inv`, Eqs. 3–5) into a fresh
/// zero-initialised [`GradBuffer`] on a private tape.
///
/// This single function is the unit of work of **every** update path: the
/// serial oracle ([`minibatch_grads_serial`]) calls it transition by
/// transition on the live agent, and the data-parallel engine in
/// `xrlflow-rollout` calls it on snapshot-built replicas from worker
/// threads — so the two paths produce bit-identical per-transition gradients
/// by construction, and only the merge order (fixed: minibatch position)
/// decides the final bits.
pub fn transition_grad(
    agent: &XrlflowAgent,
    transition: &Transition<Observation>,
    advantage: f32,
    ret: f32,
    ppo: &PpoHyperParams,
    inv: f32,
) -> (GradBuffer, TransitionLossStats) {
    let mut tape = Tape::new();
    let mut grads = GradBuffer::zeros_like(&agent.store);
    let stats = transition_grad_into(agent, transition, advantage, ret, ppo, inv, &mut tape, &mut grads);
    (grads, stats)
}

/// [`transition_grad`] into caller-owned scratch: the tape is
/// [recycled](Tape::recycle) and the buffer [zero-filled](GradBuffer::zero_fill)
/// before use, so an update loop that evaluates many transitions reuses one
/// tape arena and one gradient buffer per slot instead of re-allocating both
/// per transition. A recycled tape and a zero-filled buffer are
/// indistinguishable from fresh ones, so the gradients are bit-identical to
/// [`transition_grad`]'s.
#[allow(clippy::too_many_arguments)]
pub fn transition_grad_into(
    agent: &XrlflowAgent,
    transition: &Transition<Observation>,
    advantage: f32,
    ret: f32,
    ppo: &PpoHyperParams,
    inv: f32,
    tape: &mut Tape,
    grads: &mut GradBuffer,
) -> TransitionLossStats {
    tape.recycle();
    grads.zero_fill();
    let eval = agent.evaluate(tape, &transition.observation, transition.action);

    // Policy (clip) loss, Eq. 3.
    let old_log_prob = tape.scalar(transition.log_prob);
    let log_ratio = tape.sub(eval.log_prob, old_log_prob);
    let ratio = tape.exp(log_ratio);
    let adv = tape.scalar(advantage);
    let surrogate1 = tape.mul(ratio, adv);
    let clipped = tape.clamp(ratio, 1.0 - ppo.clip_epsilon, 1.0 + ppo.clip_epsilon);
    let surrogate2 = tape.mul(clipped, adv);
    let surrogate = tape.minimum(surrogate1, surrogate2);
    let policy_loss = tape.neg(surrogate);

    // Value loss, Eq. 4.
    let target = tape.scalar(ret);
    let diff = tape.sub(eval.value, target);
    let value_loss = tape.mul(diff, diff);

    // Entropy bonus (maximise entropy => subtract it).
    let neg_entropy = tape.neg(eval.entropy);

    // J = L_clip + c1 * L_vf + c2 * L_entropy, Eq. 5, scaled by the
    // minibatch mean factor so merged contributions sum to the mean loss
    // gradient.
    let value_term = tape.scale(value_loss, ppo.value_loss_coefficient);
    let entropy_term = tape.scale(neg_entropy, ppo.entropy_coefficient);
    let partial = tape.add(policy_loss, value_term);
    let sample_loss = tape.add(partial, entropy_term);
    let sample_loss = tape.scale(sample_loss, inv);

    tape.backward_into(sample_loss, grads);
    // A pure read of the already-computed ratio: recording whether the clip
    // was active changes no tape node and no gradient bit.
    let ratio_value = tape.value(ratio).item();
    TransitionLossStats {
        policy_loss: tape.value(policy_loss).item(),
        value_loss: tape.value(value_loss).item(),
        entropy: tape.value(eval.entropy).item(),
        predicted_value: tape.value(eval.value).item(),
        clipped: ratio_value < 1.0 - ppo.clip_epsilon || ratio_value > 1.0 + ppo.clip_epsilon,
    }
}

/// The retained serial minibatch evaluator: every transition of the batch
/// back-propagated on the calling thread via [`transition_grad`], merged in
/// minibatch-position order.
///
/// This is the differential-testing oracle for the data-parallel evaluator
/// in `xrlflow-rollout` (same spirit as `collect_serial`): sharding the same
/// batch across any number of workers and merging per-position buffers in
/// position order must reproduce this function's output bit for bit.
pub fn minibatch_grads_serial(agent: &XrlflowAgent, ctx: &MinibatchContext) -> MinibatchGrads {
    let inv = 1.0 / ctx.batch.len() as f32;
    let mut merged = GradBuffer::zeros_like(&agent.store);
    let mut stats = Vec::with_capacity(ctx.batch.len());
    // One scratch tape and one per-transition buffer for the whole batch:
    // each contribution recycles them (starting from zeros, like a fresh
    // buffer) before it is merged in minibatch-position order.
    let mut tape = Tape::new();
    let mut scratch = GradBuffer::zeros_like(&agent.store);
    for &i in ctx.batch {
        let transition_stats = transition_grad_into(
            agent,
            &ctx.transitions[i],
            ctx.advantages[i],
            ctx.returns[i],
            &ctx.ppo,
            inv,
            &mut tape,
            &mut scratch,
        );
        merged.merge(&scratch);
        stats.push(transition_stats);
    }
    MinibatchGrads { grads: merged, stats }
}

/// The PPO trainer driving an [`XrlflowAgent`] against an [`Environment`].
#[derive(Debug)]
pub struct Trainer {
    config: XrlflowConfig,
    optimizer: Adam,
    rng: XorShiftRng,
    update_counter: u64,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: XrlflowConfig, seed: u64) -> Self {
        let optimizer = Adam::new(config.ppo.learning_rate);
        Self { config, optimizer, rng: XorShiftRng::new(seed), update_counter: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &XrlflowConfig {
        &self.config
    }

    /// Collects one episode with the current (stochastic) policy, sampling
    /// actions from the trainer's own RNG stream.
    pub fn collect_episode(
        &mut self,
        agent: &XrlflowAgent,
        env: &mut Environment,
        buffer: &mut RolloutBuffer<Observation>,
        seed: u64,
    ) -> xrlflow_env::EpisodeStats {
        collect_episode_with_rng(agent, env, &mut self.rng, buffer, seed)
    }

    /// Performs one PPO update over the collected rollouts.
    pub fn update(
        &mut self,
        agent: &mut XrlflowAgent,
        buffer: &mut RolloutBuffer<Observation>,
    ) -> TrainingStats {
        self.update_with_segments(agent, buffer, &[])
    }

    /// Performs one PPO update over a merged multi-model buffer, normalising
    /// advantages *per segment* (one segment per curriculum model, in merge
    /// order) instead of globally, so a large graph's long high-variance
    /// episodes don't dominate the gradient of smaller models sharing the
    /// update. Every other step — GAE, minibatching, the clipped objective —
    /// is identical to [`Trainer::update`]; an empty `segments` slice *is*
    /// [`Trainer::update`].
    pub fn update_with_segments(
        &mut self,
        agent: &mut XrlflowAgent,
        buffer: &mut RolloutBuffer<Observation>,
        segments: &[std::ops::Range<usize>],
    ) -> TrainingStats {
        self.update_with_segments_via(agent, buffer, segments, &mut |agent, ctx| {
            Ok(minibatch_grads_serial(agent, ctx))
        })
        .unwrap_or_else(|fault| unreachable!("serial evaluator is infallible: {fault}"))
    }

    /// [`Trainer::update_with_segments`] with a pluggable minibatch gradient
    /// evaluator — the seam the data-parallel update engine in
    /// `xrlflow-rollout` plugs into.
    ///
    /// Everything that *steps the optimiser* stays here, on the calling
    /// thread: per minibatch the evaluator produces the merged per-transition
    /// gradient (in minibatch-position order) and per-transition diagnostics,
    /// and this function loads the gradient into the store, records its norm,
    /// clips and steps. An evaluator is therefore free to shard the
    /// re-evaluations across worker threads — as long as it merges buffers by
    /// position (never completion order) the update is bit-identical to the
    /// serial oracle [`minibatch_grads_serial`].
    ///
    /// The reported `grad_norm` is the **mean** pre-clip gradient norm
    /// across all minibatches of the update (the previous implementation
    /// reported only the last minibatch's norm).
    ///
    /// # Errors
    ///
    /// Propagates the first [`WorkerFault`] the evaluator reports (a work
    /// item that exhausted its retry budget in a supervised pool). The
    /// update stops immediately; because earlier minibatches may already
    /// have stepped the optimiser, the agent's state after an error is
    /// unspecified — recover by resuming from the last durable
    /// `TrainState` checkpoint.
    pub fn update_with_segments_via(
        &mut self,
        agent: &mut XrlflowAgent,
        buffer: &mut RolloutBuffer<Observation>,
        segments: &[std::ops::Range<usize>],
        minibatch_grads: &mut dyn FnMut(
            &XrlflowAgent,
            &MinibatchContext,
        ) -> Result<MinibatchGrads, WorkerFault>,
    ) -> Result<TrainingStats, WorkerFault> {
        let _span = xrlflow_obs::span!("core/ppo_update");
        let ppo = self.config.ppo;
        buffer.compute_advantages_segmented(ppo.gamma, ppo.gae_lambda, segments);
        let advantages = buffer.advantages().to_vec();
        let returns = buffer.returns().to_vec();

        let mut policy_losses = Vec::new();
        let mut value_losses = Vec::new();
        let mut entropies = Vec::new();
        let mut grad_norms = Vec::new();
        let mut predicted_values = Vec::new();
        let mut clipped_evals = 0usize;

        self.update_counter += 1;
        for epoch in 0..ppo.epochs_per_update {
            let seed = minibatch_shuffle_seed(self.update_counter, epoch as u64);
            let batches = buffer.minibatch_indices(ppo.batch_size, seed);
            for batch in batches {
                if batch.is_empty() {
                    continue;
                }
                let ctx = MinibatchContext {
                    transitions: buffer.transitions(),
                    batch: &batch,
                    advantages: &advantages,
                    returns: &returns,
                    ppo,
                };
                let evaluated = minibatch_grads(agent, &ctx)?;
                assert_eq!(
                    evaluated.stats.len(),
                    batch.len(),
                    "the evaluator must return one stats entry per transition"
                );
                for (stats, &i) in evaluated.stats.iter().zip(&batch) {
                    policy_losses.push(stats.policy_loss);
                    value_losses.push(stats.value_loss);
                    entropies.push(stats.entropy);
                    clipped_evals += stats.clipped as usize;
                    if epoch == 0 {
                        predicted_values.push((i, stats.predicted_value));
                    }
                }
                agent.store.apply_grads(&evaluated.grads);
                grad_norms.push(agent.store.grad_norm());
                agent.store.clip_grad_norm(ppo.max_grad_norm);
                self.optimizer.step(&mut agent.store);
            }
        }

        let mean = |v: &[f32]| if v.is_empty() { 0.0 } else { v.iter().sum::<f32>() / v.len() as f32 };
        let mut preds = vec![0.0f32; returns.len()];
        for (i, v) in predicted_values {
            preds[i] = v;
        }
        let stats = TrainingStats {
            policy_loss: mean(&policy_losses),
            value_loss: mean(&value_losses),
            entropy: mean(&entropies),
            mean_episode_reward: mean(&buffer.episode_rewards()),
            explained_variance: explained_variance(&preds, &returns),
            grad_norm: mean(&grad_norms),
            clip_fraction: if policy_losses.is_empty() {
                0.0
            } else {
                clipped_evals as f32 / policy_losses.len() as f32
            },
            transitions: buffer.len(),
        };
        // Export the update's diagnostic series to the telemetry registry —
        // pure reads of already-computed statistics, bit-transparent.
        xrlflow_obs::counter!("core/updates").inc();
        xrlflow_obs::counter!("core/update_transitions").add(stats.transitions as u64);
        xrlflow_obs::gauge!("core/policy_loss").set(stats.policy_loss as f64);
        xrlflow_obs::gauge!("core/value_loss").set(stats.value_loss as f64);
        xrlflow_obs::gauge!("core/entropy").set(stats.entropy as f64);
        xrlflow_obs::gauge!("core/grad_norm").set(stats.grad_norm as f64);
        xrlflow_obs::gauge!("core/clip_fraction").set(stats.clip_fraction as f64);
        xrlflow_obs::gauge!("core/explained_variance").set(stats.explained_variance as f64);
        buffer.clear();
        Ok(stats)
    }

    /// Runs the full serial training loop: collect `update_frequency`
    /// episodes, update, repeat until `episodes` episodes have been
    /// collected.
    ///
    /// Collection here is strictly sequential in one thread; the
    /// `xrlflow-rollout` crate's `ParallelTrainer` drives the same
    /// [`Trainer::update`] with episodes collected by a worker pool instead
    /// (the update path is identical — it consumes whatever merged
    /// [`RolloutBuffer`] it is given).
    pub fn train(&mut self, agent: &mut XrlflowAgent, env: &mut Environment, episodes: usize) -> TrainReport {
        let mut report = TrainReport::default();
        let mut buffer = RolloutBuffer::new();
        let mut collect_ms = 0.0;
        let (mut sim_ns, mut candgen_ns) = collect_phase_breakdown_ns();
        for episode in 0..episodes {
            let collect_start = Instant::now();
            let stats = {
                let _span = xrlflow_obs::span!("core/collect");
                self.collect_episode(agent, env, &mut buffer, episode as u64)
            };
            collect_ms += collect_start.elapsed().as_secs_f64() * 1e3;
            report.episodes.push(stats);
            let is_last = episode + 1 == episodes;
            if (episode + 1) % self.config.ppo.update_frequency == 0 || is_last {
                let update_start = Instant::now();
                report.updates.push(self.update(agent, &mut buffer));
                let update_ms = update_start.elapsed().as_secs_f64() * 1e3;
                let (sim_now, candgen_now) = collect_phase_breakdown_ns();
                report.timings.push(UpdateTiming {
                    collect_ms,
                    sim_ms: sim_now.saturating_sub(sim_ns) as f64 / 1e6,
                    candidate_gen_ms: candgen_now.saturating_sub(candgen_ns) as f64 / 1e6,
                    update_ms,
                    update_workers: 1,
                });
                collect_ms = 0.0;
                (sim_ns, candgen_ns) = (sim_now, candgen_now);
            }
        }
        report
    }

    /// Persists the agent's parameters as a versioned on-disk
    /// [`ParamSnapshot`] so long runs can resume and trained agents can be
    /// shipped.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_checkpoint(&self, agent: &XrlflowAgent, path: impl AsRef<Path>) -> std::io::Result<()> {
        agent.snapshot().save(path)
    }

    /// Restores the agent's parameters from a checkpoint written by
    /// [`Trainer::save_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the file cannot be read, is not a
    /// valid snapshot, or was captured under a different architecture (the
    /// name/shape mismatch is reported and the agent is left untouched).
    pub fn load_checkpoint(
        &self,
        agent: &mut XrlflowAgent,
        path: impl AsRef<Path>,
    ) -> Result<(), SnapshotError> {
        let snapshot = ParamSnapshot::load(path)?;
        agent.store.load_snapshot(&snapshot)
    }

    /// Number of PPO updates performed so far. The counter seeds the
    /// minibatch shuffle schedule ([`minibatch_shuffle_seed`]), so it is
    /// part of the exact-resume state.
    pub fn update_counter(&self) -> u64 {
        self.update_counter
    }

    /// Captures the complete training state for exact resume: parameters,
    /// Adam moments and step counter, the update counter, and the rollout
    /// engine's seed-schedule position (`next_episode` under `base_seed`).
    ///
    /// A trainer restored from this state ([`Trainer::restore_train_state`])
    /// continues training **bit-identically** to one that was never
    /// interrupted.
    pub fn train_state(&self, agent: &XrlflowAgent, next_episode: u64, base_seed: u64) -> TrainState {
        let (adam_first, adam_second) = agent.store.adam_snapshot();
        TrainState {
            params: agent.store.snapshot(),
            adam_first,
            adam_second,
            adam_steps: self.optimizer.steps() as u64,
            update_counter: self.update_counter,
            next_episode,
            base_seed,
        }
    }

    /// Restores trainer and agent from a [`TrainState`].
    ///
    /// Adoption is all-or-nothing: the moment sections are validated
    /// against the parameter section and the parameters against the live
    /// store *before* anything is written, so a failed restore leaves the
    /// agent, the optimiser and the update counter untouched. The caller
    /// owns the seed-schedule half of the state (`next_episode`,
    /// `base_seed`) — the parallel trainer consumes those.
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] naming the first mismatch between the
    /// checkpoint and the agent's architecture.
    pub fn restore_train_state(
        &mut self,
        agent: &mut XrlflowAgent,
        state: &TrainState,
    ) -> Result<(), SnapshotError> {
        // A hand-built state may not have mirrored sections; files already
        // passed this in `TrainState::from_bytes`. With the sections proven
        // congruent, a successful params load guarantees the moment load
        // cannot fail — no window for partial adoption remains.
        state.params.compatible_with(&state.adam_first)?;
        state.params.compatible_with(&state.adam_second)?;
        agent.store.load_snapshot(&state.params)?;
        agent.store.load_adam_snapshot(&state.adam_first, &state.adam_second)?;
        self.optimizer.set_steps(state.adam_steps as usize);
        self.update_counter = state.update_counter;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_cost::{DeviceProfile, InferenceSimulator};
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_rewrite::RuleSet;

    fn make_env(config: &XrlflowConfig) -> Environment {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            config.env.clone(),
        )
    }

    #[test]
    fn short_training_run_completes_and_updates_parameters() {
        let config = XrlflowConfig::smoke_test();
        let mut agent = XrlflowAgent::new(&config, 0);
        let mut env = make_env(&config);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let embedding_before = agent.embed_graph(&probe);

        let mut trainer = Trainer::new(config.clone(), 7);
        let report = trainer.train(&mut agent, &mut env, config.training_episodes);

        assert_eq!(report.episodes.len(), config.training_episodes);
        assert!(!report.updates.is_empty());
        assert_eq!(report.timings.len(), report.updates.len());
        for timing in &report.timings {
            assert!(timing.collect_ms > 0.0, "episode collection takes measurable time");
            assert!(timing.update_ms > 0.0, "the PPO update takes measurable time");
        }
        for update in &report.updates {
            assert!(update.transitions > 0);
            assert!(update.entropy.is_finite());
            assert!(update.policy_loss.is_finite());
            assert!(update.value_loss.is_finite());
        }
        // The PPO update must actually have moved the parameters.
        let embedding_after = agent.embed_graph(&probe);
        let drift: f32 =
            embedding_before.data().iter().zip(embedding_after.data()).map(|(a, b)| (a - b).abs()).sum();
        assert!(drift > 1e-7, "training did not change the encoder parameters");
    }

    #[test]
    fn collect_episode_fills_buffer_with_consistent_transitions() {
        let config = XrlflowConfig::smoke_test();
        let agent = XrlflowAgent::new(&config, 1);
        let mut env = make_env(&config);
        let mut trainer = Trainer::new(config, 3);
        let mut buffer = RolloutBuffer::new();
        let stats = trainer.collect_episode(&agent, &mut env, &mut buffer, 0);
        assert!(!buffer.is_empty());
        assert!(buffer.transitions().last().unwrap().done);
        assert!(stats.final_latency_ms > 0.0);
        for t in buffer.transitions() {
            assert!(t.action_mask.len() > 1);
            assert!(t.log_prob <= 0.0);
        }
    }

    #[test]
    fn recent_mean_speedup_handles_empty_report() {
        let report = TrainReport::default();
        assert_eq!(report.recent_mean_speedup(5), 0.0);
    }

    /// Collects enough transitions for several minibatches per epoch.
    fn filled_buffer(
        config: &XrlflowConfig,
        agent: &XrlflowAgent,
        episodes: usize,
    ) -> RolloutBuffer<Observation> {
        let mut env = make_env(config);
        let mut trainer = Trainer::new(config.clone(), 3);
        let mut buffer = RolloutBuffer::new();
        for episode in 0..episodes {
            trainer.collect_episode(agent, &mut env, &mut buffer, episode as u64);
        }
        buffer
    }

    #[test]
    fn grad_norm_is_the_mean_across_all_minibatches() {
        let mut config = XrlflowConfig::smoke_test();
        config.ppo.batch_size = 2; // force several minibatches per epoch
        config.ppo.epochs_per_update = 2;
        let mut agent = XrlflowAgent::new(&config, 8);
        let mut buffer = filled_buffer(&config, &agent, 2);
        assert!(buffer.len() >= 4, "need at least two minibatches");

        // Shadow run: wrap the serial evaluator to record each minibatch's
        // pre-clip merged-gradient norm (identical to the store norm the
        // trainer reads right after apply_grads).
        let mut norms = Vec::new();
        let mut trainer = Trainer::new(config.clone(), 7);
        let stats = trainer
            .update_with_segments_via(&mut agent, &mut buffer, &[], &mut |agent, ctx| {
                let out = minibatch_grads_serial(agent, ctx);
                norms.push(out.grads.norm());
                Ok(out)
            })
            .expect("the wrapped serial evaluator never faults");

        assert!(norms.len() >= 2, "the update must have run several minibatches, got {}", norms.len());
        let mean = norms.iter().sum::<f32>() / norms.len() as f32;
        assert_eq!(
            stats.grad_norm,
            mean,
            "grad_norm must be the mean across all {} minibatches, not the last one ({})",
            norms.len(),
            norms.last().unwrap()
        );
        assert_ne!(stats.grad_norm, *norms.last().unwrap(), "minibatch norms should differ in this run");
    }

    #[test]
    fn minibatch_shuffle_seeds_do_not_collide_across_updates_and_epochs() {
        // The replaced `update_counter + epoch` scheme collided between
        // consecutive updates (the counter advanced by epochs_per_update);
        // the SplitMix64 mix must keep every (update, epoch) pair distinct.
        let mut seeds = std::collections::HashSet::new();
        for update in 1..=32u64 {
            for epoch in 0..8u64 {
                seeds.insert(minibatch_shuffle_seed(update, epoch));
            }
        }
        assert_eq!(seeds.len(), 32 * 8, "(update, epoch) pairs must map to distinct shuffle seeds");
        assert_eq!(minibatch_shuffle_seed(3, 1), minibatch_shuffle_seed(3, 1));
    }

    #[test]
    fn serial_minibatch_evaluator_matches_the_default_update_path() {
        // update_with_segments is update_with_segments_via over the serial
        // oracle; two identically seeded runs must land on identical
        // parameters and stats.
        let config = XrlflowConfig::smoke_test();
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut results = Vec::new();
        for _ in 0..2 {
            let mut agent = XrlflowAgent::new(&config, 8);
            let mut buffer = filled_buffer(&config, &agent, 2);
            let mut trainer = Trainer::new(config.clone(), 7);
            let stats = trainer.update(&mut agent, &mut buffer);
            results.push((stats, agent.embed_graph(&probe)));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].1.data(), results[1].1.data());
    }

    #[test]
    fn checkpoint_round_trip_restores_the_policy() {
        let config = XrlflowConfig::smoke_test();
        let agent = XrlflowAgent::new(&config, 21);
        let trainer = Trainer::new(config.clone(), 0);
        let path = std::env::temp_dir().join("xrlflow_trainer_ckpt_test/agent.snap");
        trainer.save_checkpoint(&agent, &path).unwrap();

        let mut restored = XrlflowAgent::new(&config, 99);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        assert_ne!(agent.embed_graph(&probe).data(), restored.embed_graph(&probe).data());
        trainer.load_checkpoint(&mut restored, &path).unwrap();
        assert_eq!(
            agent.embed_graph(&probe).data(),
            restored.embed_graph(&probe).data(),
            "restored agent must be bit-identical to the checkpointed one"
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn checkpoint_mismatch_fails_gracefully() {
        let config = XrlflowConfig::smoke_test();
        let trainer = Trainer::new(config.clone(), 0);
        let path = std::env::temp_dir().join("xrlflow_trainer_ckpt_mismatch/agent.snap");
        trainer.save_checkpoint(&XrlflowAgent::new(&config, 0), &path).unwrap();

        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        let mut victim = XrlflowAgent::new(&wider, 1);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let before = victim.embed_graph(&probe);
        let err = Trainer::new(wider, 0).load_checkpoint(&mut victim, &path).unwrap_err();
        assert!(!err.to_string().is_empty());
        // The failed load must leave the agent untouched.
        assert_eq!(victim.embed_graph(&probe).data(), before.data());
        // A missing file is an error, not a panic.
        assert!(trainer.load_checkpoint(&mut victim, path.parent().unwrap().join("missing.snap")).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
