//! Configuration of the X-RLflow system.
//!
//! Defaults follow the paper's Table 4: learning rate 5e-4, value-loss
//! coefficient 0.5, entropy coefficient 0.01, edge normaliser M = 4096,
//! k = 5 GAT layers, update frequency 10, feedback frequency N = 5, MLP
//! heads [256, 64] and batch size 16.

use xrlflow_env::EnvConfig;
use xrlflow_gnn::EncoderConfig;
use xrlflow_rl::PpoHyperParams;

/// Full configuration of the X-RLflow agent, environment and training loop.
#[derive(Debug, Clone)]
pub struct XrlflowConfig {
    /// PPO hyper-parameters (Table 4).
    pub ppo: PpoHyperParams,
    /// GNN encoder configuration (hidden width and `k` GAT layers).
    pub encoder: EncoderConfig,
    /// Hidden sizes of the policy and value MLP heads (Table 4: `[256, 64]`).
    pub head_dims: Vec<usize>,
    /// Environment configuration (feedback frequency `N`, action-space
    /// padding, step budget).
    pub env: EnvConfig,
    /// Total number of training episodes.
    pub training_episodes: usize,
    /// Number of rollout worker threads used by the parallel collection
    /// engine (`xrlflow-rollout`). `1` keeps collection serial; any value is
    /// transition-for-transition equivalent — workers replay a fixed
    /// per-episode seed schedule against snapshot-built agent replicas, so
    /// the worker count changes wall-clock time only, never a learned
    /// number. Overridable at run time via the `XRLFLOW_WORKERS` environment
    /// variable (see [`XrlflowConfig::effective_num_workers`]).
    pub num_workers: usize,
}

impl XrlflowConfig {
    /// The paper's configuration (Table 4). Training for the published 1000+
    /// episodes on full-size models is a GPU-scale workload; use
    /// [`XrlflowConfig::bench`] or [`XrlflowConfig::smoke_test`] for
    /// CPU-scale experiments with the same structure.
    pub fn paper() -> Self {
        Self {
            ppo: PpoHyperParams::default(),
            encoder: EncoderConfig { hidden_dim: 64, num_gat_layers: 5 },
            head_dims: vec![256, 64],
            env: EnvConfig::default(),
            training_episodes: 1000,
            num_workers: 1,
        }
    }

    /// A CPU-friendly configuration used by the benchmark harness: identical
    /// structure with a narrower encoder and shorter episodes.
    pub fn bench() -> Self {
        Self {
            ppo: PpoHyperParams {
                update_frequency: 4,
                epochs_per_update: 2,
                batch_size: 16,
                ..PpoHyperParams::default()
            },
            encoder: EncoderConfig { hidden_dim: 32, num_gat_layers: 3 },
            head_dims: vec![64, 32],
            env: EnvConfig { max_steps: 25, max_candidates: 32, ..EnvConfig::default() },
            training_episodes: 24,
            num_workers: 4,
        }
    }

    /// A minimal configuration for unit tests (tiny networks, very short
    /// episodes) that still exercises every code path.
    pub fn smoke_test() -> Self {
        Self {
            ppo: PpoHyperParams {
                update_frequency: 2,
                epochs_per_update: 1,
                batch_size: 8,
                ..PpoHyperParams::default()
            },
            encoder: EncoderConfig { hidden_dim: 16, num_gat_layers: 1 },
            head_dims: vec![32, 16],
            env: EnvConfig { max_steps: 4, max_candidates: 8, feedback_frequency: 2, ..EnvConfig::default() },
            training_episodes: 2,
            num_workers: 2,
        }
    }

    /// The rollout worker count actually in effect: the `XRLFLOW_WORKERS`
    /// environment variable when set to a positive integer, otherwise
    /// [`XrlflowConfig::num_workers`], floored at 1.
    pub fn effective_num_workers(&self) -> usize {
        std::env::var("XRLFLOW_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or(self.num_workers)
            .max(1)
    }
}

impl Default for XrlflowConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Flat summary of the hyper-parameters, mirroring the paper's
/// Table 4 (used by the benchmark harness to print the table).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParameterTable {
    /// Learning rate of PPO's policy and value networks.
    pub learning_rate: f32,
    /// Value loss coefficient `c1`.
    pub value_loss_coefficient: f32,
    /// Entropy loss coefficient `c2`.
    pub entropy_coefficient: f32,
    /// Edge attribute normalisation constant `M`.
    pub edge_attribute_constant: f32,
    /// Number of GAT layers `k`.
    pub num_gat_layers: usize,
    /// Update frequency (episodes between PPO updates).
    pub update_frequency: usize,
    /// Feedback frequency `N` (steps between latency measurements).
    pub feedback_frequency: usize,
    /// MLP head hidden sizes.
    pub mlp_heads: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl From<&XrlflowConfig> for HyperParameterTable {
    fn from(cfg: &XrlflowConfig) -> Self {
        Self {
            learning_rate: cfg.ppo.learning_rate,
            value_loss_coefficient: cfg.ppo.value_loss_coefficient,
            entropy_coefficient: cfg.ppo.entropy_coefficient,
            edge_attribute_constant: xrlflow_gnn::EDGE_NORMALISER,
            num_gat_layers: cfg.encoder.num_gat_layers,
            update_frequency: cfg.ppo.update_frequency,
            feedback_frequency: cfg.env.feedback_frequency,
            mlp_heads: cfg.head_dims.clone(),
            batch_size: cfg.ppo.batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table4() {
        let table = HyperParameterTable::from(&XrlflowConfig::paper());
        assert_eq!(table.learning_rate, 5e-4);
        assert_eq!(table.value_loss_coefficient, 0.5);
        assert_eq!(table.entropy_coefficient, 0.01);
        assert_eq!(table.edge_attribute_constant, 4096.0);
        assert_eq!(table.num_gat_layers, 5);
        assert_eq!(table.update_frequency, 10);
        assert_eq!(table.feedback_frequency, 5);
        assert_eq!(table.mlp_heads, vec![256, 64]);
        assert_eq!(table.batch_size, 16);
    }

    #[test]
    fn smoke_test_config_is_small() {
        let cfg = XrlflowConfig::smoke_test();
        assert!(cfg.encoder.hidden_dim <= 16);
        assert!(cfg.env.max_steps <= 5);
        assert!(cfg.training_episodes <= 4);
    }

    #[test]
    fn effective_num_workers_is_at_least_one() {
        // XRLFLOW_WORKERS may or may not be set in the ambient environment
        // (CI sets it for bench jobs); whatever its value, the effective
        // count must be usable as a thread count.
        let mut cfg = XrlflowConfig::smoke_test();
        cfg.num_workers = 0;
        assert!(cfg.effective_num_workers() >= 1);
        cfg.num_workers = 3;
        assert!(cfg.effective_num_workers() >= 1);
    }
}
