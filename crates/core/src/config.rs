//! Configuration of the X-RLflow system.
//!
//! Defaults follow the paper's Table 4: learning rate 5e-4, value-loss
//! coefficient 0.5, entropy coefficient 0.01, edge normaliser M = 4096,
//! k = 5 GAT layers, update frequency 10, feedback frequency N = 5, MLP
//! heads [256, 64] and batch size 16.

use xrlflow_env::EnvConfig;
use xrlflow_gnn::EncoderConfig;
use xrlflow_rl::PpoHyperParams;

/// Full configuration of the X-RLflow agent, environment and training loop.
#[derive(Debug, Clone)]
pub struct XrlflowConfig {
    /// PPO hyper-parameters (Table 4).
    pub ppo: PpoHyperParams,
    /// GNN encoder configuration (hidden width and `k` GAT layers).
    pub encoder: EncoderConfig,
    /// Hidden sizes of the policy and value MLP heads (Table 4: `[256, 64]`).
    pub head_dims: Vec<usize>,
    /// Environment configuration (feedback frequency `N`, action-space
    /// padding, step budget).
    pub env: EnvConfig,
    /// Total number of training episodes.
    pub training_episodes: usize,
    /// Number of rollout worker threads used by the parallel collection
    /// engine (`xrlflow-rollout`). `1` keeps collection serial; any value is
    /// transition-for-transition equivalent — workers replay a fixed
    /// per-episode seed schedule against snapshot-built agent replicas, so
    /// the worker count changes wall-clock time only, never a learned
    /// number. Overridable at run time via the `XRLFLOW_WORKERS` environment
    /// variable (see [`XrlflowConfig::effective_num_workers`]).
    pub num_workers: usize,
}

impl XrlflowConfig {
    /// The paper's configuration (Table 4). Training for the published 1000+
    /// episodes on full-size models is a GPU-scale workload; use
    /// [`XrlflowConfig::bench`] or [`XrlflowConfig::smoke_test`] for
    /// CPU-scale experiments with the same structure.
    pub fn paper() -> Self {
        Self {
            ppo: PpoHyperParams::default(),
            encoder: EncoderConfig { hidden_dim: 64, num_gat_layers: 5 },
            head_dims: vec![256, 64],
            env: EnvConfig::default(),
            training_episodes: 1000,
            num_workers: 1,
        }
    }

    /// A CPU-friendly configuration used by the benchmark harness: identical
    /// structure with a narrower encoder and shorter episodes.
    pub fn bench() -> Self {
        Self {
            ppo: PpoHyperParams {
                update_frequency: 4,
                epochs_per_update: 2,
                batch_size: 16,
                ..PpoHyperParams::default()
            },
            encoder: EncoderConfig { hidden_dim: 32, num_gat_layers: 3 },
            head_dims: vec![64, 32],
            env: EnvConfig { max_steps: 25, max_candidates: 32, ..EnvConfig::default() },
            training_episodes: 24,
            num_workers: 4,
        }
    }

    /// A minimal configuration for unit tests (tiny networks, very short
    /// episodes) that still exercises every code path.
    pub fn smoke_test() -> Self {
        Self {
            ppo: PpoHyperParams {
                update_frequency: 2,
                epochs_per_update: 1,
                batch_size: 8,
                ..PpoHyperParams::default()
            },
            encoder: EncoderConfig { hidden_dim: 16, num_gat_layers: 1 },
            head_dims: vec![32, 16],
            env: EnvConfig { max_steps: 4, max_candidates: 8, feedback_frequency: 2, ..EnvConfig::default() },
            training_episodes: 2,
            num_workers: 2,
        }
    }

    /// The rollout worker count actually in effect: the `XRLFLOW_WORKERS`
    /// environment variable when set to a positive integer, otherwise
    /// [`XrlflowConfig::num_workers`], floored at 1.
    pub fn effective_num_workers(&self) -> usize {
        std::env::var("XRLFLOW_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or(self.num_workers)
            .max(1)
    }

    /// Starts a validating builder seeded with the paper configuration.
    ///
    /// The presets ([`XrlflowConfig::paper`], [`XrlflowConfig::bench`],
    /// [`XrlflowConfig::smoke_test`]) stay infallible; the builder is the
    /// boundary-facing path for externally supplied settings, rejecting
    /// degenerate values (zero workers, episodes, batch sizes, …) with a
    /// typed [`ConfigError`] instead of panicking deep inside training.
    ///
    /// # Examples
    ///
    /// ```
    /// use xrlflow_core::XrlflowConfig;
    ///
    /// let cfg = XrlflowConfig::builder().training_episodes(50).num_workers(2).build().unwrap();
    /// assert_eq!(cfg.training_episodes, 50);
    /// assert!(XrlflowConfig::builder().num_workers(0).build().is_err());
    /// ```
    pub fn builder() -> XrlflowConfigBuilder {
        XrlflowConfigBuilder { config: XrlflowConfig::paper() }
    }

    /// Checks the configuration for degenerate values. Presets always pass;
    /// hand-assembled configurations can use this before handing the value
    /// to a trainer or service.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |field: &'static str, value: usize| {
            if value == 0 {
                Err(ConfigError { field, message: "must be positive".to_string() })
            } else {
                Ok(())
            }
        };
        positive("training_episodes", self.training_episodes)?;
        positive("num_workers", self.num_workers)?;
        positive("ppo.batch_size", self.ppo.batch_size)?;
        positive("ppo.update_frequency", self.ppo.update_frequency)?;
        positive("ppo.epochs_per_update", self.ppo.epochs_per_update)?;
        positive("encoder.hidden_dim", self.encoder.hidden_dim)?;
        positive("encoder.num_gat_layers", self.encoder.num_gat_layers)?;
        positive("env.max_steps", self.env.max_steps)?;
        positive("env.max_candidates", self.env.max_candidates)?;
        positive("env.feedback_frequency", self.env.feedback_frequency)?;
        if self.head_dims.is_empty() {
            return Err(ConfigError {
                field: "head_dims",
                message: "must name at least one hidden layer".to_string(),
            });
        }
        for (i, &dim) in self.head_dims.iter().enumerate() {
            if dim == 0 {
                return Err(ConfigError {
                    field: "head_dims",
                    message: format!("layer {i} must be positive"),
                });
            }
        }
        if !(self.ppo.learning_rate.is_finite() && self.ppo.learning_rate > 0.0) {
            return Err(ConfigError {
                field: "ppo.learning_rate",
                message: format!("must be positive and finite, got {}", self.ppo.learning_rate),
            });
        }
        Ok(())
    }
}

/// A rejected [`XrlflowConfigBuilder::build`]: which field failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field (e.g. `"ppo.batch_size"`).
    pub field: &'static str,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {} {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`XrlflowConfig`] — see [`XrlflowConfig::builder`].
#[derive(Debug, Clone)]
pub struct XrlflowConfigBuilder {
    config: XrlflowConfig,
}

impl XrlflowConfigBuilder {
    /// Starts from an existing configuration instead of the paper preset.
    pub fn from_config(config: XrlflowConfig) -> Self {
        Self { config }
    }

    /// Sets the total number of training episodes.
    pub fn training_episodes(mut self, episodes: usize) -> Self {
        self.config.training_episodes = episodes;
        self
    }

    /// Sets the rollout worker count.
    pub fn num_workers(mut self, workers: usize) -> Self {
        self.config.num_workers = workers;
        self
    }

    /// Sets the PPO hyper-parameters wholesale.
    pub fn ppo(mut self, ppo: PpoHyperParams) -> Self {
        self.config.ppo = ppo;
        self
    }

    /// Sets the PPO mini-batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.ppo.batch_size = batch_size;
        self
    }

    /// Sets the PPO learning rate.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.config.ppo.learning_rate = learning_rate;
        self
    }

    /// Sets the GNN encoder configuration.
    pub fn encoder(mut self, encoder: EncoderConfig) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// Sets the MLP head hidden sizes.
    pub fn head_dims(mut self, head_dims: Vec<usize>) -> Self {
        self.config.head_dims = head_dims;
        self
    }

    /// Sets the environment configuration.
    pub fn env(mut self, env: EnvConfig) -> Self {
        self.config.env = env;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first degenerate field.
    pub fn build(self) -> Result<XrlflowConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for XrlflowConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Flat summary of the hyper-parameters, mirroring the paper's
/// Table 4 (used by the benchmark harness to print the table).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParameterTable {
    /// Learning rate of PPO's policy and value networks.
    pub learning_rate: f32,
    /// Value loss coefficient `c1`.
    pub value_loss_coefficient: f32,
    /// Entropy loss coefficient `c2`.
    pub entropy_coefficient: f32,
    /// Edge attribute normalisation constant `M`.
    pub edge_attribute_constant: f32,
    /// Number of GAT layers `k`.
    pub num_gat_layers: usize,
    /// Update frequency (episodes between PPO updates).
    pub update_frequency: usize,
    /// Feedback frequency `N` (steps between latency measurements).
    pub feedback_frequency: usize,
    /// MLP head hidden sizes.
    pub mlp_heads: Vec<usize>,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl From<&XrlflowConfig> for HyperParameterTable {
    fn from(cfg: &XrlflowConfig) -> Self {
        Self {
            learning_rate: cfg.ppo.learning_rate,
            value_loss_coefficient: cfg.ppo.value_loss_coefficient,
            entropy_coefficient: cfg.ppo.entropy_coefficient,
            edge_attribute_constant: xrlflow_gnn::EDGE_NORMALISER,
            num_gat_layers: cfg.encoder.num_gat_layers,
            update_frequency: cfg.ppo.update_frequency,
            feedback_frequency: cfg.env.feedback_frequency,
            mlp_heads: cfg.head_dims.clone(),
            batch_size: cfg.ppo.batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table4() {
        let table = HyperParameterTable::from(&XrlflowConfig::paper());
        assert_eq!(table.learning_rate, 5e-4);
        assert_eq!(table.value_loss_coefficient, 0.5);
        assert_eq!(table.entropy_coefficient, 0.01);
        assert_eq!(table.edge_attribute_constant, 4096.0);
        assert_eq!(table.num_gat_layers, 5);
        assert_eq!(table.update_frequency, 10);
        assert_eq!(table.feedback_frequency, 5);
        assert_eq!(table.mlp_heads, vec![256, 64]);
        assert_eq!(table.batch_size, 16);
    }

    #[test]
    fn smoke_test_config_is_small() {
        let cfg = XrlflowConfig::smoke_test();
        assert!(cfg.encoder.hidden_dim <= 16);
        assert!(cfg.env.max_steps <= 5);
        assert!(cfg.training_episodes <= 4);
    }

    #[test]
    fn builder_accepts_valid_overrides() {
        let cfg = XrlflowConfig::builder()
            .training_episodes(12)
            .num_workers(3)
            .batch_size(4)
            .head_dims(vec![32])
            .build()
            .unwrap();
        assert_eq!(cfg.training_episodes, 12);
        assert_eq!(cfg.num_workers, 3);
        assert_eq!(cfg.ppo.batch_size, 4);
        assert_eq!(cfg.head_dims, vec![32]);
    }

    #[test]
    fn builder_rejects_degenerate_values() {
        let cases: Vec<(XrlflowConfigBuilder, &str)> = vec![
            (XrlflowConfig::builder().training_episodes(0), "training_episodes"),
            (XrlflowConfig::builder().num_workers(0), "num_workers"),
            (XrlflowConfig::builder().batch_size(0), "ppo.batch_size"),
            (XrlflowConfig::builder().head_dims(vec![]), "head_dims"),
            (XrlflowConfig::builder().head_dims(vec![64, 0]), "head_dims"),
            (XrlflowConfig::builder().learning_rate(0.0), "ppo.learning_rate"),
            (XrlflowConfig::builder().learning_rate(f32::NAN), "ppo.learning_rate"),
            (
                XrlflowConfig::builder().encoder(EncoderConfig { hidden_dim: 0, num_gat_layers: 1 }),
                "encoder.hidden_dim",
            ),
            (
                XrlflowConfig::builder().env(EnvConfig { max_steps: 0, ..EnvConfig::default() }),
                "env.max_steps",
            ),
        ];
        for (builder, field) in cases {
            let err = builder.build().expect_err(field);
            assert_eq!(err.field, field);
            assert!(err.to_string().contains(field));
        }
    }

    #[test]
    fn presets_all_validate() {
        for cfg in [XrlflowConfig::paper(), XrlflowConfig::bench(), XrlflowConfig::smoke_test()] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn effective_num_workers_is_at_least_one() {
        // XRLFLOW_WORKERS may or may not be set in the ambient environment
        // (CI sets it for bench jobs); whatever its value, the effective
        // count must be usable as a thread count.
        let mut cfg = XrlflowConfig::smoke_test();
        cfg.num_workers = 0;
        assert!(cfg.effective_num_workers() >= 1);
        cfg.num_workers = 3;
        assert!(cfg.effective_num_workers() >= 1);
    }
}
