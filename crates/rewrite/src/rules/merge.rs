//! Parallel-operator merging rules.
//!
//! These capture TASO's highest-impact substitutions: two convolutions or
//! matrix multiplications that read the same tensor can be executed as one
//! larger kernel over concatenated weights, followed by a split. The weight
//! concatenation is constant-foldable, so the end-to-end latency improves by
//! more than the per-operator cost model predicts — which is exactly the
//! signal X-RLflow can learn to exploit and greedy cost-model search cannot.

use xrlflow_graph::{Graph, GraphError, GraphPatch, NodeId, OpAttributes, OpKind, PatchBuilder, TensorRef};

use crate::matcher::{depends_on, find_siblings_sharing_input, is_constant_derived, is_parameter};
use crate::rule::{RewriteRule, RuleMatch};

/// Merges two `MatMul` nodes that share their left operand into one `MatMul`
/// over column-concatenated weights, followed by a `Split`.
#[derive(Debug, Clone, Default)]
pub struct MergeMatMulSharedLhs;

impl RewriteRule for MergeMatMulSharedLhs {
    fn name(&self) -> &'static str {
        "merge-matmul-shared-lhs"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_siblings_sharing_input(graph, OpKind::MatMul, 0)
            .into_iter()
            .filter(|(_, a, b)| mergeable_matmuls(graph, *a, *b))
            .map(|(_, a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [a_id, b_id] = site.expect_nodes();
        let a = graph.node(a_id)?;
        let b = graph.node(b_id)?;
        let lhs = a.inputs[0];
        let (wa, wb) = (a.inputs[1], b.inputs[1]);
        let mut pb = PatchBuilder::new(graph);

        // Concatenate the two weights along their output (column) axis.
        let w_rank = graph.tensor_shape(wa)?.rank();
        let concat =
            pb.add_node(OpKind::Concat, OpAttributes::with_axis(w_rank - 1), vec![wa.into(), wb.into()])?;
        let merged = pb.add_node(OpKind::MatMul, a.attrs.clone(), vec![lhs.into(), concat.into()])?;
        let out_rank = pb.shape(merged.into())?.rank();
        let split = pb.add_node(OpKind::Split, OpAttributes::split(out_rank - 1, 2), vec![merged.into()])?;
        pb.replace_all_uses(TensorRef::new(a_id), split.out(0))?;
        pb.replace_all_uses(TensorRef::new(b_id), split.out(1))?;
        Ok(pb.finish())
    }
}

/// Merges two `MatMul` nodes that share their right operand (the weight) into
/// one `MatMul` over row-concatenated activations, followed by a `Split`.
#[derive(Debug, Clone, Default)]
pub struct MergeMatMulSharedRhs;

impl RewriteRule for MergeMatMulSharedRhs {
    fn name(&self) -> &'static str {
        "merge-matmul-shared-rhs"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_siblings_sharing_input(graph, OpKind::MatMul, 1)
            .into_iter()
            .filter(|(shared, a, b)| {
                is_parameter(graph, *shared)
                    && same_shape_inputs(graph, *a, *b, 0)
                    && same_attrs(graph, *a, *b)
                    && independent_siblings(graph, *a, *b)
            })
            .map(|(_, a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [a_id, b_id] = site.expect_nodes();
        let a = graph.node(a_id)?;
        let b = graph.node(b_id)?;
        let weight = a.inputs[1];
        let (xa, xb) = (a.inputs[0], b.inputs[0]);
        let mut pb = PatchBuilder::new(graph);

        let x_rank = graph.tensor_shape(xa)?.rank();
        let row_axis = x_rank - 2;
        let concat =
            pb.add_node(OpKind::Concat, OpAttributes::with_axis(row_axis), vec![xa.into(), xb.into()])?;
        let merged = pb.add_node(OpKind::MatMul, a.attrs.clone(), vec![concat.into(), weight.into()])?;
        let out_rank = pb.shape(merged.into())?.rank();
        let split = pb.add_node(OpKind::Split, OpAttributes::split(out_rank - 2, 2), vec![merged.into()])?;
        pb.replace_all_uses(TensorRef::new(a_id), split.out(0))?;
        pb.replace_all_uses(TensorRef::new(b_id), split.out(1))?;
        Ok(pb.finish())
    }
}

/// Merges two convolutions that read the same input tensor and have identical
/// geometry into one convolution over output-channel-concatenated weights,
/// followed by a channel `Split`.
#[derive(Debug, Clone, Default)]
pub struct MergeConvSharedInput;

impl RewriteRule for MergeConvSharedInput {
    fn name(&self) -> &'static str {
        "merge-conv-shared-input"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_siblings_sharing_input(graph, OpKind::Conv2d, 0)
            .into_iter()
            .filter(|(_, a, b)| mergeable_convs(graph, *a, *b))
            .map(|(_, a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [a_id, b_id] = site.expect_nodes();
        let a = graph.node(a_id)?;
        let b = graph.node(b_id)?;
        let input = a.inputs[0];
        let (wa, wb) = (a.inputs[1], b.inputs[1]);
        let mut pb = PatchBuilder::new(graph);

        let concat = pb.add_node(OpKind::Concat, OpAttributes::with_axis(0), vec![wa.into(), wb.into()])?;
        let merged = pb.add_node(OpKind::Conv2d, a.attrs.clone(), vec![input.into(), concat.into()])?;
        let split = pb.add_node(OpKind::Split, OpAttributes::split(1, 2), vec![merged.into()])?;
        pb.replace_all_uses(TensorRef::new(a_id), split.out(0))?;
        pb.replace_all_uses(TensorRef::new(b_id), split.out(1))?;
        Ok(pb.finish())
    }
}

/// Enlarges a 1x1 convolution to a 3x3 convolution by zero-padding its
/// weights, whenever a sibling 3x3 convolution reads the same input. On its
/// own this *increases* compute, but it unlocks
/// [`MergeConvSharedInput`] at the next step — the canonical example of a
/// substitution sequence that requires tolerating a temporary loss, which
/// greedy search cannot do.
#[derive(Debug, Clone, Default)]
pub struct EnlargeConvKernel;

impl RewriteRule for EnlargeConvKernel {
    fn name(&self) -> &'static str {
        "enlarge-conv-kernel"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        let mut out = Vec::new();
        for (_, small, other) in find_siblings_sharing_input(graph, OpKind::Conv2d, 0) {
            for (cand, sibling) in [(small, other), (other, small)] {
                let (Ok(c), Ok(s)) = (graph.node(cand), graph.node(sibling)) else { continue };
                let is_1x1 = c.attrs.kernel == Some([1, 1]);
                let sibling_3x3 = s.attrs.kernel == Some([3, 3]);
                let same_stride = c.attrs.stride == Some([1, 1]) && s.attrs.stride == Some([1, 1]);
                let same_padding = c.attrs.padding == xrlflow_graph::Padding::Same
                    && s.attrs.padding == xrlflow_graph::Padding::Same;
                let ungrouped = c.attrs.groups <= 1 && s.attrs.groups <= 1;
                if is_1x1
                    && sibling_3x3
                    && same_stride
                    && same_padding
                    && ungrouped
                    && is_parameter(graph, c.inputs[1])
                {
                    out.push(RuleMatch::new(vec![cand]));
                }
            }
        }
        out.sort_by_key(|m| m.nodes.clone());
        out.dedup();
        out
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [conv_id] = site.expect_nodes();
        let conv = graph.node(conv_id)?;
        let weight = conv.inputs[1];
        let w_shape = graph.tensor_shape(weight)?;
        let padded_dims = vec![w_shape.dim(0), w_shape.dim(1), 3, 3];
        let mut pb = PatchBuilder::new(graph);
        let pad = pb.add_node(
            OpKind::Pad,
            OpAttributes { target_shape: Some(padded_dims), ..Default::default() },
            vec![weight.into()],
        )?;
        let mut attrs = conv.attrs.clone();
        attrs.kernel = Some([3, 3]);
        let enlarged = pb.add_node(OpKind::Conv2d, attrs, vec![conv.inputs[0].into(), pad.into()])?;
        pb.replace_all_uses(TensorRef::new(conv_id), enlarged)?;
        Ok(pb.finish())
    }
}

/// `true` when neither sibling's output depends on the other — merging two
/// dataflow-dependent nodes would rewire one into a cycle through the merged
/// kernel (the eager pipeline caught this via `validate()`; the patch
/// pipeline must reject the match up front).
fn independent_siblings(graph: &Graph, a: NodeId, b: NodeId) -> bool {
    !depends_on(graph, a, b) && !depends_on(graph, b, a)
}

fn same_attrs(graph: &Graph, a: NodeId, b: NodeId) -> bool {
    match (graph.node(a), graph.node(b)) {
        (Ok(na), Ok(nb)) => na.attrs == nb.attrs,
        _ => false,
    }
}

fn same_shape_inputs(graph: &Graph, a: NodeId, b: NodeId, slot: usize) -> bool {
    let sa = graph.node(a).ok().and_then(|n| n.inputs.get(slot).copied());
    let sb = graph.node(b).ok().and_then(|n| n.inputs.get(slot).copied());
    match (sa, sb) {
        (Some(ra), Some(rb)) => match (graph.tensor_shape(ra), graph.tensor_shape(rb)) {
            (Ok(x), Ok(y)) => x == y,
            _ => false,
        },
        _ => false,
    }
}

fn mergeable_matmuls(graph: &Graph, a: NodeId, b: NodeId) -> bool {
    let (Ok(na), Ok(nb)) = (graph.node(a), graph.node(b)) else { return false };
    na.attrs == nb.attrs
        && na.inputs.len() == 2
        && nb.inputs.len() == 2
        && is_constant_derived(graph, na.inputs[1])
        && is_constant_derived(graph, nb.inputs[1])
        && same_shape_inputs(graph, a, b, 1)
        && graph.tensor_shape(na.inputs[1]).map(|s| s.rank() == 2).unwrap_or(false)
        && independent_siblings(graph, a, b)
}

fn mergeable_convs(graph: &Graph, a: NodeId, b: NodeId) -> bool {
    let (Ok(na), Ok(nb)) = (graph.node(a), graph.node(b)) else { return false };
    na.attrs == nb.attrs
        && na.attrs.groups <= 1
        && is_constant_derived(graph, na.inputs[1])
        && is_constant_derived(graph, nb.inputs[1])
        && same_shape_inputs(graph, a, b, 1)
        && independent_siblings(graph, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::{Padding, TensorShape};

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    fn qkv_graph() -> Graph {
        // Three projections of the same input, as in multi-head attention.
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 16, 64]));
        for _ in 0..3 {
            let w = g.add_weight(shape(&[64, 64]));
            let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
            let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
            g.mark_output(relu.into());
        }
        g
    }

    #[test]
    fn merge_matmul_shared_lhs_qkv() {
        let g = qkv_graph();
        let rule = MergeMatMulSharedLhs;
        let matches = rule.find_matches(&g);
        // Three projections -> three unordered pairs.
        assert_eq!(matches.len(), 3);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        // Two matmuls replaced by one merged matmul (plus the untouched third).
        assert_eq!(out.count_op(OpKind::MatMul), 2);
        assert_eq!(out.count_op(OpKind::Split), 1);
        assert_eq!(out.count_op(OpKind::Concat), 1);
        // The weight concat must be constant-foldable.
        let foldable = out.foldable_nodes();
        let concat_id = out.iter().find(|(_, n)| n.op == OpKind::Concat).unwrap().0;
        assert!(foldable.contains(&concat_id));
    }

    #[test]
    fn merge_conv_shared_input() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 32, 28, 28]));
        let mut outs = Vec::new();
        for _ in 0..2 {
            let w = g.add_weight(shape(&[64, 32, 3, 3]));
            let conv = g
                .add_node(
                    OpKind::Conv2d,
                    OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1),
                    vec![x.into(), w.into()],
                )
                .unwrap();
            outs.push(conv);
            g.mark_output(conv.into());
        }
        let rule = MergeConvSharedInput;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Conv2d), 1);
        assert_eq!(out.count_op(OpKind::Split), 1);
        // The merged conv produces 128 channels before the split.
        let conv = out.iter().find(|(_, n)| n.op == OpKind::Conv2d).unwrap();
        assert_eq!(conv.1.outputs[0].dims(), &[1, 128, 28, 28]);
    }

    #[test]
    fn convs_with_different_geometry_do_not_merge() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 32, 28, 28]));
        let w1 = g.add_weight(shape(&[64, 32, 3, 3]));
        let w2 = g.add_weight(shape(&[64, 32, 1, 1]));
        let c1 = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1),
                vec![x.into(), w1.into()],
            )
            .unwrap();
        let c2 = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([1, 1], [1, 1], Padding::Same, 1),
                vec![x.into(), w2.into()],
            )
            .unwrap();
        g.mark_output(c1.into());
        g.mark_output(c2.into());
        assert!(MergeConvSharedInput.find_matches(&g).is_empty());
        // ... but the 1x1 can be enlarged to 3x3, unlocking the merge next step.
        let enlarge = EnlargeConvKernel;
        let matches = enlarge.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = enlarge.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(MergeConvSharedInput.find_matches(&out).len(), 1);
    }

    #[test]
    fn weight_tied_dependent_matmuls_do_not_merge() {
        // a = MatMul(x, w); b = MatMul(Relu(a), w): the two matmuls share
        // their weight but b depends on a, so merging would rewire a into a
        // cycle through the merged kernel. The match must be rejected.
        let mut g = Graph::new();
        let x = g.add_input(shape(&[8, 64]));
        let w = g.add_weight(shape(&[64, 64]));
        let a = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![a.into()]).unwrap();
        let b = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![relu.into(), w.into()]).unwrap();
        g.mark_output(b.into());
        assert!(MergeMatMulSharedRhs.find_matches(&g).is_empty());
        // And the full pipeline never surfaces an invalid candidate on it.
        let rules = crate::RuleSet::standard();
        for c in rules.generate_candidates(&g, 32) {
            let out = c.materialize(&g).unwrap();
            assert!(out.validate().is_ok(), "invalid candidate from {}", c.rule_name);
        }
    }

    #[test]
    fn merge_matmul_shared_rhs() {
        let mut g = Graph::new();
        let a = g.add_input(shape(&[8, 64]));
        let b = g.add_input(shape(&[8, 64]));
        let w = g.add_weight(shape(&[64, 32]));
        let ma = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), w.into()]).unwrap();
        let mb = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![b.into(), w.into()]).unwrap();
        g.mark_output(ma.into());
        g.mark_output(mb.into());
        let rule = MergeMatMulSharedRhs;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::MatMul), 1);
        assert_eq!(out.count_op(OpKind::Concat), 1);
    }
}
