//! Algebraic and layout simplification rules: identity elimination,
//! transpose/reshape cancellation, split–concat round trips and matrix
//! multiplication re-association.

use xrlflow_graph::{Graph, GraphError, GraphPatch, OpAttributes, OpKind, PatchBuilder, TensorRef};

use crate::matcher::{find_chains, has_single_consumer};
use crate::rule::{RewriteRule, RuleMatch};

/// Removes pass-through operators (`Identity`, inference-time `Dropout`,
/// same-type `Cast`).
#[derive(Debug, Clone, Default)]
pub struct EliminatePassThrough;

impl RewriteRule for EliminatePassThrough {
    fn name(&self) -> &'static str {
        "eliminate-pass-through"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        graph
            .iter()
            .filter(|(_, n)| matches!(n.op, OpKind::Identity | OpKind::Dropout | OpKind::Cast))
            .map(|(id, _)| RuleMatch::new(vec![id]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [id] = site.expect_nodes();
        let input = graph.node(id)?.inputs[0];
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(id), input)?;
        Ok(b.finish())
    }
}

/// Cancels a pair of consecutive `Transpose` operators whose composition is
/// the identity permutation.
#[derive(Debug, Clone, Default)]
pub struct EliminateTransposePair;

impl RewriteRule for EliminateTransposePair {
    fn name(&self) -> &'static str {
        "eliminate-transpose-pair"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_chains(graph, OpKind::Transpose, OpKind::Transpose)
            .into_iter()
            .filter(|(first, second)| {
                let (Ok(a), Ok(b)) = (graph.node(*first), graph.node(*second)) else { return false };
                let (Some(pa), Some(pb)) = (&a.attrs.perm, &b.attrs.perm) else { return false };
                if pa.len() != pb.len() {
                    return false;
                }
                // Composition pb ∘ pa must be the identity.
                (0..pa.len()).all(|i| pa[pb[i]] == i)
            })
            .map(|(a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [first, second] = site.expect_nodes();
        let original = graph.node(first)?.inputs[0];
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(second), original)?;
        Ok(b.finish())
    }
}

/// Collapses two consecutive `Reshape` operators into one (or removes them
/// entirely when the final shape equals the original).
#[derive(Debug, Clone, Default)]
pub struct MergeReshapePair;

impl RewriteRule for MergeReshapePair {
    fn name(&self) -> &'static str {
        "merge-reshape-pair"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_chains(graph, OpKind::Reshape, OpKind::Reshape)
            .into_iter()
            .map(|(a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [first, second] = site.expect_nodes();
        let original = graph.node(first)?.inputs[0];
        let final_shape = graph.tensor_shape(TensorRef::new(second))?.clone();
        let mut b = PatchBuilder::new(graph);
        if graph.tensor_shape(original)? == &final_shape {
            b.replace_all_uses(TensorRef::new(second), original)?;
        } else {
            let merged = b.add_node(
                OpKind::Reshape,
                OpAttributes::reshape(final_shape.dims().to_vec()),
                vec![original.into()],
            )?;
            b.replace_all_uses(TensorRef::new(second), merged)?;
        }
        Ok(b.finish())
    }
}

/// Cancels `Concat(Split(x))` when the concat reads every split output in
/// order along the same axis.
#[derive(Debug, Clone, Default)]
pub struct EliminateSplitConcat;

impl RewriteRule for EliminateSplitConcat {
    fn name(&self) -> &'static str {
        "eliminate-split-concat"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        let mut out = Vec::new();
        for (concat_id, concat) in graph.iter() {
            if concat.op != OpKind::Concat {
                continue;
            }
            let Some(first) = concat.inputs.first() else { continue };
            let split_id = first.node;
            let Ok(split) = graph.node(split_id) else { continue };
            if split.op != OpKind::Split
                || split.attrs.axis != concat.attrs.axis
                || concat.inputs.len() != split.outputs.len()
            {
                continue;
            }
            let in_order = concat.inputs.iter().enumerate().all(|(i, r)| r.node == split_id && r.port == i);
            if in_order {
                out.push(RuleMatch::new(vec![split_id, concat_id]));
            }
        }
        out
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [split_id, concat_id] = site.expect_nodes();
        let original = graph.node(split_id)?.inputs[0];
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(concat_id), original)?;
        Ok(b.finish())
    }
}

/// Cancels `Unsqueeze(Squeeze(x))` and `Squeeze(Unsqueeze(x))` pairs that
/// restore the original shape.
#[derive(Debug, Clone, Default)]
pub struct EliminateSqueezePair;

impl RewriteRule for EliminateSqueezePair {
    fn name(&self) -> &'static str {
        "eliminate-squeeze-pair"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        let mut out: Vec<RuleMatch> = find_chains(graph, OpKind::Squeeze, OpKind::Unsqueeze)
            .into_iter()
            .chain(find_chains(graph, OpKind::Unsqueeze, OpKind::Squeeze))
            .filter(|(first, second)| {
                let original = graph.node(*first).ok().map(|n| n.inputs[0]);
                match original {
                    Some(orig) => {
                        graph.tensor_shape(orig).ok() == graph.tensor_shape(TensorRef::new(*second)).ok()
                    }
                    None => false,
                }
            })
            .map(|(a, b)| RuleMatch::new(vec![a, b]))
            .collect();
        out.dedup();
        out
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [first, second] = site.expect_nodes();
        let original = graph.node(first)?.inputs[0];
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(second), original)?;
        Ok(b.finish())
    }
}

/// Removes the second of two consecutive `BatchNorm` operators (their affine
/// transforms compose into one).
#[derive(Debug, Clone, Default)]
pub struct FuseDoubleBatchNorm;

impl RewriteRule for FuseDoubleBatchNorm {
    fn name(&self) -> &'static str {
        "fuse-double-batchnorm"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_chains(graph, OpKind::BatchNorm, OpKind::BatchNorm)
            .into_iter()
            .map(|(a, b)| RuleMatch::new(vec![a, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [first, second] = site.expect_nodes();
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(second), TensorRef::new(first))?;
        Ok(b.finish())
    }
}

/// Re-associates a matrix-multiplication chain.
///
/// `RightToLeft` turns `(A·B)·C` into `A·(B·C)`; `LeftToRight` is the
/// inverse. Re-association changes the floating-point work and, when `B` and
/// `C` are both weights, creates a constant-foldable product — another
/// multi-step opportunity only visible to a planner.
#[derive(Debug, Clone)]
pub struct ReassociateMatMul {
    name: &'static str,
    right_to_left: bool,
}

impl ReassociateMatMul {
    /// `(A·B)·C -> A·(B·C)`.
    pub fn right_to_left() -> Self {
        Self { name: "matmul-reassociate-right", right_to_left: true }
    }

    /// `A·(B·C) -> (A·B)·C`.
    pub fn left_to_right() -> Self {
        Self { name: "matmul-reassociate-left", right_to_left: false }
    }
}

impl RewriteRule for ReassociateMatMul {
    fn name(&self) -> &'static str {
        self.name
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        let inner_slot = if self.right_to_left { 0 } else { 1 };
        let mut out = Vec::new();
        for (outer_id, outer) in graph.iter() {
            if outer.op != OpKind::MatMul || outer.attrs.fused_activation.is_some() {
                continue;
            }
            let Some(inner_ref) = outer.inputs.get(inner_slot) else { continue };
            let Ok(inner) = graph.node(inner_ref.node) else { continue };
            if inner.op != OpKind::MatMul
                || inner.attrs.fused_activation.is_some()
                || !has_single_consumer(graph, inner_ref.node)
            {
                continue;
            }
            // Only re-associate when the two "free" operands are rank-2, so
            // the re-associated product is well-formed.
            let ok_ranks = if self.right_to_left {
                // (A·B)·C: B and C must be rank-2.
                rank_of(graph, inner.inputs[1]) == Some(2) && rank_of(graph, outer.inputs[1]) == Some(2)
            } else {
                // A·(B·C): A and B must be rank-2.
                rank_of(graph, outer.inputs[0]) == Some(2) && rank_of(graph, inner.inputs[0]) == Some(2)
            };
            if ok_ranks {
                out.push(RuleMatch::new(vec![inner_ref.node, outer_id]));
            }
        }
        out
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [inner_id, outer_id] = site.expect_nodes();
        let inner = graph.node(inner_id)?;
        let outer = graph.node(outer_id)?;
        let mut pb = PatchBuilder::new(graph);
        let new_outer = if self.right_to_left {
            // (A·B)·C -> A·(B·C)
            let a = inner.inputs[0];
            let b = inner.inputs[1];
            let c = outer.inputs[1];
            let bc = pb.add_node(OpKind::MatMul, OpAttributes::default(), vec![b.into(), c.into()])?;
            pb.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), bc.into()])?
        } else {
            // A·(B·C) -> (A·B)·C
            let a = outer.inputs[0];
            let b = inner.inputs[0];
            let c = inner.inputs[1];
            let ab = pb.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), b.into()])?;
            pb.add_node(OpKind::MatMul, OpAttributes::default(), vec![ab.into(), c.into()])?
        };
        pb.replace_all_uses(TensorRef::new(outer_id), new_outer)?;
        Ok(pb.finish())
    }
}

fn rank_of(graph: &Graph, r: TensorRef) -> Option<usize> {
    graph.tensor_shape(r).ok().map(|s| s.rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::TensorShape;

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    #[test]
    fn eliminate_identity_chain() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let id = g.add_node(OpKind::Identity, OpAttributes::default(), vec![x.into()]).unwrap();
        let drop = g.add_node(OpKind::Dropout, OpAttributes::default(), vec![id.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![drop.into()]).unwrap();
        g.mark_output(relu.into());

        let rule = EliminatePassThrough;
        assert_eq!(rule.find_matches(&g).len(), 2);
        let out = rule.apply(&g, &rule.find_matches(&g)[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.num_nodes(), 3);
    }

    #[test]
    fn transpose_pair_cancels_only_when_inverse() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[2, 3, 4]));
        let t1 =
            g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![1, 2, 0]), vec![x.into()]).unwrap();
        let t2 =
            g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![2, 0, 1]), vec![t1.into()]).unwrap();
        g.mark_output(t2.into());
        let rule = EliminateTransposePair;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Transpose), 0);

        // A non-inverse pair must not match.
        let mut g2 = Graph::new();
        let x = g2.add_input(shape(&[2, 3, 4]));
        let t1 =
            g2.add_node(OpKind::Transpose, OpAttributes::transpose(vec![1, 2, 0]), vec![x.into()]).unwrap();
        let t2 =
            g2.add_node(OpKind::Transpose, OpAttributes::transpose(vec![1, 2, 0]), vec![t1.into()]).unwrap();
        g2.mark_output(t2.into());
        assert!(rule.find_matches(&g2).is_empty());
    }

    #[test]
    fn reshape_pair_merges() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[2, 3, 4]));
        let r1 = g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![6, 4]), vec![x.into()]).unwrap();
        let r2 = g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![24]), vec![r1.into()]).unwrap();
        g.mark_output(r2.into());
        let rule = MergeReshapePair;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Reshape), 1);
    }

    #[test]
    fn split_concat_round_trip_eliminated() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8, 4, 4]));
        let split = g.add_node(OpKind::Split, OpAttributes::split(1, 2), vec![x.into()]).unwrap();
        let cat = g
            .add_node(
                OpKind::Concat,
                OpAttributes::with_axis(1),
                vec![TensorRef::with_port(split, 0), TensorRef::with_port(split, 1)],
            )
            .unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![cat.into()]).unwrap();
        g.mark_output(relu.into());
        let rule = EliminateSplitConcat;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Split), 0);
        assert_eq!(out.count_op(OpKind::Concat), 0);
    }

    #[test]
    fn reassociation_round_trip() {
        let mut g = Graph::new();
        let a = g.add_input(shape(&[8, 16]));
        let b = g.add_weight(shape(&[16, 32]));
        let c = g.add_weight(shape(&[32, 4]));
        let ab = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), b.into()]).unwrap();
        let abc = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![ab.into(), c.into()]).unwrap();
        g.mark_output(abc.into());

        let right = ReassociateMatMul::right_to_left();
        let matches = right.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = right.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        // B·C is now weight-only, hence constant-foldable.
        let foldable = out.foldable_nodes();
        let inner = out
            .iter()
            .find(|(_, n)| {
                n.op == OpKind::MatMul && n.inputs.iter().all(|r| out.node(r.node).unwrap().op.is_source())
            })
            .unwrap();
        assert!(foldable.contains(&inner.0));

        // And the inverse direction applies to the result.
        let left = ReassociateMatMul::left_to_right();
        assert_eq!(left.find_matches(&out).len(), 1);
    }

    #[test]
    fn squeeze_pair_eliminated() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[2, 1, 4]));
        let s = g.add_node(OpKind::Squeeze, OpAttributes::with_axis(1), vec![x.into()]).unwrap();
        let u = g.add_node(OpKind::Unsqueeze, OpAttributes::with_axis(1), vec![s.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![u.into()]).unwrap();
        g.mark_output(relu.into());
        let rule = EliminateSqueezePair;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Squeeze), 0);
        assert_eq!(out.count_op(OpKind::Unsqueeze), 0);
    }

    #[test]
    fn double_batchnorm_fused() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8, 4, 4]));
        let b1 = g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![x.into()]).unwrap();
        let b2 = g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![b1.into()]).unwrap();
        g.mark_output(b2.into());
        let rule = FuseDoubleBatchNorm;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::BatchNorm), 1);
    }
}
