//! Operator-fusion rewrite rules.
//!
//! These mirror the most profitable family of TASO's generated rules:
//! absorbing an element-wise epilogue (activation, bias add, batch
//! normalisation) into the producing convolution or matrix multiplication,
//! which removes a kernel launch and a round trip through memory.

use xrlflow_graph::{FusedActivation, Graph, GraphError, GraphPatch, OpKind, PatchBuilder, TensorRef};

use crate::matcher::{find_chains, has_single_consumer, is_parameter};
use crate::rule::{RewriteRule, RuleMatch};

fn activation_of(op: OpKind) -> Option<FusedActivation> {
    match op {
        OpKind::Relu => Some(FusedActivation::Relu),
        OpKind::Sigmoid => Some(FusedActivation::Sigmoid),
        OpKind::Tanh => Some(FusedActivation::Tanh),
        OpKind::Gelu => Some(FusedActivation::Gelu),
        _ => None,
    }
}

/// Fuses `producer -> activation` into a single operator with a fused
/// epilogue, where `producer` is a convolution or matrix multiplication.
#[derive(Debug, Clone)]
pub struct FuseActivation {
    name: &'static str,
    producer: OpKind,
    activation: OpKind,
}

impl FuseActivation {
    /// Creates a fusion rule for the given producer/activation pair.
    ///
    /// # Panics
    ///
    /// Panics if `activation` is not a fusible activation.
    pub fn new(name: &'static str, producer: OpKind, activation: OpKind) -> Self {
        assert!(activation_of(activation).is_some(), "{activation} is not fusible");
        Self { name, producer, activation }
    }
}

impl RewriteRule for FuseActivation {
    fn name(&self) -> &'static str {
        self.name
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_chains(graph, self.producer, self.activation)
            .into_iter()
            .filter(|(p, _)| graph.node(*p).map(|n| n.attrs.fused_activation.is_none()).unwrap_or(false))
            .map(|(p, a)| RuleMatch::new(vec![p, a]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [producer_id, act_id] = site.expect_nodes();
        let producer = graph.node(producer_id)?;
        let act = activation_of(self.activation).expect("checked in constructor");
        let mut b = PatchBuilder::new(graph);
        let fused = b.add_node(
            producer.op,
            producer.attrs.clone().with_fused_activation(act),
            producer.inputs.iter().map(|&r| r.into()).collect(),
        )?;
        b.replace_all_uses(TensorRef::new(act_id), fused)?;
        Ok(b.finish())
    }
}

/// Folds a `BatchNorm` into the preceding convolution (the normalisation's
/// affine transform is absorbed into the convolution weights).
#[derive(Debug, Clone, Default)]
pub struct FuseConvBatchNorm;

impl RewriteRule for FuseConvBatchNorm {
    fn name(&self) -> &'static str {
        "fuse-conv-batchnorm"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        find_chains(graph, OpKind::Conv2d, OpKind::BatchNorm)
            .into_iter()
            .map(|(c, b)| RuleMatch::new(vec![c, b]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [conv_id, bn_id] = site.expect_nodes();
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(bn_id), TensorRef::new(conv_id))?;
        Ok(b.finish())
    }
}

/// Folds a bias `Add` (one operand produced by a convolution or matrix
/// multiplication, the other a weight/constant) into the producer's epilogue.
#[derive(Debug, Clone)]
pub struct FuseBiasAdd {
    name: &'static str,
    producer: OpKind,
}

impl FuseBiasAdd {
    /// Creates a bias-fusion rule for the given producer kind.
    pub fn new(name: &'static str, producer: OpKind) -> Self {
        Self { name, producer }
    }
}

impl RewriteRule for FuseBiasAdd {
    fn name(&self) -> &'static str {
        self.name
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        let mut out = Vec::new();
        for (id, node) in graph.iter() {
            if node.op != OpKind::Add || node.inputs.len() != 2 {
                continue;
            }
            for (producer_slot, bias_slot) in [(0, 1), (1, 0)] {
                let producer_ref = node.inputs[producer_slot];
                let bias_ref = node.inputs[bias_slot];
                let Ok(producer) = graph.node(producer_ref.node) else { continue };
                if producer.op != self.producer
                    || !is_parameter(graph, bias_ref)
                    || !has_single_consumer(graph, producer_ref.node)
                {
                    continue;
                }
                // The fused result must keep the producer's output shape
                // (i.e. the bias must broadcast, not expand).
                let add_shape = graph.tensor_shape(TensorRef::new(id));
                let prod_shape = graph.tensor_shape(producer_ref);
                if let (Ok(a), Ok(p)) = (add_shape, prod_shape) {
                    if a == p {
                        out.push(RuleMatch::new(vec![producer_ref.node, id]));
                        break;
                    }
                }
            }
        }
        out
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [producer_id, add_id] = site.expect_nodes();
        let mut b = PatchBuilder::new(graph);
        b.replace_all_uses(TensorRef::new(add_id), TensorRef::new(producer_id))?;
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::{OpAttributes, Padding, TensorShape};

    fn conv_relu_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight(TensorShape::new(vec![16, 8, 3, 3]));
        let conv = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1),
                vec![x.into(), w.into()],
            )
            .unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![conv.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn fuse_conv_relu_removes_a_node() {
        let g = conv_relu_graph();
        let rule = FuseActivation::new("fuse-conv-relu", OpKind::Conv2d, OpKind::Relu);
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Relu), 0);
        let fused = out.iter().find(|(_, n)| n.op == OpKind::Conv2d).expect("conv must survive");
        assert_eq!(fused.1.attrs.fused_activation, Some(FusedActivation::Relu));
        // Already-fused convolutions must not match again.
        assert!(rule.find_matches(&out).is_empty());
    }

    #[test]
    fn fuse_bias_add_for_matmul() {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![4, 32]));
        let w = g.add_weight(TensorShape::new(vec![32, 16]));
        let b = g.add_weight(TensorShape::new(vec![16]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![mm.into(), b.into()]).unwrap();
        g.mark_output(add.into());

        let rule = FuseBiasAdd::new("fuse-matmul-bias", OpKind::MatMul);
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Add), 0);
        assert_eq!(out.num_nodes(), 3);
    }

    #[test]
    fn bias_add_between_two_activations_does_not_match() {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![4, 16]));
        let y = g.add_input(TensorShape::new(vec![4, 16]));
        let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![x.into(), y.into()]).unwrap();
        g.mark_output(add.into());
        let rule = FuseBiasAdd::new("fuse-matmul-bias", OpKind::MatMul);
        assert!(rule.find_matches(&g).is_empty());
    }

    #[test]
    fn fuse_conv_batchnorm() {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 8, 16, 16]));
        let w = g.add_weight(TensorShape::new(vec![16, 8, 1, 1]));
        let conv = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([1, 1], [1, 1], Padding::Same, 1),
                vec![x.into(), w.into()],
            )
            .unwrap();
        let scale = g.add_weight(TensorShape::new(vec![16, 1, 1]));
        let bn =
            g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![conv.into(), scale.into()]).unwrap();
        g.mark_output(bn.into());

        let rule = FuseConvBatchNorm;
        let matches = rule.find_matches(&g);
        assert_eq!(matches.len(), 1);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::BatchNorm), 0);
        assert_eq!(out.count_op(OpKind::Conv2d), 1);
    }
}
