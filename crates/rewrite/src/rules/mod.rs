//! The rewrite-rule library.
//!
//! TASO generates ~150 rules by enumerating operator combinations; this
//! reproduction implements the rule *families* those generated rules fall
//! into (operator fusion, parallel-operator merging, algebraic and layout
//! simplification, kernel enlargement and re-association), each hand-written
//! and individually tested. See `DESIGN.md` for the substitution rationale.

mod algebraic;
mod fusion;
mod merge;

pub use algebraic::{
    EliminatePassThrough, EliminateSplitConcat, EliminateSqueezePair, EliminateTransposePair,
    FuseDoubleBatchNorm, MergeReshapePair, ReassociateMatMul,
};
pub use fusion::{FuseActivation, FuseBiasAdd, FuseConvBatchNorm};
pub use merge::{EnlargeConvKernel, MergeConvSharedInput, MergeMatMulSharedLhs, MergeMatMulSharedRhs};

use crate::rule::RewriteRule;
use xrlflow_graph::OpKind;

/// The standard rule library used by every optimiser in this repository
/// (X-RLflow's environment, the TASO baseline and — restricted to
/// single-output rules — the Tensat baseline).
pub fn standard_rules() -> Vec<Box<dyn RewriteRule>> {
    vec![
        // Fusion family.
        Box::new(FuseActivation::new("fuse-conv-relu", OpKind::Conv2d, OpKind::Relu)),
        Box::new(FuseActivation::new("fuse-conv-sigmoid", OpKind::Conv2d, OpKind::Sigmoid)),
        Box::new(FuseActivation::new("fuse-matmul-relu", OpKind::MatMul, OpKind::Relu)),
        Box::new(FuseActivation::new("fuse-matmul-gelu", OpKind::MatMul, OpKind::Gelu)),
        Box::new(FuseActivation::new("fuse-matmul-tanh", OpKind::MatMul, OpKind::Tanh)),
        Box::new(FuseActivation::new("fuse-matmul-sigmoid", OpKind::MatMul, OpKind::Sigmoid)),
        Box::new(FuseConvBatchNorm),
        Box::new(FuseBiasAdd::new("fuse-matmul-bias", OpKind::MatMul)),
        Box::new(FuseBiasAdd::new("fuse-conv-bias", OpKind::Conv2d)),
        Box::new(FuseDoubleBatchNorm),
        // Parallel-operator merging family.
        Box::new(MergeMatMulSharedLhs),
        Box::new(MergeMatMulSharedRhs),
        Box::new(MergeConvSharedInput),
        Box::new(EnlargeConvKernel),
        // Algebraic / layout family.
        Box::new(EliminatePassThrough),
        Box::new(EliminateTransposePair),
        Box::new(MergeReshapePair),
        Box::new(EliminateSplitConcat),
        Box::new(EliminateSqueezePair),
        Box::new(ReassociateMatMul::right_to_left()),
        Box::new(ReassociateMatMul::left_to_right()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rule_names_are_unique() {
        let rules = standard_rules();
        let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(before >= 20, "expected at least 20 rules, got {before}");
    }
}
