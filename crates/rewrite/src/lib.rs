//! # xrlflow-rewrite
//!
//! Graph rewrite rules, subgraph matching and candidate generation — the
//! TASO-style substitution engine that X-RLflow's environment (and the
//! baseline optimisers) are built on.
//!
//! At each optimisation step, [`RuleSet::generate_candidates`] pattern
//! matches every rule against the current graph and returns one transformed
//! candidate graph per application site; the search strategy (RL agent,
//! greedy search, backtracking search) then picks one.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_rewrite::RuleSet;
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let rules = RuleSet::standard();
//! let candidates = rules.generate_candidates(&graph, 64);
//! println!("{} candidate transformations available", candidates.len());
//! ```

#![warn(missing_docs)]

mod matcher;
mod rule;
pub mod rules;

pub use matcher::{
    consumers_of, find_chains, find_siblings_sharing_input, has_single_consumer, is_parameter,
};
pub use rule::{Candidate, RewriteRule, RuleId, RuleMatch, RuleSet};
