//! Small structural-matching helpers shared by the rewrite rules.
//!
//! TASO's generated rules are source/target graph pairs applied through a
//! generic subgraph matcher; this reproduction expresses each rule family
//! directly in Rust and uses these helpers to locate the structural motifs
//! (operator chains, sibling operators sharing an input, ...) the rules
//! rewrite.

use xrlflow_graph::{Graph, NodeId, OpKind, TensorRef};

/// Returns the consumers of *any output port* of a node.
pub fn consumers_of(graph: &Graph, id: NodeId) -> Vec<NodeId> {
    graph.consumers(id).into_iter().map(|(c, _)| c).collect()
}

/// Returns `true` when the node's outputs are consumed by exactly one node
/// and the node is not a graph output (so it can be safely absorbed into a
/// fused operator).
pub fn has_single_consumer(graph: &Graph, id: NodeId) -> bool {
    let mut consumers = consumers_of(graph, id);
    consumers.sort_unstable();
    consumers.dedup();
    consumers.len() == 1 && !graph.outputs().iter().any(|r| r.node == id)
}

/// Finds all two-node chains `first -> second` where `second` is the sole
/// consumer of `first`. Returns `(first, second)` pairs.
pub fn find_chains(graph: &Graph, first: OpKind, second: OpKind) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for (id, node) in graph.iter() {
        if node.op != second {
            continue;
        }
        for input in &node.inputs {
            let Ok(producer) = graph.node(input.node) else { continue };
            if producer.op == first && has_single_consumer(graph, input.node) {
                out.push((input.node, id));
            }
        }
    }
    out
}

/// Finds unordered pairs of distinct nodes of kind `op` that consume the same
/// tensor as their `slot`-th input. Returns `(shared_input, left, right)`.
pub fn find_siblings_sharing_input(
    graph: &Graph,
    op: OpKind,
    slot: usize,
) -> Vec<(TensorRef, NodeId, NodeId)> {
    let mut by_input: std::collections::HashMap<TensorRef, Vec<NodeId>> = Default::default();
    for (id, node) in graph.iter() {
        if node.op == op {
            if let Some(r) = node.inputs.get(slot) {
                by_input.entry(*r).or_default().push(id);
            }
        }
    }
    let mut out = Vec::new();
    for (input, mut ids) in by_input {
        ids.sort_unstable();
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                out.push((input, ids[i], ids[j]));
            }
        }
    }
    out.sort_by_key(|(_, a, b)| (*a, *b));
    out
}

/// Returns `true` when `node`'s output depends, transitively through
/// dataflow inputs, on `ancestor` (or is `ancestor` itself).
pub fn depends_on(graph: &Graph, node: NodeId, ancestor: NodeId) -> bool {
    let mut visited: std::collections::HashSet<NodeId> = Default::default();
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        if id == ancestor {
            return true;
        }
        if !visited.insert(id) {
            continue;
        }
        if let Ok(n) = graph.node(id) {
            stack.extend(n.inputs.iter().map(|r| r.node));
        }
    }
    false
}

/// Returns `true` when the given tensor is produced by a weight or constant
/// node (i.e. it is known before inference).
pub fn is_parameter(graph: &Graph, r: TensorRef) -> bool {
    graph.node(r.node).map(|n| matches!(n.op, OpKind::Weight | OpKind::Constant)).unwrap_or(false)
}

/// Returns `true` when the given tensor does not depend on any graph input —
/// either a weight/constant itself or an operator over weights/constants
/// (e.g. a padded or concatenated weight produced by an earlier rewrite).
pub fn is_constant_derived(graph: &Graph, r: TensorRef) -> bool {
    is_parameter(graph, r) || graph.foldable_nodes().contains(&r.node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::{OpAttributes, TensorShape};

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    #[test]
    fn chains_require_single_consumer() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let w = g.add_weight(shape(&[8, 8]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        assert_eq!(find_chains(&g, OpKind::MatMul, OpKind::Relu), vec![(mm, relu)]);

        // Add a second consumer of the matmul: the chain is no longer fusible.
        let tanh = g.add_node(OpKind::Tanh, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(tanh.into());
        assert!(find_chains(&g, OpKind::MatMul, OpKind::Relu).is_empty());
    }

    #[test]
    fn siblings_sharing_input_found() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let w1 = g.add_weight(shape(&[8, 4]));
        let w2 = g.add_weight(shape(&[8, 4]));
        let a = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w1.into()]).unwrap();
        let b = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w2.into()]).unwrap();
        g.mark_output(a.into());
        g.mark_output(b.into());
        let sib = find_siblings_sharing_input(&g, OpKind::MatMul, 0);
        assert_eq!(sib.len(), 1);
        assert_eq!(sib[0].0, TensorRef::from(x));
    }

    #[test]
    fn parameter_detection() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let w = g.add_weight(shape(&[8]));
        let c = g.add_constant(shape(&[8]));
        assert!(!is_parameter(&g, x.into()));
        assert!(is_parameter(&g, w.into()));
        assert!(is_parameter(&g, c.into()));
    }

    #[test]
    fn graph_output_is_not_single_consumer() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![x.into()]).unwrap();
        let tanh = g.add_node(OpKind::Tanh, OpAttributes::default(), vec![relu.into()]).unwrap();
        g.mark_output(relu.into());
        g.mark_output(tanh.into());
        // relu feeds tanh but is also a graph output, so it cannot be fused away.
        assert!(!has_single_consumer(&g, relu));
    }
}
