//! The rewrite-rule abstraction, candidate generation and rule sets.
//!
//! At every optimisation step the environment pattern-matches every active
//! rule against the current graph and produces one *candidate* (a fully
//! transformed copy of the graph) per match, exactly as TASO's substitution
//! engine does. X-RLflow's agent (or TASO's greedy search) then selects one
//! candidate to become the next graph.

use std::collections::HashSet;

use xrlflow_graph::{Graph, GraphError, NodeId};

/// Identifier of a rewrite rule within a [`RuleSet`] (stable across runs;
/// used for the Figure 5 rule-application heatmap).
pub type RuleId = usize;

/// A single located application site of a rule in a specific graph.
///
/// The meaning of `nodes` is rule-specific (e.g. "the Conv2d and the Relu to
/// fuse" or "the two MatMuls to merge").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMatch {
    /// Nodes participating in the match, in rule-defined order.
    pub nodes: Vec<NodeId>,
}

impl RuleMatch {
    /// Creates a match over the given nodes.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Self { nodes }
    }

    /// Destructures the match into exactly `N` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the match does not contain exactly `N` nodes; this indicates
    /// a rule applying a match it did not produce.
    pub fn expect_nodes<const N: usize>(&self) -> [NodeId; N] {
        self.nodes
            .as_slice()
            .try_into()
            .unwrap_or_else(|_| panic!("rule match has {} nodes, expected {N}", self.nodes.len()))
    }
}

/// A graph-rewrite rule: locate every application site in a graph, and apply
/// the rewrite at one site producing a transformed copy.
pub trait RewriteRule: Send + Sync {
    /// Short, stable, human-readable rule name.
    fn name(&self) -> &'static str;

    /// Finds every application site of this rule in the graph.
    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch>;

    /// Applies the rule at the given site, returning the transformed graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the match is stale or the transformation would
    /// produce an invalid graph; callers treat this as "no candidate".
    fn apply(&self, graph: &Graph, site: &RuleMatch) -> Result<Graph, GraphError>;
}

/// A transformed candidate graph produced by applying one rule at one site.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The transformed graph.
    pub graph: Graph,
    /// Which rule produced it.
    pub rule_id: RuleId,
    /// The rule's name.
    pub rule_name: &'static str,
    /// Canonical hash of the transformed graph (used for deduplication).
    pub hash: u64,
}

/// A collection of rewrite rules applied together.
pub struct RuleSet {
    rules: Vec<Box<dyn RewriteRule>>,
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleSet").field("rules", &self.rule_names()).finish()
    }
}

impl RuleSet {
    /// Creates a rule set from explicit rules.
    pub fn new(rules: Vec<Box<dyn RewriteRule>>) -> Self {
        Self { rules }
    }

    /// The standard rule library (fusion, parallel-operator merging and
    /// algebraic simplification families; see `crate::rules`).
    pub fn standard() -> Self {
        Self::new(crate::rules::standard_rules())
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names indexed by [`RuleId`].
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Returns the name of a rule.
    pub fn rule_name(&self, id: RuleId) -> &'static str {
        self.rules[id].name()
    }

    /// Total number of application sites across all rules (the paper's
    /// Table 3 "complexity" metric is the average of this over an episode).
    pub fn count_matches(&self, graph: &Graph) -> usize {
        self.rules.iter().map(|r| r.find_matches(graph).len()).sum()
    }

    /// Generates every valid, deduplicated candidate obtainable by applying
    /// one rule at one site of `graph`.
    ///
    /// Candidates identical to the input graph are dropped, as are
    /// candidates that fail validation. `max_candidates` bounds the output
    /// (the paper pads the action space to a fixed constant anyway).
    pub fn generate_candidates(&self, graph: &Graph, max_candidates: usize) -> Vec<Candidate> {
        let original_hash = graph.canonical_hash();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut out = Vec::new();
        'outer: for (rule_id, rule) in self.rules.iter().enumerate() {
            for site in rule.find_matches(graph) {
                let Ok(mut candidate) = rule.apply(graph, &site) else { continue };
                candidate.eliminate_dead_nodes();
                if candidate.validate().is_err() {
                    continue;
                }
                let hash = candidate.canonical_hash();
                if hash == original_hash || !seen.insert(hash) {
                    continue;
                }
                out.push(Candidate { graph: candidate, rule_id, rule_name: rule.name(), hash });
                if out.len() >= max_candidates {
                    break 'outer;
                }
            }
        }
        out
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    #[test]
    fn standard_ruleset_is_nonempty() {
        let rs = RuleSet::standard();
        assert!(rs.len() >= 12, "expected a substantive rule library, got {}", rs.len());
        assert!(!rs.is_empty());
        let names = rs.rule_names();
        assert_eq!(names.len(), rs.len());
        // Names must be unique.
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn candidates_are_valid_and_deduplicated() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let candidates = rs.generate_candidates(&g, 64);
        assert!(!candidates.is_empty(), "expected rewrite opportunities in SqueezeNet");
        let mut hashes = HashSet::new();
        for c in &candidates {
            assert!(c.graph.validate().is_ok(), "candidate from {} is invalid", c.rule_name);
            assert!(hashes.insert(c.hash), "duplicate candidate from {}", c.rule_name);
            assert_ne!(c.hash, g.canonical_hash());
        }
    }

    #[test]
    fn candidate_limit_respected() {
        let g = build_model(ModelKind::InceptionV3, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let candidates = rs.generate_candidates(&g, 5);
        assert!(candidates.len() <= 5);
    }
}
