//! The rewrite-rule abstraction, patch-based candidate generation and rule
//! sets.
//!
//! At every optimisation step the environment pattern-matches every active
//! rule against the current graph and produces one *candidate* per match —
//! but unlike TASO's substitution engine (and the first version of this
//! crate), a candidate is a [`GraphPatch`] *delta*, not a transformed copy of
//! the whole graph. Generating the full candidate set is the hot path of the
//! RL loop (it runs at every environment step), so it must not allocate a
//! graph per candidate; the few candidates a search strategy actually
//! inspects are materialised lazily and memoised via [`Candidate::graph`].

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use xrlflow_graph::{Graph, GraphError, GraphPatch, NodeId};

/// Identifier of a rewrite rule within a [`RuleSet`] (stable across runs;
/// used for the Figure 5 rule-application heatmap).
pub type RuleId = usize;

/// A single located application site of a rule in a specific graph.
///
/// The meaning of `nodes` is rule-specific (e.g. "the Conv2d and the Relu to
/// fuse" or "the two MatMuls to merge").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMatch {
    /// Nodes participating in the match, in rule-defined order.
    pub nodes: Vec<NodeId>,
}

impl RuleMatch {
    /// Creates a match over the given nodes.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Self { nodes }
    }

    /// Destructures the match into exactly `N` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the match does not contain exactly `N` nodes; this indicates
    /// a rule applying a match it did not produce.
    pub fn expect_nodes<const N: usize>(&self) -> [NodeId; N] {
        self.nodes
            .as_slice()
            .try_into()
            .unwrap_or_else(|_| panic!("rule match has {} nodes, expected {N}", self.nodes.len()))
    }
}

/// A graph-rewrite rule: locate every application site in a graph, and
/// describe the rewrite at one site as a [`GraphPatch`] delta.
pub trait RewriteRule: Send + Sync {
    /// Short, stable, human-readable rule name.
    fn name(&self) -> &'static str;

    /// Finds every application site of this rule in the graph.
    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch>;

    /// Builds the patch describing this rule's rewrite at the given site.
    ///
    /// # Errors
    ///
    /// Returns an error if the match is stale or the transformation would
    /// produce a shape-inconsistent graph; callers treat this as "no
    /// candidate".
    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError>;

    /// Eagerly applies the rule at the given site, returning the transformed
    /// graph (including dead-node elimination). This is the reference
    /// semantics of [`RewriteRule::build_patch`]; the candidate pipeline uses
    /// the patch directly and materialises lazily.
    ///
    /// # Errors
    ///
    /// Same as [`RewriteRule::build_patch`].
    fn apply(&self, graph: &Graph, site: &RuleMatch) -> Result<Graph, GraphError> {
        graph.apply_patch(&self.build_patch(graph, site)?)
    }
}

/// A candidate transformation: one rule applied at one site, represented as a
/// patch against the graph it was generated from.
///
/// The transformed graph is only built on demand — [`Candidate::graph`]
/// materialises it once and memoises the result behind an [`Arc`], so the
/// agent's featuriser, the environment's `step()` and any cost evaluation all
/// share a single materialisation. Cloning a candidate (e.g. into a rollout
/// buffer) shares the memo.
#[derive(Debug, Clone)]
pub struct Candidate {
    patch: GraphPatch,
    /// Which rule produced it.
    pub rule_id: RuleId,
    /// The rule's name.
    pub rule_name: &'static str,
    /// Structural hash of the patch (used for deduplication; see
    /// [`GraphPatch::structural_hash`]).
    pub hash: u64,
    /// Live-node count of the generation-time base graph — a cheap
    /// fingerprint used by debug assertions to catch callers materialising
    /// against the wrong base.
    base_num_nodes: usize,
    materialized: Arc<OnceLock<Arc<Graph>>>,
}

impl Candidate {
    /// Wraps a patch produced by `rule_id` against `base` into a candidate.
    pub fn new(patch: GraphPatch, rule_id: RuleId, rule_name: &'static str, base: &Graph) -> Self {
        let hash = patch.structural_hash();
        Self {
            patch,
            rule_id,
            rule_name,
            hash,
            base_num_nodes: base.num_nodes(),
            materialized: Arc::new(OnceLock::new()),
        }
    }

    /// The patch this candidate applies.
    pub fn patch(&self) -> &GraphPatch {
        &self.patch
    }

    /// `true` when this candidate has already been materialised.
    pub fn is_materialized(&self) -> bool {
        self.materialized.get().is_some()
    }

    /// Debug-build guard: `base` must be the graph the candidate was
    /// generated from, and a materialised result must be a valid graph.
    /// Compiled out of release builds to keep materialisation cheap; the
    /// differential/property tests exercise every rule through this path.
    fn debug_check_base(&self, base: &Graph) {
        debug_assert_eq!(
            base.num_nodes(),
            self.base_num_nodes,
            "candidate for rule {} materialised against a different base graph",
            self.rule_name
        );
    }

    /// The transformed graph, materialised on first call and shared
    /// afterwards.
    ///
    /// `base` must be the graph this candidate was generated from; once the
    /// memo is populated the argument is ignored, so passing a different
    /// graph never recomputes (debug builds assert against a base
    /// fingerprint).
    ///
    /// # Panics
    ///
    /// Panics if the patch does not apply to `base` — patches are
    /// shape-checked at construction time, so this indicates `base` is not
    /// the generation-time graph.
    pub fn graph(&self, base: &Graph) -> Arc<Graph> {
        Arc::clone(self.materialized.get_or_init(|| {
            self.debug_check_base(base);
            let graph = base
                .apply_patch(&self.patch)
                .expect("candidate patch was validated against its base graph at build time");
            debug_assert!(
                graph.validate().is_ok(),
                "rule {} produced an invalid graph (patches must only reference upstream tensors)",
                self.rule_name
            );
            Arc::new(graph)
        }))
    }

    /// Materialises the transformed graph without touching the memo (used by
    /// differential tests and benchmarks).
    ///
    /// # Errors
    ///
    /// Returns an error when the patch does not apply to `base`.
    pub fn materialize(&self, base: &Graph) -> Result<Graph, GraphError> {
        self.debug_check_base(base);
        base.apply_patch(&self.patch)
    }
}

/// A collection of rewrite rules applied together.
pub struct RuleSet {
    rules: Vec<Box<dyn RewriteRule>>,
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleSet").field("rules", &self.rule_names()).finish()
    }
}

impl RuleSet {
    /// Creates a rule set from explicit rules.
    pub fn new(rules: Vec<Box<dyn RewriteRule>>) -> Self {
        Self { rules }
    }

    /// The standard rule library (fusion, parallel-operator merging and
    /// algebraic simplification families; see `crate::rules`).
    pub fn standard() -> Self {
        Self::new(crate::rules::standard_rules())
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names indexed by [`RuleId`].
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Returns the name of a rule.
    pub fn rule_name(&self, id: RuleId) -> &'static str {
        self.rules[id].name()
    }

    /// Total number of application sites across all rules (the paper's
    /// Table 3 "complexity" metric is the average of this over an episode).
    pub fn count_matches(&self, graph: &Graph) -> usize {
        self.rules.iter().map(|r| r.find_matches(graph).len()).sum()
    }

    /// Generates every deduplicated candidate obtainable by applying one
    /// rule at one site of `graph` — **without materialising any of them**.
    ///
    /// Each candidate is a patch. Shape consistency is checked by the patch
    /// builder; full graph validity (acyclicity in particular) relies on the
    /// rule convention that patches only reference tensors upstream of the
    /// rewired ones, enforced by debug assertions on materialisation and the
    /// per-rule differential tests. Syntactic no-op patches are dropped and
    /// duplicates are eliminated by patch structural hash — a deliberately
    /// weaker filter than the eager pipeline's result-graph hash (two
    /// distinct patches that materialise to the same graph both survive),
    /// traded for never touching a full graph here. `max_candidates` bounds
    /// the output (the paper pads the action space to a fixed constant
    /// anyway).
    pub fn generate_candidates(&self, graph: &Graph, max_candidates: usize) -> Vec<Candidate> {
        let _span = xrlflow_obs::span!("rewrite/generate_candidates");
        let mut seen: HashSet<u64> = HashSet::new();
        let mut out = Vec::new();
        'outer: for (rule_id, rule) in self.rules.iter().enumerate() {
            for site in rule.find_matches(graph) {
                let Ok(patch) = rule.build_patch(graph, &site) else { continue };
                if patch.is_noop() {
                    continue;
                }
                let candidate = Candidate::new(patch, rule_id, rule.name(), graph);
                if !seen.insert(candidate.hash) {
                    continue;
                }
                out.push(candidate);
                if out.len() >= max_candidates {
                    break 'outer;
                }
            }
        }
        xrlflow_obs::counter!("rewrite/candidates").add(out.len() as u64);
        out
    }

    /// The pre-patch reference pipeline: generates candidates by eagerly
    /// materialising, validating and canonically hashing a full graph per
    /// application site, deduplicating by the *result* graph's canonical
    /// hash. Kept as the differential-testing oracle and the benchmark
    /// baseline for [`RuleSet::generate_candidates`]; do not use it on hot
    /// paths.
    pub fn generate_candidates_eager(&self, graph: &Graph, max_candidates: usize) -> Vec<(Candidate, Graph)> {
        let original_hash = graph.canonical_hash();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut out = Vec::new();
        'outer: for (rule_id, rule) in self.rules.iter().enumerate() {
            for site in rule.find_matches(graph) {
                let Ok(materialized) = rule.apply(graph, &site) else { continue };
                if materialized.validate().is_err() {
                    continue;
                }
                let hash = materialized.canonical_hash();
                if hash == original_hash || !seen.insert(hash) {
                    continue;
                }
                let patch = rule.build_patch(graph, &site).expect("apply succeeded for this site");
                out.push((Candidate::new(patch, rule_id, rule.name(), graph), materialized));
                if out.len() >= max_candidates {
                    break 'outer;
                }
            }
        }
        out
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    #[test]
    fn standard_ruleset_is_nonempty() {
        let rs = RuleSet::standard();
        assert!(rs.len() >= 12, "expected a substantive rule library, got {}", rs.len());
        assert!(!rs.is_empty());
        let names = rs.rule_names();
        assert_eq!(names.len(), rs.len());
        // Names must be unique.
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn candidates_are_valid_and_deduplicated() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let candidates = rs.generate_candidates(&g, 64);
        assert!(!candidates.is_empty(), "expected rewrite opportunities in SqueezeNet");
        let mut hashes = HashSet::new();
        for c in &candidates {
            assert!(!c.is_materialized(), "generation must not materialise candidates");
            let out = c.graph(&g);
            assert!(out.validate().is_ok(), "candidate from {} is invalid", c.rule_name);
            assert!(hashes.insert(c.hash), "duplicate candidate from {}", c.rule_name);
            assert_ne!(out.canonical_hash(), g.canonical_hash(), "candidate from {} is a no-op", c.rule_name);
        }
    }

    #[test]
    fn materialization_is_memoized_and_shared_across_clones() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let candidates = rs.generate_candidates(&g, 8);
        let c = candidates.first().expect("at least one candidate");
        let clone = c.clone();
        let a = c.graph(&g);
        // The clone sees the memoised graph without re-applying the patch.
        assert!(clone.is_materialized());
        let b = clone.graph(&g);
        assert!(Arc::ptr_eq(&a, &b), "clones must share one materialisation");
    }

    #[test]
    fn patch_and_eager_pipelines_agree() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let lazy = rs.generate_candidates(&g, usize::MAX);
        let eager = rs.generate_candidates_eager(&g, usize::MAX);
        // The eager pipeline dedups by result-graph hash, which can only
        // collapse candidates the patch pipeline keeps apart.
        assert!(eager.len() <= lazy.len());
        let eager_hashes: HashSet<u64> = eager.iter().map(|(_, g)| g.canonical_hash()).collect();
        let lazy_hashes: HashSet<u64> = lazy.iter().map(|c| c.graph(&g).canonical_hash()).collect();
        assert_eq!(eager_hashes, lazy_hashes, "pipelines reach different graph sets");
    }

    #[test]
    fn candidate_limit_respected() {
        let g = build_model(ModelKind::InceptionV3, ModelScale::Bench).unwrap();
        let rs = RuleSet::standard();
        let candidates = rs.generate_candidates(&g, 5);
        assert!(candidates.len() <= 5);
    }
}
