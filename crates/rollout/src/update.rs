//! Data-parallel PPO update: transition re-evaluations sharded across the
//! worker pool with a deterministic, index-ordered gradient merge.
//!
//! After parallel episode collection (PR 3) and the multi-model curriculum
//! (PR 4), the PPO update was the last serial phase of the training loop —
//! every stored transition re-evaluated through the GNN policy on one
//! thread. Each transition's loss subtree is independent until the final
//! mean, so the minibatch gradient is a *sum of per-transition
//! contributions*; `xrlflow-core` now defines the canonical update exactly
//! that way (`transition_grad` into a private `GradBuffer` per transition,
//! merged in minibatch-position order), and this module computes the same
//! contributions on worker threads under the PR 3 rules:
//!
//! * **Snapshot-per-minibatch broadcast.** The optimiser steps between
//!   minibatches, so each call to [`minibatch_grads_parallel`] captures a
//!   fresh [`ParamSnapshot`] of the live agent; every worker builds a
//!   read-only replica from it. Workers never touch the live `ParamStore` or
//!   share a `Tape`.
//! * **Position-based sharding.** Minibatch positions round-robin across
//!   workers (`position % W`, via `xrlflow_rl::shard_minibatch`) — a pure
//!   function of the batch and the worker count, never of timing.
//! * **Index-ordered merge.** Workers hand back one zero-initialised
//!   [`GradBuffer`](xrlflow_tensor::GradBuffer) per transition; the trainer
//!   thread merges them **by minibatch position**, never completion order,
//!   then loads, clips and steps — everything that mutates parameters stays
//!   on the trainer thread.
//!
//! Together these make the parallel update at any worker count bit-identical
//! (f32 bit equality of post-update parameters and `TrainingStats`) to the
//! retained serial oracle `minibatch_grads_serial` — differential-tested
//! below, same spirit as `collect_serial` / `policy_logits_serial`.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use xrlflow_core::fault::{self, FaultPhase, WorkerFault};
use xrlflow_core::{
    transition_grad_into, MinibatchContext, MinibatchGrads, Trainer, TransitionLossStats, XrlflowAgent,
    XrlflowConfig,
};
use xrlflow_env::Observation;
use xrlflow_rl::{shard_minibatch, RolloutBuffer, TrainingStats};
use xrlflow_tensor::{GradBuffer, SnapshotError, Tape};

use crate::{retry_budget, ItemFailure, RolloutError};

/// Runs one supervised update work item: trips the fault-injection hook
/// (item id = minibatch position), then back-propagates transition
/// `ctx.batch[position]` into a fresh zero-initialised [`GradBuffer`] under
/// `catch_unwind` so a panic becomes a queueable [`ItemFailure`] instead of
/// tearing down the pool. The caller must replace `tape` after a failure (a
/// panic leaves the arena's contents unspecified).
fn run_update_item(
    agent: &XrlflowAgent,
    ctx: &MinibatchContext,
    position: usize,
    index: usize,
    inv: f32,
    tape: &mut Tape,
    attempt: u32,
) -> Result<(usize, GradBuffer, TransitionLossStats), ItemFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        fault::trip(FaultPhase::Update, position as u64, attempt);
        let mut grads = GradBuffer::zeros_like(&agent.store);
        let stats = transition_grad_into(
            agent,
            &ctx.transitions[index],
            ctx.advantages[index],
            ctx.returns[index],
            &ctx.ppo,
            inv,
            tape,
            &mut grads,
        );
        (position, grads, stats)
    }))
    .map_err(|payload| {
        xrlflow_obs::counter!("rollout/worker_panics").inc();
        ItemFailure { item: position as u64, payload: fault::panic_payload_text(payload.as_ref()) }
    })
}

/// Evaluates one minibatch's per-transition gradients on a supervised pool
/// of `num_workers` threads and merges them in minibatch-position order.
///
/// Captures one [`xrlflow_tensor::ParamSnapshot`] of `agent` (the update
/// analogue of the collection engine's per-round broadcast — here the
/// optimiser steps between minibatches, so the snapshot must be
/// per-minibatch); each worker builds a private replica, walks its
/// round-robin position shard through `xrlflow_core::transition_grad`, and
/// returns `(position, GradBuffer, stats)` triples. The merge sorts by
/// position, so the output is bit-identical to
/// [`xrlflow_core::minibatch_grads_serial`] over the same context, for any
/// worker count. With one effective worker the same supervised loop runs
/// serially against the live agent — no snapshot, no replica, no spawn.
///
/// The pool is fault-tolerant: each transition runs under `catch_unwind`, a
/// panicking item is retried on the calling thread against the live agent —
/// whose parameters are exactly what the snapshot broadcast, so a retried
/// gradient is bit-identical — and a worker panic never aborts the process.
///
/// # Errors
///
/// * [`RolloutError::Snapshot`] when `agent` does not match the
///   architecture described by `config` (only detectable when a replica is
///   built, i.e. with more than one effective worker).
/// * [`RolloutError::WorkerFault`] when a transition kept panicking past the
///   retry budget (`XRLFLOW_ROLLOUT_RETRIES`, default 2); the reported item
///   id is the minibatch position.
pub fn minibatch_grads_parallel(
    config: &XrlflowConfig,
    agent: &XrlflowAgent,
    ctx: &MinibatchContext,
    num_workers: usize,
) -> Result<MinibatchGrads, RolloutError> {
    let num_workers = num_workers.clamp(1, ctx.batch.len().max(1));
    let inv = 1.0 / ctx.batch.len() as f32;

    type WorkerOutput = Vec<(usize, GradBuffer, TransitionLossStats)>;
    let mut per_position: WorkerOutput;
    let failures: Vec<ItemFailure>;

    if num_workers <= 1 {
        // Degenerate pool: the supervised loop runs serially against the
        // live agent — same fault semantics, no broadcast cost.
        per_position = Vec::with_capacity(ctx.batch.len());
        let mut failed = Vec::new();
        let mut tape = Tape::new();
        for (position, &index) in ctx.batch.iter().enumerate() {
            match run_update_item(agent, ctx, position, index, inv, &mut tape, 0) {
                Ok(item) => per_position.push(item),
                Err(failure) => {
                    tape = Tape::new();
                    failed.push(failure);
                }
            }
        }
        failures = failed;
    } else {
        // Broadcast: the parameters the optimiser has stepped to so far.
        let snapshot = agent.snapshot();
        let shards = shard_minibatch(ctx.batch, num_workers);
        let shared_failures: Mutex<Vec<ItemFailure>> = Mutex::new(Vec::new());
        per_position = std::thread::scope(|scope| -> Result<WorkerOutput, SnapshotError> {
            let mut handles = Vec::with_capacity(num_workers);
            for shard in &shards {
                let snapshot = &snapshot;
                let shared_failures = &shared_failures;
                handles.push(scope.spawn(move || -> Result<WorkerOutput, SnapshotError> {
                    let replica = XrlflowAgent::from_snapshot(config, snapshot)?;
                    // One recycled tape arena per worker for its whole shard;
                    // the per-position buffers stay separate because the
                    // trainer thread merges them by minibatch position.
                    let mut tape = Tape::new();
                    let mut out = Vec::with_capacity(shard.len());
                    for &(position, index) in shard {
                        match run_update_item(&replica, ctx, position, index, inv, &mut tape, 0) {
                            Ok(item) => out.push(item),
                            Err(failure) => {
                                tape = Tape::new();
                                shared_failures.lock().unwrap_or_else(PoisonError::into_inner).push(failure);
                            }
                        }
                    }
                    Ok(out)
                }));
            }
            let mut merged = Vec::with_capacity(ctx.batch.len());
            for handle in handles {
                merged.extend(handle.join().expect("update worker panicked outside a work item")?);
            }
            Ok(merged)
        })?;
        failures = shared_failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    }

    // Caller-thread retries, in position order, against the live agent — its
    // parameters are exactly what the snapshot broadcast (the optimiser only
    // steps between minibatches), so a retried item's gradient is
    // bit-identical to a first-attempt success.
    if !failures.is_empty() {
        let mut failures = failures;
        failures.sort_by_key(|f| f.item);
        let budget = retry_budget();
        let mut tape = Tape::new();
        for failure in failures {
            let position = failure.item as usize;
            let index = ctx.batch[position];
            let mut last = failure;
            let mut attempt = 1u32;
            loop {
                if attempt > budget {
                    return Err(WorkerFault {
                        phase: FaultPhase::Update,
                        item: last.item,
                        attempts: attempt,
                        payload: last.payload,
                    }
                    .into());
                }
                xrlflow_obs::counter!("rollout/item_retries").inc();
                match run_update_item(agent, ctx, position, index, inv, &mut tape, attempt) {
                    Ok(item) => {
                        per_position.push(item);
                        break;
                    }
                    Err(f) => {
                        tape = Tape::new();
                        last = f;
                        attempt += 1;
                    }
                }
            }
        }
    }

    // Merge is ordered by minibatch position, not completion order — the
    // update half of the determinism contract.
    per_position.sort_by_key(|(position, _, _)| *position);
    let mut grads = GradBuffer::zeros_like(&agent.store);
    let mut stats = Vec::with_capacity(per_position.len());
    for (_, buffer, transition_stats) in &per_position {
        grads.merge(buffer);
        stats.push(*transition_stats);
    }
    Ok(MinibatchGrads { grads, stats })
}

/// One PPO update with every minibatch's transition re-evaluations sharded
/// across `num_workers` threads: `Trainer::update_with_segments_via` driven
/// by [`minibatch_grads_parallel`].
///
/// The clip + optimiser step stay on the calling thread, and the result —
/// post-update parameters, optimiser state and [`TrainingStats`] — is
/// bit-identical to `Trainer::update_with_segments` for any worker count.
///
/// # Errors
///
/// * [`RolloutError::Snapshot`] when `agent` does not match the trainer's
///   architecture configuration and `num_workers > 1` (the supervised
///   serial path never builds a replica, so there is nothing to validate);
///   the check runs before any optimiser state advances, so a failed
///   validation leaves trainer and agent untouched.
/// * [`RolloutError::WorkerFault`] when a transition kept panicking past
///   the retry budget. Earlier minibatches may already have stepped the
///   optimiser, so the agent's state after this error is unspecified —
///   recover by resuming from the last durable `TrainState` checkpoint.
pub fn update_parallel(
    trainer: &mut Trainer,
    agent: &mut XrlflowAgent,
    buffer: &mut RolloutBuffer<Observation>,
    segments: &[Range<usize>],
    num_workers: usize,
) -> Result<TrainingStats, RolloutError> {
    // Validate up front: the per-minibatch broadcasts inside the update
    // cannot be allowed to fail after the optimiser has started stepping.
    if num_workers > 1 {
        XrlflowAgent::from_snapshot(trainer.config(), &agent.snapshot())?;
    }
    let config = trainer.config().clone();
    trainer
        .update_with_segments_via(agent, buffer, segments, &mut |agent, ctx| {
            minibatch_grads_parallel(&config, agent, ctx, num_workers).map_err(|e| match e {
                RolloutError::WorkerFault(fault) => fault,
                other => unreachable!("agent architecture validated before the update: {other}"),
            })
        })
        .map_err(RolloutError::WorkerFault)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect_curriculum_serial, collect_serial, Curriculum, EnvSpec};
    use xrlflow_cost::DeviceProfile;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_rewrite::RuleSet;

    fn smoke_spec(config: &XrlflowConfig) -> EnvSpec {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone())
    }

    /// Runs one update over a clone of `buffer` with fresh, identically
    /// seeded trainer and agent, returning the stats and a probe embedding
    /// of the post-update parameters.
    fn run_update(
        config: &XrlflowConfig,
        buffer: &RolloutBuffer<Observation>,
        segments: &[Range<usize>],
        workers: Option<usize>,
    ) -> (TrainingStats, Vec<f32>) {
        let mut trainer = Trainer::new(config.clone(), 7);
        let mut agent = XrlflowAgent::new(config, 5);
        let mut buffer = buffer.clone();
        let stats = match workers {
            None => trainer.update_with_segments(&mut agent, &mut buffer, segments),
            Some(w) => update_parallel(&mut trainer, &mut agent, &mut buffer, segments, w).unwrap(),
        };
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        (stats, agent.embed_graph(&probe).data().to_vec())
    }

    #[test]
    fn parallel_update_is_bit_identical_to_serial_for_1_2_4_workers() {
        // The tentpole determinism contract, update half: sharding the
        // minibatch re-evaluations across any worker count and merging by
        // position lands on the serial oracle's exact parameters and stats.
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let rollouts = collect_serial(&agent, &spec, 0, 3, 42);

        let (serial_stats, serial_params) = run_update(&config, &rollouts.buffer, &[], None);
        for workers in [1usize, 2, 4] {
            let (stats, params) = run_update(&config, &rollouts.buffer, &[], Some(workers));
            assert_eq!(serial_stats, stats, "{workers}-worker TrainingStats diverge from the serial oracle");
            let bits_equal = serial_params.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_equal, "{workers}-worker post-update parameters diverge from the serial oracle");
        }
    }

    #[test]
    fn parallel_update_is_bit_identical_on_curriculum_buffers() {
        // Same contract over a merged multi-model buffer with per-spec
        // advantage-normalisation segments.
        let config = XrlflowConfig::smoke_test();
        let curriculum = Curriculum::from_model_zoo(
            &[ModelKind::SqueezeNet, ModelKind::Bert],
            ModelScale::Bench,
            DeviceProfile::gtx1080(),
            config.env.clone(),
        )
        .unwrap();
        let agent = XrlflowAgent::new(&config, 5);
        let rollouts = collect_curriculum_serial(&agent, &curriculum, 0, 2, 42);

        let (serial_stats, serial_params) =
            run_update(&config, &rollouts.buffer, &rollouts.spec_ranges, None);
        for workers in [1usize, 2, 4] {
            let (stats, params) = run_update(&config, &rollouts.buffer, &rollouts.spec_ranges, Some(workers));
            assert_eq!(serial_stats, stats, "{workers}-worker curriculum TrainingStats diverge");
            let bits_equal = serial_params.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_equal, "{workers}-worker curriculum post-update parameters diverge");
        }
    }

    #[test]
    fn update_worker_count_is_clamped_to_the_batch() {
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let rollouts = collect_serial(&agent, &spec, 0, 2, 0);
        // Far more workers than transitions per minibatch must not spawn
        // idle threads or panic, and must still match the oracle.
        let (serial_stats, serial_params) = run_update(&config, &rollouts.buffer, &[], None);
        let (stats, params) = run_update(&config, &rollouts.buffer, &[], Some(64));
        assert_eq!(serial_stats, stats);
        assert_eq!(
            serial_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            params.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mismatched_agent_is_rejected_before_any_optimiser_step() {
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let rollouts = collect_serial(&agent, &spec, 0, 2, 0);

        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        let mut victim = XrlflowAgent::new(&wider, 0);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let before = victim.embed_graph(&probe);
        let mut trainer = Trainer::new(config, 7);
        let mut buffer = rollouts.buffer.clone();
        assert!(update_parallel(&mut trainer, &mut victim, &mut buffer, &[], 2).is_err());
        // The failed update must leave the agent untouched.
        assert_eq!(victim.embed_graph(&probe).data(), before.data());
    }
}
