//! # xrlflow-rollout
//!
//! Parallel execution engine for the X-RLflow PPO loop: a thread-based
//! worker pool that turns multi-core hardware into rollout **and update**
//! throughput without changing a single learned number — episode collection
//! ([`collect_parallel`]) and the PPO update's per-transition re-evaluations
//! ([`update_parallel`]) both shard across workers under the same
//! snapshot-broadcast + ordered-merge determinism contract.
//!
//! After the per-step hot paths were delta-ified (patch-based candidates,
//! batched delta-aware GNN evaluation), wall-clock training time is
//! dominated by strictly serial episode collection — one environment, one
//! thread, `update_frequency` episodes in a row. This crate parallelises
//! that phase the way large-scale graph-rewrite RL systems do (cf. Amazon's
//! RL-based XLA optimiser), under a strict determinism contract:
//!
//! * **Snapshot-based parameter broadcast.** The trainer captures one
//!   [`ParamSnapshot`] of the live agent per PPO update; every worker builds
//!   its own read-only replica from it ([`XrlflowAgent::from_snapshot`]).
//!   Workers never share a live `ParamStore` or a `Tape`.
//! * **Shared immutable world.** Workers build their environments from one
//!   [`EnvSpec`] — the same `Arc<Graph>` model-zoo entry, `Arc<RuleSet>` and
//!   `Arc<InferenceSimulator>` (whose memoised measurement cache is
//!   internally synchronised and seed-deterministic regardless of cache
//!   state).
//! * **Per-episode seed schedule.** Episode `e` always resets its
//!   environment with seed `e` and samples actions from a fresh
//!   `XorShiftRng` seeded by `mix(base_seed, e)`, no matter which worker
//!   runs it or in what order episodes finish.
//! * **Ordered merge.** Workers hand back per-episode buffers; the engine
//!   merges them **by episode index**, not completion order.
//!
//! Together these make [`collect_parallel`] with any worker count
//! transition-for-transition bit-identical to the retained serial path
//! [`collect_serial`] — asserted by differential tests in the same spirit
//! as `policy_logits_serial`.
//!
//! The pools are **supervised**: every work item runs under `catch_unwind`
//! with the `xrlflow_core::fault` injection hook at its top, a panicking
//! item is queued and deterministically retried on the calling thread (up to
//! `XRLFLOW_ROLLOUT_RETRIES` extra attempts, default 2), and only budget
//! exhaustion surfaces — as the typed [`RolloutError::WorkerFault`], never a
//! process abort. Because every seed is a pure function of the item id, a
//! retried item is bit-identical to a first-attempt success, so the
//! differential suites hold even under injected faults. [`ParallelTrainer`]
//! additionally writes durable exact-resume [`TrainState`] checkpoints
//! ([`CheckpointConfig`]) so a killed run continues bit-identically.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_core::{XrlflowAgent, XrlflowConfig};
//! use xrlflow_cost::DeviceProfile;
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_rewrite::RuleSet;
//! use xrlflow_rollout::{collect_parallel, EnvSpec};
//!
//! let config = XrlflowConfig::smoke_test();
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let spec = EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone());
//! let agent = XrlflowAgent::new(&config, 0);
//! let rollouts = collect_parallel(&config, &agent.snapshot(), &spec, 0, 2, 7, 2).unwrap();
//! assert_eq!(rollouts.episodes.len(), 2);
//! assert!(!rollouts.buffer.is_empty());
//! ```

#![warn(missing_docs)]

mod curriculum;
mod error;
mod update;

pub use curriculum::{
    collect_curriculum_parallel, collect_curriculum_serial, curriculum_fault_item, curriculum_rng_seed,
    evaluate_curriculum, Curriculum, CurriculumEntry, CurriculumEpisode, CurriculumRollouts, ModelEvaluation,
};
pub use error::RolloutError;
pub use update::{minibatch_grads_parallel, update_parallel};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use xrlflow_core::fault::{self, FaultPhase, WorkerFault};
use xrlflow_core::{
    collect_episode_with_rng, collect_phase_breakdown_ns, latest_train_state, prune_train_states,
    train_state_path, ModelBreakdown, TrainReport, TrainState, Trainer, UpdateTiming, XrlflowAgent,
    XrlflowConfig,
};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::{EnvConfig, Environment, EpisodeStats, Observation};
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_rl::RolloutBuffer;
use xrlflow_tensor::{ParamSnapshot, SnapshotError, XorShiftRng};

/// The supervised pools' retry budget: how many times a failed work item is
/// re-executed (beyond its first attempt) before the round gives up with
/// [`RolloutError::WorkerFault`]. `XRLFLOW_ROLLOUT_RETRIES` overrides the
/// default of 2; unparseable values fall back to the default, matching the
/// leniency of `XRLFLOW_WORKERS`.
pub(crate) fn retry_budget() -> u32 {
    std::env::var("XRLFLOW_ROLLOUT_RETRIES").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(2)
}

/// A work item whose execution panicked: the item id (numbered as in
/// [`xrlflow_core::fault::FaultSpec`]) plus the panic payload text. Queued
/// by workers, drained by the caller-thread retry loop.
pub(crate) struct ItemFailure {
    pub(crate) item: u64,
    pub(crate) payload: String,
}

/// Busy/idle accounting for one parallel collection: each worker wraps its
/// whole closure in a `rollout/worker_busy` span, and the meter turns the
/// busy-histogram delta plus the pool's wall-clock into the
/// `rollout/worker_busy_ns` / `rollout/worker_wall_ns` counters and the
/// `rollout/worker_utilization` gauge (busy ÷ wall × workers; 1.0 = no
/// worker ever idled waiting for stragglers). Inert while telemetry is
/// disabled — the clock is never read.
pub(crate) struct PoolMeter {
    busy_before_ns: u64,
    start: Option<Instant>,
    num_workers: usize,
}

impl PoolMeter {
    pub(crate) fn start(num_workers: usize) -> Self {
        Self {
            busy_before_ns: xrlflow_obs::histogram!("rollout/worker_busy").sum(),
            start: xrlflow_obs::enabled().then(Instant::now),
            num_workers,
        }
    }

    pub(crate) fn finish(self) {
        let Some(start) = self.start else { return };
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let busy_ns =
            xrlflow_obs::histogram!("rollout/worker_busy").sum().saturating_sub(self.busy_before_ns);
        let pool_ns = wall_ns.saturating_mul(self.num_workers as u64);
        xrlflow_obs::counter!("rollout/worker_busy_ns").add(busy_ns);
        xrlflow_obs::counter!("rollout/worker_wall_ns").add(pool_ns);
        if pool_ns > 0 {
            xrlflow_obs::gauge!("rollout/worker_utilization").set(busy_ns as f64 / pool_ns as f64);
        }
    }
}

/// Everything a worker needs to build its own [`Environment`]: the initial
/// graph (one shared model-zoo entry), the rule library, the latency
/// simulator and the environment configuration.
///
/// All three heavyweight components sit behind [`Arc`]s, so building one
/// environment per worker duplicates nothing graph- or rule-sized, and
/// latency measurements memoised by one worker are reused by all.
#[derive(Debug, Clone)]
pub struct EnvSpec {
    /// The graph to optimise (shared, never mutated).
    pub graph: Arc<Graph>,
    /// The rewrite-rule library (stateless, shared).
    pub rules: Arc<RuleSet>,
    /// The end-to-end latency simulator (shared; its measurement memo is
    /// internally synchronised and deterministic per seed).
    pub simulator: Arc<InferenceSimulator>,
    /// Reward-shaping and termination configuration.
    pub env: EnvConfig,
}

impl EnvSpec {
    /// Creates a spec from owned components.
    pub fn new(graph: Graph, rules: RuleSet, profile: DeviceProfile, env: EnvConfig) -> Self {
        Self {
            graph: Arc::new(graph),
            rules: Arc::new(rules),
            simulator: Arc::new(InferenceSimulator::new(profile)),
            env,
        }
    }

    /// Builds a fresh environment over the shared components.
    pub fn build_env(&self) -> Environment {
        Environment::from_shared(
            Arc::clone(&self.graph),
            Arc::clone(&self.rules),
            Arc::clone(&self.simulator),
            self.env.clone(),
        )
    }
}

/// The merged result of collecting a batch of episodes: one rollout buffer
/// holding every transition in episode order, plus per-episode statistics in
/// the same order.
#[derive(Debug, Clone, Default)]
pub struct CollectedRollouts {
    /// Transitions of all episodes, concatenated in episode-index order.
    pub buffer: RolloutBuffer<Observation>,
    /// Per-episode statistics, indexed by episode order.
    pub episodes: Vec<EpisodeStats>,
}

// The SplitMix64 finaliser decorrelating seeds from structured indices now
// lives in `xrlflow_tensor` (the trainer's minibatch-shuffle seed uses the
// same mix); re-imported here for the episode/curriculum seed schedules.
pub(crate) use xrlflow_tensor::splitmix64;

/// The deterministic seed of episode `episode`'s action-sampling RNG.
///
/// Part of the determinism contract: every path that collects episode `e`
/// under base seed `b` — serial or any worker of any pool size — derives its
/// `XorShiftRng` from this value.
pub fn episode_rng_seed(base_seed: u64, episode: u64) -> u64 {
    splitmix64(base_seed ^ episode.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Collects exactly one episode: resets `env` with seed `episode`, samples
/// actions from a fresh RNG seeded by [`episode_rng_seed`], and pushes every
/// transition into `buffer`.
///
/// The stepping loop itself is `xrlflow_core`'s [`collect_episode_with_rng`]
/// — the same function `Trainer::collect_episode` runs — so the serial and
/// parallel paths record identical transitions by construction; this wrapper
/// only pins the determinism contract's seeds.
pub fn collect_episode_seeded(
    agent: &XrlflowAgent,
    env: &mut Environment,
    episode: u64,
    base_seed: u64,
    buffer: &mut RolloutBuffer<Observation>,
) -> EpisodeStats {
    let mut rng = XorShiftRng::new(episode_rng_seed(base_seed, episode));
    collect_episode_with_rng(agent, env, &mut rng, buffer, episode)
}

/// The retained serial collection path: episodes `first_episode ..
/// first_episode + num_episodes` collected one after another in the calling
/// thread, against the live agent.
///
/// This is the differential-testing oracle for [`collect_parallel`] (same
/// spirit as `policy_logits_serial`) — deliberately free of the supervised
/// pool's catch/retry machinery, so the differential suites compare the
/// fault-tolerant engine against a path that cannot mask a panic.
pub fn collect_serial(
    agent: &XrlflowAgent,
    spec: &EnvSpec,
    first_episode: u64,
    num_episodes: usize,
    base_seed: u64,
) -> CollectedRollouts {
    let mut env = spec.build_env();
    let mut out = CollectedRollouts::default();
    for episode in first_episode..first_episode + num_episodes as u64 {
        let stats = collect_episode_seeded(agent, &mut env, episode, base_seed, &mut out.buffer);
        out.episodes.push(stats);
    }
    out
}

/// Runs one supervised collection work item: trips the fault-injection hook
/// ([`fault::trip`] with the episode index as item id), then collects the
/// episode under `catch_unwind` so an injected — or real — panic becomes a
/// queueable [`ItemFailure`] instead of tearing down the pool. The caller
/// must rebuild `env` after a failure (a panic leaves its state unspecified;
/// a fresh environment is bit-identical because every episode resets first).
fn run_collect_item(
    replica: &XrlflowAgent,
    env: &mut Environment,
    episode: u64,
    base_seed: u64,
    attempt: u32,
) -> Result<(u64, RolloutBuffer<Observation>, EpisodeStats), ItemFailure> {
    catch_unwind(AssertUnwindSafe(|| {
        fault::trip(FaultPhase::Collect, episode, attempt);
        let mut buffer = RolloutBuffer::new();
        let stats = collect_episode_seeded(replica, env, episode, base_seed, &mut buffer);
        (episode, buffer, stats)
    }))
    .map_err(|payload| {
        xrlflow_obs::counter!("rollout/worker_panics").inc();
        ItemFailure { item: episode, payload: fault::panic_payload_text(payload.as_ref()) }
    })
}

/// Re-runs failed collection items on the calling thread, in episode order,
/// until each succeeds or the retry budget is exhausted. The seeds depend
/// only on the episode index, so a retried episode is bit-identical to a
/// first-attempt success on any worker.
fn retry_collect_failures(
    replica: &XrlflowAgent,
    spec: &EnvSpec,
    base_seed: u64,
    mut failures: Vec<ItemFailure>,
    out: &mut Vec<(u64, RolloutBuffer<Observation>, EpisodeStats)>,
) -> Result<(), RolloutError> {
    failures.sort_by_key(|f| f.item);
    let budget = retry_budget();
    let mut env = spec.build_env();
    for failure in failures {
        let episode = failure.item;
        let mut last = failure;
        let mut attempt = 1u32;
        loop {
            if attempt > budget {
                return Err(WorkerFault {
                    phase: FaultPhase::Collect,
                    item: episode,
                    attempts: attempt,
                    payload: last.payload,
                }
                .into());
            }
            xrlflow_obs::counter!("rollout/item_retries").inc();
            match run_collect_item(replica, &mut env, episode, base_seed, attempt) {
                Ok(item) => {
                    out.push(item);
                    break;
                }
                Err(f) => {
                    env = spec.build_env();
                    last = f;
                    attempt += 1;
                }
            }
        }
    }
    Ok(())
}

/// Collects episodes `first_episode .. first_episode + num_episodes` with a
/// supervised pool of `num_workers` threads.
///
/// Each worker builds a read-only agent replica from `snapshot` (broadcast —
/// workers never touch a live `ParamStore`) and its own environment from
/// `spec`, then round-robins over the episode indices assigned to it
/// (`episode % num_workers == worker`). Results are merged **by episode
/// index**, so the output is transition-for-transition bit-identical to
/// [`collect_serial`] over the same range and base seed, for any worker
/// count — one worker runs the same supervised path serially.
///
/// The pool is fault-tolerant: each episode runs under `catch_unwind`, a
/// panicking item is re-queued and deterministically retried on the calling
/// thread (identical seeds → identical transitions), and a worker panic
/// never aborts the process.
///
/// # Errors
///
/// * [`RolloutError::Snapshot`] when `snapshot` does not match the
///   architecture described by `config`.
/// * [`RolloutError::WorkerFault`] when an episode kept panicking past the
///   retry budget (`XRLFLOW_ROLLOUT_RETRIES`, default 2).
pub fn collect_parallel(
    config: &XrlflowConfig,
    snapshot: &ParamSnapshot,
    spec: &EnvSpec,
    first_episode: u64,
    num_episodes: usize,
    base_seed: u64,
    num_workers: usize,
) -> Result<CollectedRollouts, RolloutError> {
    let num_workers = num_workers.clamp(1, num_episodes.max(1));
    let end = first_episode + num_episodes as u64;
    type WorkerOutput = Vec<(u64, RolloutBuffer<Observation>, EpisodeStats)>;
    let mut per_episode: WorkerOutput;
    let failures: Vec<ItemFailure>;
    let replica = XrlflowAgent::from_snapshot(config, snapshot)?;

    if num_workers <= 1 {
        // Degenerate pool: the same supervised loop, serially in the calling
        // thread — no thread spawn, but identical fault semantics.
        let mut env = spec.build_env();
        per_episode = Vec::with_capacity(num_episodes);
        let mut failed = Vec::new();
        for episode in first_episode..end {
            match run_collect_item(&replica, &mut env, episode, base_seed, 0) {
                Ok(item) => per_episode.push(item),
                Err(failure) => {
                    env = spec.build_env();
                    failed.push(failure);
                }
            }
        }
        failures = failed;
    } else {
        let meter = PoolMeter::start(num_workers);
        let shared_failures: Mutex<Vec<ItemFailure>> = Mutex::new(Vec::new());
        per_episode = std::thread::scope(|scope| -> Result<WorkerOutput, SnapshotError> {
            let mut handles = Vec::with_capacity(num_workers);
            for worker in 0..num_workers {
                let shared_failures = &shared_failures;
                handles.push(scope.spawn(move || -> Result<WorkerOutput, SnapshotError> {
                    let _busy = xrlflow_obs::span!("rollout/worker_busy");
                    // Broadcast: a private replica per worker, built once per
                    // collection round from the snapshot.
                    let replica = XrlflowAgent::from_snapshot(config, snapshot)?;
                    let mut env = spec.build_env();
                    let mut out = Vec::new();
                    let mut episode = first_episode + worker as u64;
                    while episode < end {
                        match run_collect_item(&replica, &mut env, episode, base_seed, 0) {
                            Ok(item) => out.push(item),
                            Err(failure) => {
                                env = spec.build_env();
                                shared_failures.lock().unwrap_or_else(PoisonError::into_inner).push(failure);
                            }
                        }
                        episode += num_workers as u64;
                    }
                    Ok(out)
                }));
            }
            let mut merged = Vec::with_capacity(num_episodes);
            for handle in handles {
                merged.extend(handle.join().expect("rollout worker panicked outside a work item")?);
            }
            Ok(merged)
        })?;
        meter.finish();
        failures = shared_failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    }

    if !failures.is_empty() {
        retry_collect_failures(&replica, spec, base_seed, failures, &mut per_episode)?;
    }

    // Merge is ordered by episode index, not completion order — the last
    // piece of the determinism contract.
    per_episode.sort_by_key(|(episode, _, _)| *episode);
    let mut out = CollectedRollouts::default();
    for (_, mut buffer, stats) in per_episode {
        out.buffer.append(&mut buffer);
        out.episodes.push(stats);
    }
    Ok(out)
}

/// Durable-checkpoint policy for [`ParallelTrainer`]: where to write
/// versioned [`TrainState`]s, how often (in update rounds), and how many to
/// retain.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the `state-<episode>.xrlftrst` files are written into
    /// (created on first write).
    pub dir: PathBuf,
    /// Write a checkpoint every this many update rounds; the final round of
    /// a run always checkpoints. Clamp to ≥ 1 via [`CheckpointConfig::every`].
    pub every: usize,
    /// Keep the newest `keep_last` states, pruning older ones after each
    /// write. Clamp to ≥ 1 via [`CheckpointConfig::keep_last`].
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// A policy checkpointing after every update round into `dir`, retaining
    /// the newest 3 states.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), every: 1, keep_last: 3 }
    }

    /// Builder: checkpoint every `every` update rounds (clamped to ≥ 1).
    #[must_use]
    pub fn every(mut self, every: usize) -> Self {
        self.every = every.max(1);
        self
    }

    /// Builder: retain the newest `keep_last` states (clamped to ≥ 1).
    #[must_use]
    pub fn keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last.max(1);
        self
    }

    /// Reads the policy from the environment: enabled iff
    /// `XRLFLOW_CHECKPOINT_DIR` is set and non-empty, with
    /// `XRLFLOW_CHECKPOINT_EVERY` (default 1) and `XRLFLOW_CHECKPOINT_KEEP`
    /// (default 3) tuning cadence and retention. Zero or unparseable values
    /// fall back to the defaults, matching the leniency of `XRLFLOW_WORKERS`.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var("XRLFLOW_CHECKPOINT_DIR").ok()?;
        if dir.trim().is_empty() {
            return None;
        }
        let knob = |var: &str| -> Option<usize> {
            std::env::var(var).ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
        };
        let mut config = Self::new(dir);
        if let Some(every) = knob("XRLFLOW_CHECKPOINT_EVERY") {
            config.every = every;
        }
        if let Some(keep_last) = knob("XRLFLOW_CHECKPOINT_KEEP") {
            config.keep_last = keep_last;
        }
        Some(config)
    }
}

/// A PPO trainer whose collection **and update** phases run on the worker
/// pool.
///
/// Wraps the serial [`Trainer`]: episodes are collected by the pool and
/// merged in episode order, and each PPO minibatch's transition
/// re-evaluations are sharded across the same worker count with an
/// index-ordered gradient merge ([`minibatch_grads_parallel`]). Both phases
/// are bit-identical to their serial oracles, so the worker count changes
/// wall-clock time only, never a learned number.
///
/// With a [`CheckpointConfig`] installed (explicitly or via
/// `XRLFLOW_CHECKPOINT_DIR`), the trainer writes a durable [`TrainState`]
/// after every `every`-th update round — parameters, Adam moments, step and
/// update counters, base seed and the episode schedule position, written
/// atomically — and [`ParallelTrainer::resume_from`] continues a killed run
/// bit-identically to one that never stopped.
#[derive(Debug)]
pub struct ParallelTrainer {
    trainer: Trainer,
    num_workers: usize,
    base_seed: u64,
    checkpointing: Option<CheckpointConfig>,
    resume_episode: u64,
}

impl ParallelTrainer {
    /// Creates a parallel trainer; the worker count comes from
    /// [`XrlflowConfig::effective_num_workers`] (the `num_workers` field,
    /// overridable via `XRLFLOW_WORKERS`), and checkpointing is enabled when
    /// `XRLFLOW_CHECKPOINT_DIR` is set ([`CheckpointConfig::from_env`]).
    pub fn new(config: XrlflowConfig, seed: u64) -> Self {
        let num_workers = config.effective_num_workers();
        Self {
            trainer: Trainer::new(config, seed),
            num_workers,
            base_seed: seed,
            checkpointing: CheckpointConfig::from_env(),
            resume_episode: 0,
        }
    }

    /// Installs (or, with `None`, disables) the durable-checkpoint policy.
    pub fn set_checkpointing(&mut self, checkpointing: Option<CheckpointConfig>) {
        self.checkpointing = checkpointing;
    }

    /// The active durable-checkpoint policy, if any.
    pub fn checkpointing(&self) -> Option<&CheckpointConfig> {
        self.checkpointing.as_ref()
    }

    /// Restores trainer and agent to a durable [`TrainState`]: parameters,
    /// Adam moments and step count, the update counter (which drives the
    /// minibatch shuffle schedule), the run's base seed and the episode
    /// schedule position. The next [`ParallelTrainer::train`] or
    /// [`ParallelTrainer::train_curriculum`] call continues collecting at
    /// `state.next_episode` — bit-identical to a run that never stopped.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the state does not match the agent's
    /// architecture; neither trainer nor agent is modified on error.
    pub fn resume_from(&mut self, agent: &mut XrlflowAgent, state: &TrainState) -> Result<(), SnapshotError> {
        self.trainer.restore_train_state(agent, state)?;
        self.base_seed = state.base_seed;
        self.resume_episode = state.next_episode;
        Ok(())
    }

    /// [`ParallelTrainer::resume_from`] the newest [`TrainState`] in `dir`.
    /// Returns the resumed schedule position, or `None` when the directory
    /// holds no state (including when it does not exist) — the caller then
    /// starts fresh.
    ///
    /// # Errors
    ///
    /// * [`RolloutError::Checkpoint`] when the directory cannot be scanned.
    /// * [`RolloutError::Snapshot`] when the newest state is corrupt or does
    ///   not match the agent's architecture.
    pub fn resume_from_latest(
        &mut self,
        agent: &mut XrlflowAgent,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Option<u64>, RolloutError> {
        let Some(path) = latest_train_state(dir.as_ref()).map_err(RolloutError::Checkpoint)? else {
            return Ok(None);
        };
        let state = TrainState::load(&path)?;
        self.resume_from(agent, &state)?;
        Ok(Some(state.next_episode))
    }

    /// The episode-schedule position the next training run starts from
    /// (non-zero only after [`ParallelTrainer::resume_from`]).
    pub fn resume_episode(&self) -> u64 {
        self.resume_episode
    }

    /// The number of rollout workers in use.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Overrides the worker count (normally sized by
    /// [`XrlflowConfig::effective_num_workers`] at construction). Any value
    /// collects bit-identical episodes; only wall-clock time changes.
    pub fn set_num_workers(&mut self, num_workers: usize) {
        self.num_workers = num_workers.max(1);
    }

    /// The wrapped serial trainer (PPO update path, checkpointing).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Persists the agent's parameters (see [`Trainer::save_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_checkpoint(
        &self,
        agent: &XrlflowAgent,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        self.trainer.save_checkpoint(agent, path)
    }

    /// Checks that `agent` matches the trainer's architecture configuration
    /// by round-tripping a snapshot into a config-built replica — the same
    /// check every worker performs, applied up front so a mismatch is
    /// reported before any episode is collected or any optimiser state
    /// advances, independent of the worker count.
    fn validate_agent(&self, agent: &XrlflowAgent) -> Result<(), SnapshotError> {
        XrlflowAgent::from_snapshot(self.trainer.config(), &agent.snapshot()).map(|_| ())
    }

    /// Restores the agent's parameters (see [`Trainer::load_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on read failure or architecture mismatch.
    pub fn load_checkpoint(
        &self,
        agent: &mut XrlflowAgent,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), SnapshotError> {
        self.trainer.load_checkpoint(agent, path)
    }

    /// Runs the full training loop: broadcast a parameter snapshot, collect
    /// `update_frequency` episodes across the supervised worker pool, merge
    /// in episode order, update, repeat until `episodes` episodes have been
    /// collected. After a [`ParallelTrainer::resume_from`], collection
    /// continues at the restored schedule position instead of episode 0
    /// (`episodes` still names the run's total).
    ///
    /// With the same seed this produces bit-identical episodes, updates and
    /// final parameters for any worker count; [`TrainReport::timings`]
    /// records the wall-clock collection/update split per round so the
    /// parallel speedup is observable.
    ///
    /// # Errors
    ///
    /// * [`RolloutError::Snapshot`] when the agent does not match the
    ///   trainer's architecture configuration.
    /// * [`RolloutError::WorkerFault`] when a work item kept panicking past
    ///   the retry budget.
    /// * [`RolloutError::Checkpoint`] when a durable checkpoint write fails.
    pub fn train(
        &mut self,
        agent: &mut XrlflowAgent,
        spec: &EnvSpec,
        episodes: usize,
    ) -> Result<TrainReport, RolloutError> {
        self.validate_agent(agent)?;
        let (num_workers, base_seed) = (self.num_workers, self.base_seed);
        let start_episode = (std::mem::take(&mut self.resume_episode) as usize).min(episodes);
        let config = self.trainer.config().clone();
        let loop_ctx = RoundLoop { start_episode, base_seed, checkpoint: self.checkpointing.as_ref() };
        let (report, _) =
            run_rounds(&mut self.trainer, agent, episodes, num_workers, loop_ctx, |agent, first, batch| {
                // Broadcast the current parameters once per update round; the
                // supervised pool covers every worker count, including 1.
                let rollouts =
                    collect_parallel(&config, &agent.snapshot(), spec, first, batch, base_seed, num_workers)?;
                Ok(Round {
                    buffer: rollouts.buffer,
                    episodes: rollouts.episodes.into_iter().map(|stats| (0, stats)).collect(),
                    segments: Vec::new(),
                })
            })?;
        Ok(report)
    }

    /// Runs the multi-model curriculum training loop: per PPO round, collect
    /// `min(update_frequency, remaining)` episodes **for every curriculum
    /// model** across the worker pool (work items sharded spec-then-episode,
    /// merged in item order), then drive one shared update over the merged
    /// multi-model buffer with advantages normalised per spec — so a large
    /// graph's episodes don't dominate the gradient of the small models
    /// sharing the agent. Repeats until every model has contributed
    /// `episodes_per_spec` episodes.
    ///
    /// With the same seed this produces bit-identical episodes, updates and
    /// final parameters for any worker count. The returned report carries
    /// the usual episode/update/timing series plus
    /// [`TrainReport::per_model`] breakdowns, one per curriculum entry in
    /// curriculum order. After a [`ParallelTrainer::resume_from`], rounds
    /// continue at the restored per-spec schedule position.
    ///
    /// # Errors
    ///
    /// * [`RolloutError::Snapshot`] when the agent does not match the
    ///   trainer's architecture configuration.
    /// * [`RolloutError::WorkerFault`] when a work item kept panicking past
    ///   the retry budget.
    /// * [`RolloutError::Checkpoint`] when a durable checkpoint write fails.
    pub fn train_curriculum(
        &mut self,
        agent: &mut XrlflowAgent,
        curriculum: &Curriculum,
        episodes_per_spec: usize,
    ) -> Result<TrainReport, RolloutError> {
        self.validate_agent(agent)?;
        if curriculum.is_empty() || episodes_per_spec == 0 {
            return Ok(TrainReport::default());
        }
        let (num_workers, base_seed) = (self.num_workers, self.base_seed);
        let start_episode = (std::mem::take(&mut self.resume_episode) as usize).min(episodes_per_spec);
        let config = self.trainer.config().clone();
        let loop_ctx = RoundLoop { start_episode, base_seed, checkpoint: self.checkpointing.as_ref() };
        let (mut report, spec_tags) = run_rounds(
            &mut self.trainer,
            agent,
            episodes_per_spec,
            num_workers,
            loop_ctx,
            |agent, first, batch| {
                // Broadcast the current parameters once per update round; the
                // supervised pool covers every worker count, including 1.
                let rollouts = collect_curriculum_parallel(
                    &config,
                    &agent.snapshot(),
                    curriculum,
                    first,
                    batch,
                    base_seed,
                    num_workers,
                )?;
                Ok(Round {
                    buffer: rollouts.buffer,
                    episodes: rollouts.episodes.into_iter().map(|e| (e.spec, e.stats)).collect(),
                    segments: rollouts.spec_ranges,
                })
            },
        )?;
        let mut per_spec_stats: Vec<Vec<EpisodeStats>> = vec![Vec::new(); curriculum.len()];
        for (&spec, stats) in spec_tags.iter().zip(&report.episodes) {
            per_spec_stats[spec].push(stats.clone());
        }
        report.per_model = curriculum
            .entries()
            .iter()
            .zip(&per_spec_stats)
            .map(|(entry, stats)| ModelBreakdown::from_episodes(entry.name.clone(), stats))
            .collect();
        Ok(report)
    }
}

/// One collection round handed to the shared PPO loop: the merged buffer,
/// every episode's `(spec, stats)` in merge order, and the per-spec
/// normalisation segments (empty = global normalisation).
struct Round {
    buffer: RolloutBuffer<Observation>,
    episodes: Vec<(usize, EpisodeStats)>,
    segments: Vec<std::ops::Range<usize>>,
}

/// Checkpoint/resume context of one [`run_rounds`] invocation: where the
/// episode schedule starts (non-zero after a resume), the base seed recorded
/// into checkpoints, and the optional durable-checkpoint policy.
struct RoundLoop<'a> {
    start_episode: usize,
    base_seed: u64,
    checkpoint: Option<&'a CheckpointConfig>,
}

/// Writes one durable [`TrainState`] checkpoint (atomically — crash-safe by
/// construction) and applies the retention policy.
fn write_train_state(
    trainer: &Trainer,
    agent: &XrlflowAgent,
    next_episode: u64,
    base_seed: u64,
    checkpoint: &CheckpointConfig,
) -> Result<(), RolloutError> {
    let _span = xrlflow_obs::span!("rollout/checkpoint");
    let state = trainer.train_state(agent, next_episode, base_seed);
    state.save(train_state_path(&checkpoint.dir, next_episode)).map_err(RolloutError::Checkpoint)?;
    prune_train_states(&checkpoint.dir, checkpoint.keep_last).map_err(RolloutError::Checkpoint)?;
    xrlflow_obs::counter!("train/checkpoints_written").inc();
    Ok(())
}

/// The PPO round loop shared by [`ParallelTrainer::train`] and
/// [`ParallelTrainer::train_curriculum`]: size each batch by the update
/// frequency, collect it through `collect` (which owns the snapshot
/// broadcast), drive one update over the merged buffer with the round's
/// segments through [`update_parallel`] (bit-identical to the serial path at
/// every worker count), record the wall-clock collect/update split with the
/// update's worker count, and — when a checkpoint policy is installed —
/// write a durable [`TrainState`] every `every`-th round and after the final
/// one. Returns the report plus each episode's spec tag, aligned with
/// `report.episodes`.
fn run_rounds(
    trainer: &mut Trainer,
    agent: &mut XrlflowAgent,
    episodes: usize,
    num_workers: usize,
    loop_ctx: RoundLoop<'_>,
    mut collect: impl FnMut(&XrlflowAgent, u64, usize) -> Result<Round, RolloutError>,
) -> Result<(TrainReport, Vec<usize>), RolloutError> {
    let mut report = TrainReport::default();
    let mut spec_tags = Vec::new();
    let num_workers = num_workers.max(1);
    let frequency = trainer.config().ppo.update_frequency.max(1);
    let mut next_episode = loop_ctx.start_episode.min(episodes);
    let mut rounds = 0usize;
    while next_episode < episodes {
        let batch = frequency.min(episodes - next_episode);
        let (sim_before_ns, candgen_before_ns) = collect_phase_breakdown_ns();
        let collect_start = Instant::now();
        let mut round = {
            let _span = xrlflow_obs::span!("rollout/collect");
            collect(agent, next_episode as u64, batch)?
        };
        let collect_ms = collect_start.elapsed().as_secs_f64() * 1e3;
        let (sim_after_ns, candgen_after_ns) = collect_phase_breakdown_ns();
        xrlflow_obs::counter!("rollout/episodes").add(round.episodes.len() as u64);
        for (spec, stats) in round.episodes {
            spec_tags.push(spec);
            report.episodes.push(stats);
        }
        let update_start = Instant::now();
        let stats = {
            let _span = xrlflow_obs::span!("rollout/update");
            update_parallel(trainer, agent, &mut round.buffer, &round.segments, num_workers)?
        };
        report.updates.push(stats);
        let update_ms = update_start.elapsed().as_secs_f64() * 1e3;
        report.timings.push(UpdateTiming {
            collect_ms,
            sim_ms: sim_after_ns.saturating_sub(sim_before_ns) as f64 / 1e6,
            candidate_gen_ms: candgen_after_ns.saturating_sub(candgen_before_ns) as f64 / 1e6,
            update_ms,
            update_workers: num_workers,
        });
        next_episode += batch;
        rounds += 1;
        if let Some(checkpoint) = loop_ctx.checkpoint {
            if rounds.is_multiple_of(checkpoint.every.max(1)) || next_episode >= episodes {
                write_train_state(trainer, agent, next_episode as u64, loop_ctx.base_seed, checkpoint)?;
            }
        }
    }
    Ok((report, spec_tags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn smoke_spec(config: &XrlflowConfig) -> EnvSpec {
        let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone())
    }

    fn assert_transitions_identical(
        a: &RolloutBuffer<Observation>,
        b: &RolloutBuffer<Observation>,
        label: &str,
    ) {
        assert_eq!(a.len(), b.len(), "{label}: transition counts differ");
        for (i, (ta, tb)) in a.transitions().iter().zip(b.transitions()).enumerate() {
            assert_eq!(ta.action, tb.action, "{label}: action differs at transition {i}");
            assert_eq!(
                ta.log_prob.to_bits(),
                tb.log_prob.to_bits(),
                "{label}: log-prob differs at transition {i}"
            );
            assert_eq!(ta.value.to_bits(), tb.value.to_bits(), "{label}: value differs at transition {i}");
            assert_eq!(ta.reward.to_bits(), tb.reward.to_bits(), "{label}: reward differs at transition {i}");
            assert_eq!(ta.done, tb.done, "{label}: done flag differs at transition {i}");
            assert_eq!(ta.action_mask, tb.action_mask, "{label}: action mask differs at transition {i}");
            assert_eq!(
                ta.observation.graph.canonical_hash(),
                tb.observation.graph.canonical_hash(),
                "{label}: observation graph differs at transition {i}"
            );
        }
    }

    #[test]
    fn parallel_collection_is_bit_identical_to_serial_for_1_2_4_workers() {
        // The tentpole determinism contract: W workers with the same
        // episode-seed schedule produce transition-for-transition the same
        // rollouts as the serial path, merged in episode order.
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let snapshot = agent.snapshot();
        let episodes = 4;
        let base_seed = 99;

        let serial = collect_serial(&agent, &spec, 0, episodes, base_seed);
        assert_eq!(serial.episodes.len(), episodes);

        for workers in [1usize, 2, 4] {
            let parallel =
                collect_parallel(&config, &snapshot, &spec, 0, episodes, base_seed, workers).unwrap();
            let label = format!("{workers} workers");
            assert_transitions_identical(&serial.buffer, &parallel.buffer, &label);
            assert_eq!(serial.episodes.len(), parallel.episodes.len(), "{label}: episode counts differ");
            for (ea, eb) in serial.episodes.iter().zip(&parallel.episodes) {
                assert_eq!(ea.total_reward.to_bits(), eb.total_reward.to_bits(), "{label}: reward differs");
                assert_eq!(ea.steps, eb.steps, "{label}: step counts differ");
                assert_eq!(ea.applied_rules, eb.applied_rules, "{label}: applied rules differ");
                assert_eq!(
                    ea.final_latency_ms.to_bits(),
                    eb.final_latency_ms.to_bits(),
                    "{label}: final latency differs"
                );
            }
        }
    }

    #[test]
    fn parallel_collection_feeds_bit_identical_ppo_updates() {
        // Running the identical update path over serially- and
        // parallel-collected buffers must produce the same TrainingStats —
        // the "no learned number changes" half of the contract.
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let episodes = 3;

        let serial = collect_serial(&agent, &spec, 0, episodes, 42);
        let parallel = collect_parallel(&config, &agent.snapshot(), &spec, 0, episodes, 42, 2).unwrap();

        let mut stats = Vec::new();
        for rollouts in [serial, parallel] {
            let mut trainer = Trainer::new(config.clone(), 7);
            let mut update_agent = XrlflowAgent::new(&config, 5);
            let mut buffer = rollouts.buffer;
            stats.push(trainer.update(&mut update_agent, &mut buffer));
        }
        assert_eq!(stats[0], stats[1], "TrainingStats diverge between serial and parallel collection");
    }

    #[test]
    fn parallel_trainer_matches_serial_trainer_bit_for_bit() {
        // End to end: same seed, same episode schedule, 1-worker vs
        // 2-worker ParallelTrainer runs land on identical parameters.
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut embeddings = Vec::new();
        for workers in [1usize, 2] {
            let mut cfg = config.clone();
            cfg.num_workers = workers;
            // Guard against an ambient XRLFLOW_WORKERS override skewing the
            // comparison.
            let mut trainer = ParallelTrainer::new(cfg.clone(), 11);
            trainer.num_workers = workers;
            let mut agent = XrlflowAgent::new(&cfg, 3);
            let report = trainer.train(&mut agent, &spec, cfg.training_episodes).unwrap();
            assert_eq!(report.episodes.len(), cfg.training_episodes);
            assert!(!report.updates.is_empty());
            assert_eq!(report.timings.len(), report.updates.len());
            assert!(
                report.timings.iter().all(|t| t.update_workers == workers),
                "timings must record the update phase's worker count"
            );
            embeddings.push(agent.embed_graph(&probe));
        }
        assert_eq!(
            embeddings[0].data(),
            embeddings[1].data(),
            "trained parameters diverge between worker counts"
        );
    }

    #[test]
    fn worker_count_is_clamped_to_episode_count() {
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let agent = XrlflowAgent::new(&config, 1);
        // More workers than episodes must not spawn idle threads or panic.
        let rollouts = collect_parallel(&config, &agent.snapshot(), &spec, 0, 2, 0, 16).unwrap();
        assert_eq!(rollouts.episodes.len(), 2);
    }

    #[test]
    fn snapshot_architecture_mismatch_is_reported() {
        let config = XrlflowConfig::smoke_test();
        let spec = smoke_spec(&config);
        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        let snapshot = XrlflowAgent::new(&wider, 0).snapshot();
        assert!(collect_parallel(&config, &snapshot, &spec, 0, 2, 0, 2).is_err());
    }

    #[test]
    fn episode_rng_seeds_are_stable_and_distinct() {
        assert_eq!(episode_rng_seed(7, 3), episode_rng_seed(7, 3));
        let seeds: std::collections::HashSet<u64> = (0..64).map(|e| episode_rng_seed(123, e)).collect();
        assert_eq!(seeds.len(), 64, "adjacent episodes must get decorrelated RNG seeds");
    }
}
