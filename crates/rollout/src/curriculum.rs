//! Multi-model curriculum training: one shared agent, the whole model zoo.
//!
//! The paper trains one agent per DNN; its stated promise — a GNN policy
//! that generalises across computation graphs — needs the opposite: a single
//! agent whose rollouts span many models. A [`Curriculum`] is an ordered
//! list of named [`EnvSpec`]s (one per model-zoo entry, each with its own
//! `Arc<Graph>` / `Arc<RuleSet>` / `Arc<InferenceSimulator>`); the worker
//! pool shards `(spec, episode)` work items across threads and the PPO
//! trainer consumes the merged multi-model buffer.
//!
//! The PR 3 determinism contract extends to the curriculum:
//!
//! * **`(spec, episode)` seed schedule.** Episode `e` of spec `s` always
//!   resets its environment with seed `e` (the same per-spec reset schedule
//!   as single-model training, so per-model numbers stay comparable) and
//!   samples actions from a fresh `XorShiftRng` seeded by
//!   [`curriculum_rng_seed`]`(base, s, e)` — a SplitMix64 mix of the run's
//!   base seed and the spec index, so two specs never share an action
//!   stream. The seed depends only on `(base, s, e)`, never on which worker
//!   runs the item.
//! * **Spec-then-episode sharding and merge.** Work items are flattened in
//!   spec-major order (`item = spec * episodes_per_spec + episode_offset`),
//!   workers take items round-robin (`item % W`), and the merge is ordered
//!   by item index — never completion order. Each spec's transitions are
//!   therefore one contiguous segment of the merged buffer
//!   ([`CurriculumRollouts::spec_ranges`]).
//! * **Per-spec advantage normalisation.** The trainer normalises
//!   advantages within each spec's segment
//!   (`Trainer::update_with_segments`), so a large graph's long
//!   high-variance episodes don't drown the gradient signal of the small
//!   models sharing the update.
//!
//! Hence [`collect_curriculum_parallel`] at any worker count is
//! transition-for-transition bit-identical to the serial oracle
//! [`collect_curriculum_serial`], and `ParallelTrainer::train_curriculum`
//! lands on bit-identical parameters for any worker count — both
//! differential-tested below.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use xrlflow_core::fault::{self, FaultPhase, WorkerFault};
use xrlflow_core::{collect_episode_with_rng, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_env::{EnvConfig, Environment, EpisodeStats, Observation};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::GraphError;
use xrlflow_rewrite::RuleSet;
use xrlflow_rl::RolloutBuffer;
use xrlflow_tensor::{ParamSnapshot, SnapshotError, XorShiftRng};

use crate::{splitmix64, EnvSpec, ItemFailure, RolloutError};

/// One named model of a curriculum: a display name (usually the model-zoo
/// name) plus the shared-component environment spec built from it.
#[derive(Debug, Clone)]
pub struct CurriculumEntry {
    /// Human-readable name, e.g. `"SqueezeNet"`.
    pub name: String,
    /// The environment spec workers build their environments from.
    pub spec: EnvSpec,
}

/// An ordered set of models a single shared agent trains across.
///
/// Entries are cheap to clone and to split ([`Curriculum::hold_out`]): every
/// heavyweight component of an [`EnvSpec`] sits behind an `Arc`.
#[derive(Debug, Clone, Default)]
pub struct Curriculum {
    entries: Vec<CurriculumEntry>,
}

impl Curriculum {
    /// Creates an empty curriculum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named spec.
    pub fn push(&mut self, name: impl Into<String>, spec: EnvSpec) {
        self.entries.push(CurriculumEntry { name: name.into(), spec });
    }

    /// Builder-style [`Curriculum::push`].
    #[must_use]
    pub fn with_entry(mut self, name: impl Into<String>, spec: EnvSpec) -> Self {
        self.push(name, spec);
        self
    }

    /// Builds a curriculum straight from the model zoo: one entry per kind,
    /// each with its own graph and latency simulator over the given device
    /// profile, all sharing the standard rule set semantics (each spec gets
    /// its own `Arc<RuleSet>`; rules are stateless).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction failures from the model builders.
    pub fn from_model_zoo(
        kinds: &[ModelKind],
        scale: ModelScale,
        profile: DeviceProfile,
        env: EnvConfig,
    ) -> Result<Self, GraphError> {
        let mut curriculum = Self::new();
        for &kind in kinds {
            let graph = build_model(kind, scale)?;
            let spec = EnvSpec::new(graph, RuleSet::standard(), profile.clone(), env.clone());
            curriculum.push(kind.name(), spec);
        }
        Ok(curriculum)
    }

    /// The entries, in curriculum order.
    pub fn entries(&self) -> &[CurriculumEntry] {
        &self.entries
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the curriculum holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry names, in curriculum order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Splits off entry `index` for a train-on-N-1 / evaluate-on-held-out
    /// generalisation run: returns the remaining curriculum (order
    /// preserved) and the held-out entry.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn hold_out(&self, index: usize) -> (Curriculum, CurriculumEntry) {
        assert!(index < self.entries.len(), "hold-out index {index} out of bounds");
        let mut rest = self.clone();
        let held_out = rest.entries.remove(index);
        (rest, held_out)
    }
}

/// The deterministic action-RNG seed of episode `episode` of spec `spec`.
///
/// The curriculum half of the determinism contract: every path that collects
/// this `(spec, episode)` work item under base seed `base_seed` — the serial
/// oracle or any worker of any pool size — derives its `XorShiftRng` from
/// this value. The spec index is folded in through a SplitMix64 mix so no
/// two specs share an action stream.
pub fn curriculum_rng_seed(base_seed: u64, spec: usize, episode: u64) -> u64 {
    let spec_base = splitmix64(base_seed ^ (spec as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    crate::episode_rng_seed(spec_base, episode)
}

/// The fault-injection work-item id of episode `episode` of curriculum spec
/// `spec` — what a [`xrlflow_core::fault::FaultPlan`] targets in the
/// [`FaultPhase::CurriculumCollect`] phase, and what a
/// `RolloutError::WorkerFault` reports back.
///
/// The round-local flattened item index is ambiguous across rounds (item 0
/// means a different episode every round), so the id packs the globally
/// unique `(spec, episode)` pair instead: `spec << 32 | episode`.
pub fn curriculum_fault_item(spec: usize, episode: u64) -> u64 {
    ((spec as u64) << 32) | (episode & 0xFFFF_FFFF)
}

/// One collected episode of a curriculum round: which spec it belongs to,
/// its episode index, and the usual per-episode statistics.
#[derive(Debug, Clone)]
pub struct CurriculumEpisode {
    /// Index into the curriculum's entries.
    pub spec: usize,
    /// The episode index (also the environment reset seed).
    pub episode: u64,
    /// Statistics of the finished episode.
    pub stats: EpisodeStats,
}

/// The merged result of one curriculum collection round.
///
/// Transitions are ordered spec-then-episode (the flattened work-item
/// order), so each spec's contribution is one contiguous range of the
/// buffer — exactly what per-spec advantage normalisation consumes.
#[derive(Debug, Clone, Default)]
pub struct CurriculumRollouts {
    /// Every transition of the round, in spec-then-episode order.
    pub buffer: RolloutBuffer<Observation>,
    /// Per-episode records, in the same order.
    pub episodes: Vec<CurriculumEpisode>,
    /// The transition range of each spec in [`CurriculumRollouts::buffer`],
    /// one entry per curriculum model, in curriculum order. The ranges
    /// partition the buffer.
    pub spec_ranges: Vec<Range<usize>>,
}

/// The retained serial curriculum collection path: for each spec in
/// curriculum order, episodes `first_episode .. first_episode +
/// episodes_per_spec` collected one after another against the live agent.
///
/// This is the differential-testing oracle for
/// [`collect_curriculum_parallel`] — deliberately free of the supervised
/// pool's catch/retry machinery, so the differential suites compare the
/// fault-tolerant engine against a path that cannot mask a panic.
pub fn collect_curriculum_serial(
    agent: &XrlflowAgent,
    curriculum: &Curriculum,
    first_episode: u64,
    episodes_per_spec: usize,
    base_seed: u64,
) -> CurriculumRollouts {
    let mut out = CurriculumRollouts::default();
    for (spec, entry) in curriculum.entries().iter().enumerate() {
        let start = out.buffer.len();
        let mut env = entry.spec.build_env();
        for episode in first_episode..first_episode + episodes_per_spec as u64 {
            let mut rng = XorShiftRng::new(curriculum_rng_seed(base_seed, spec, episode));
            let stats = collect_episode_with_rng(agent, &mut env, &mut rng, &mut out.buffer, episode);
            out.episodes.push(CurriculumEpisode { spec, episode, stats });
        }
        out.spec_ranges.push(start..out.buffer.len());
    }
    out
}

/// Runs one supervised curriculum work item: trips the fault-injection hook
/// (item id = [`curriculum_fault_item`]), then collects episode
/// `first_episode + item % episodes_per_spec` of spec
/// `item / episodes_per_spec` under `catch_unwind` so a panic becomes a
/// queueable [`ItemFailure`] instead of tearing down the pool. On failure
/// the spec's cached environment is dropped (a panic leaves its state
/// unspecified; a rebuilt one is bit-identical because episodes reset
/// first).
#[allow(clippy::too_many_arguments)]
fn run_curriculum_item(
    replica: &XrlflowAgent,
    curriculum: &Curriculum,
    envs: &mut [Option<Environment>],
    item: usize,
    episodes_per_spec: usize,
    first_episode: u64,
    base_seed: u64,
    attempt: u32,
) -> Result<(usize, RolloutBuffer<Observation>, CurriculumEpisode), ItemFailure> {
    let spec = item / episodes_per_spec;
    let episode = first_episode + (item % episodes_per_spec) as u64;
    let result = catch_unwind(AssertUnwindSafe(|| {
        fault::trip(FaultPhase::CurriculumCollect, curriculum_fault_item(spec, episode), attempt);
        // One lazily-built environment per spec; reset() makes reuse across
        // episodes bit-identical to a fresh environment.
        let env = envs[spec].get_or_insert_with(|| curriculum.entries()[spec].spec.build_env());
        let mut buffer = RolloutBuffer::new();
        let mut rng = XorShiftRng::new(curriculum_rng_seed(base_seed, spec, episode));
        let stats = collect_episode_with_rng(replica, env, &mut rng, &mut buffer, episode);
        (item, buffer, CurriculumEpisode { spec, episode, stats })
    }));
    result.map_err(|payload| {
        xrlflow_obs::counter!("rollout/worker_panics").inc();
        envs[spec] = None;
        ItemFailure { item: item as u64, payload: fault::panic_payload_text(payload.as_ref()) }
    })
}

/// Re-runs failed curriculum items on the calling thread, in item order,
/// until each succeeds or the retry budget is exhausted. Seeds depend only
/// on `(base_seed, spec, episode)`, so a retried item is bit-identical to a
/// first-attempt success on any worker.
fn retry_curriculum_failures(
    replica: &XrlflowAgent,
    curriculum: &Curriculum,
    episodes_per_spec: usize,
    first_episode: u64,
    base_seed: u64,
    mut failures: Vec<ItemFailure>,
    out: &mut Vec<(usize, RolloutBuffer<Observation>, CurriculumEpisode)>,
) -> Result<(), RolloutError> {
    failures.sort_by_key(|f| f.item);
    let budget = crate::retry_budget();
    let mut envs: Vec<Option<Environment>> = (0..curriculum.len()).map(|_| None).collect();
    for failure in failures {
        let item = failure.item as usize;
        let spec = item / episodes_per_spec;
        let episode = first_episode + (item % episodes_per_spec) as u64;
        let mut last = failure;
        let mut attempt = 1u32;
        loop {
            if attempt > budget {
                return Err(WorkerFault {
                    phase: FaultPhase::CurriculumCollect,
                    item: curriculum_fault_item(spec, episode),
                    attempts: attempt,
                    payload: last.payload,
                }
                .into());
            }
            xrlflow_obs::counter!("rollout/item_retries").inc();
            match run_curriculum_item(
                replica,
                curriculum,
                &mut envs,
                item,
                episodes_per_spec,
                first_episode,
                base_seed,
                attempt,
            ) {
                Ok(done) => {
                    out.push(done);
                    break;
                }
                Err(f) => {
                    last = f;
                    attempt += 1;
                }
            }
        }
    }
    Ok(())
}

/// Collects one curriculum round — `episodes_per_spec` episodes for every
/// spec — with a supervised pool of `num_workers` threads sharded across the
/// flattened `(spec, episode)` work items.
///
/// Each worker builds a read-only agent replica from `snapshot` and one
/// environment per spec it touches (lazily, over the spec's shared `Arc`s),
/// then round-robins over the item indices assigned to it (`item % W`).
/// Results are merged **by item index** (spec-then-episode), so the output
/// is transition-for-transition bit-identical to
/// [`collect_curriculum_serial`] over the same range and base seed, for any
/// worker count — one worker runs the same supervised path serially.
///
/// The pool is fault-tolerant: each item runs under `catch_unwind`, a
/// panicking item is re-queued and deterministically retried on the calling
/// thread (identical seeds → identical transitions), and a worker panic
/// never aborts the process.
///
/// # Errors
///
/// * [`RolloutError::Snapshot`] when `snapshot` does not match the
///   architecture described by `config`.
/// * [`RolloutError::WorkerFault`] when an item kept panicking past the
///   retry budget (`XRLFLOW_ROLLOUT_RETRIES`, default 2); the reported item
///   id is [`curriculum_fault_item`]`(spec, episode)`.
pub fn collect_curriculum_parallel(
    config: &XrlflowConfig,
    snapshot: &ParamSnapshot,
    curriculum: &Curriculum,
    first_episode: u64,
    episodes_per_spec: usize,
    base_seed: u64,
    num_workers: usize,
) -> Result<CurriculumRollouts, RolloutError> {
    let num_specs = curriculum.len();
    let total_items = num_specs * episodes_per_spec;
    let num_workers = num_workers.clamp(1, total_items.max(1));
    type WorkerOutput = Vec<(usize, RolloutBuffer<Observation>, CurriculumEpisode)>;
    let mut per_item: WorkerOutput;
    let failures: Vec<ItemFailure>;
    let replica = XrlflowAgent::from_snapshot(config, snapshot)?;

    if num_workers <= 1 {
        // Degenerate pool: the same supervised loop, serially in the calling
        // thread — no thread spawn, but identical fault semantics.
        let mut envs: Vec<Option<Environment>> = (0..num_specs).map(|_| None).collect();
        per_item = Vec::with_capacity(total_items);
        let mut failed = Vec::new();
        for item in 0..total_items {
            match run_curriculum_item(
                &replica,
                curriculum,
                &mut envs,
                item,
                episodes_per_spec,
                first_episode,
                base_seed,
                0,
            ) {
                Ok(done) => per_item.push(done),
                Err(failure) => failed.push(failure),
            }
        }
        failures = failed;
    } else {
        let meter = crate::PoolMeter::start(num_workers);
        let shared_failures: Mutex<Vec<ItemFailure>> = Mutex::new(Vec::new());
        per_item = std::thread::scope(|scope| -> Result<WorkerOutput, SnapshotError> {
            let mut handles = Vec::with_capacity(num_workers);
            for worker in 0..num_workers {
                let shared_failures = &shared_failures;
                handles.push(scope.spawn(move || -> Result<WorkerOutput, SnapshotError> {
                    let _busy = xrlflow_obs::span!("rollout/worker_busy");
                    let replica = XrlflowAgent::from_snapshot(config, snapshot)?;
                    let mut envs: Vec<Option<Environment>> = (0..num_specs).map(|_| None).collect();
                    let mut out = Vec::new();
                    let mut item = worker;
                    while item < total_items {
                        match run_curriculum_item(
                            &replica,
                            curriculum,
                            &mut envs,
                            item,
                            episodes_per_spec,
                            first_episode,
                            base_seed,
                            0,
                        ) {
                            Ok(done) => out.push(done),
                            Err(failure) => {
                                shared_failures.lock().unwrap_or_else(PoisonError::into_inner).push(failure)
                            }
                        }
                        item += num_workers;
                    }
                    Ok(out)
                }));
            }
            let mut merged = Vec::with_capacity(total_items);
            for handle in handles {
                merged
                    .extend(handle.join().expect("curriculum rollout worker panicked outside a work item")?);
            }
            Ok(merged)
        })?;
        meter.finish();
        failures = shared_failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    }

    if !failures.is_empty() {
        retry_curriculum_failures(
            &replica,
            curriculum,
            episodes_per_spec,
            first_episode,
            base_seed,
            failures,
            &mut per_item,
        )?;
    }

    // Ordered merge: item index == spec-then-episode order, the curriculum
    // half of the determinism contract.
    per_item.sort_by_key(|(item, _, _)| *item);
    let mut out = CurriculumRollouts::default();
    let mut next_item = 0;
    for spec in 0..num_specs {
        let start = out.buffer.len();
        for _ in 0..episodes_per_spec {
            let (item, buffer, episode) = &mut per_item[next_item];
            debug_assert_eq!(*item, next_item, "work items must merge gap-free in item order");
            debug_assert_eq!(episode.spec, spec);
            out.buffer.append(buffer);
            out.episodes.push(episode.clone());
            next_item += 1;
        }
        out.spec_ranges.push(start..out.buffer.len());
    }
    Ok(out)
}

/// Per-model result of greedily evaluating an agent on one curriculum entry.
#[derive(Debug, Clone)]
pub struct ModelEvaluation {
    /// The curriculum entry's name.
    pub name: String,
    /// Statistics of the greedy episode.
    pub stats: EpisodeStats,
}

impl ModelEvaluation {
    /// End-to-end speedup of the optimised graph, in percent.
    pub fn speedup_percent(&self) -> f64 {
        self.stats.speedup_percent()
    }
}

/// Evaluates a (trained) agent across every model of a curriculum: one
/// greedy episode per entry, each reset with `seed`.
///
/// This is the measurement half of a train-on-N-1 / evaluate-on-held-out
/// generalisation run: train a shared agent with
/// `ParallelTrainer::train_curriculum` on a curriculum missing one model
/// ([`Curriculum::hold_out`]), then evaluate it — without any further
/// training — on a curriculum containing the held-out model. Greedy action
/// selection consumes no randomness, so the result is deterministic in
/// `(agent parameters, curriculum, seed)`.
pub fn evaluate_curriculum(agent: &XrlflowAgent, curriculum: &Curriculum, seed: u64) -> Vec<ModelEvaluation> {
    let mut rng = XorShiftRng::new(seed);
    curriculum
        .entries()
        .iter()
        .map(|entry| {
            let mut env = entry.spec.build_env();
            let mut obs = env.reset(seed);
            loop {
                let decision = agent.act(&obs, &mut rng, true);
                let result = env.step(&obs, decision.action);
                if result.done {
                    break;
                }
                obs = result.observation;
            }
            ModelEvaluation { name: entry.name.clone(), stats: env.episode_stats() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParallelTrainer;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn zoo_curriculum(config: &XrlflowConfig, kinds: &[ModelKind]) -> Curriculum {
        Curriculum::from_model_zoo(kinds, ModelScale::Bench, DeviceProfile::gtx1080(), config.env.clone())
            .unwrap()
    }

    fn smoke_curriculum(config: &XrlflowConfig) -> Curriculum {
        zoo_curriculum(config, &[ModelKind::SqueezeNet, ModelKind::Bert])
    }

    fn assert_rollouts_identical(a: &CurriculumRollouts, b: &CurriculumRollouts, label: &str) {
        assert_eq!(a.buffer.len(), b.buffer.len(), "{label}: transition counts differ");
        for (i, (ta, tb)) in a.buffer.transitions().iter().zip(b.buffer.transitions()).enumerate() {
            assert_eq!(ta.action, tb.action, "{label}: action differs at transition {i}");
            assert_eq!(
                ta.log_prob.to_bits(),
                tb.log_prob.to_bits(),
                "{label}: log-prob differs at transition {i}"
            );
            assert_eq!(ta.value.to_bits(), tb.value.to_bits(), "{label}: value differs at transition {i}");
            assert_eq!(ta.reward.to_bits(), tb.reward.to_bits(), "{label}: reward differs at transition {i}");
            assert_eq!(ta.done, tb.done, "{label}: done flag differs at transition {i}");
            assert_eq!(
                ta.observation.graph.canonical_hash(),
                tb.observation.graph.canonical_hash(),
                "{label}: observation graph differs at transition {i}"
            );
        }
        assert_eq!(a.spec_ranges, b.spec_ranges, "{label}: spec ranges differ");
        assert_eq!(a.episodes.len(), b.episodes.len(), "{label}: episode counts differ");
        for (ea, eb) in a.episodes.iter().zip(&b.episodes) {
            assert_eq!(ea.spec, eb.spec, "{label}: spec assignment differs");
            assert_eq!(ea.episode, eb.episode, "{label}: episode index differs");
            assert_eq!(
                ea.stats.total_reward.to_bits(),
                eb.stats.total_reward.to_bits(),
                "{label}: episode reward differs"
            );
            assert_eq!(ea.stats.applied_rules, eb.stats.applied_rules, "{label}: applied rules differ");
        }
    }

    #[test]
    fn curriculum_parallel_collection_is_bit_identical_to_serial_for_1_2_4_workers() {
        // The tentpole determinism contract, extended to (spec, episode):
        // any worker count replays the same seed schedule and merges
        // spec-then-episode, so the rollouts are bit-identical to the
        // serial curriculum oracle.
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let agent = XrlflowAgent::new(&config, 5);
        let snapshot = agent.snapshot();
        let episodes_per_spec = 2;
        let base_seed = 99;

        let serial = collect_curriculum_serial(&agent, &curriculum, 0, episodes_per_spec, base_seed);
        assert_eq!(serial.episodes.len(), curriculum.len() * episodes_per_spec);

        for workers in [1usize, 2, 4] {
            let parallel = collect_curriculum_parallel(
                &config,
                &snapshot,
                &curriculum,
                0,
                episodes_per_spec,
                base_seed,
                workers,
            )
            .unwrap();
            assert_rollouts_identical(&serial, &parallel, &format!("{workers} workers"));
        }
    }

    #[test]
    fn spec_ranges_partition_the_merged_buffer_in_spec_order() {
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let agent = XrlflowAgent::new(&config, 3);
        let rollouts = collect_curriculum_serial(&agent, &curriculum, 0, 2, 7);

        assert_eq!(rollouts.spec_ranges.len(), curriculum.len());
        let mut covered = 0;
        for range in &rollouts.spec_ranges {
            assert_eq!(range.start, covered, "spec ranges must be contiguous");
            assert!(range.end > range.start, "every spec collected at least one transition");
            covered = range.end;
        }
        assert_eq!(covered, rollouts.buffer.len(), "spec ranges must cover the whole buffer");
        // Episodes are ordered spec-then-episode.
        let order: Vec<(usize, u64)> = rollouts.episodes.iter().map(|e| (e.spec, e.episode)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn curriculum_seeds_differ_across_specs_and_episodes() {
        let mut seeds = std::collections::HashSet::new();
        for spec in 0..8 {
            for episode in 0..8 {
                seeds.insert(curriculum_rng_seed(42, spec, episode));
            }
        }
        assert_eq!(seeds.len(), 64, "(spec, episode) pairs must get decorrelated RNG seeds");
        assert_eq!(curriculum_rng_seed(42, 3, 5), curriculum_rng_seed(42, 3, 5));
    }

    #[test]
    fn curriculum_trainer_lands_on_bit_identical_parameters_for_any_worker_count() {
        // End to end: a multi-model ParallelTrainer run is bit-identical
        // across worker counts — merged buffers, per-spec normalisation and
        // the update path all preserve the contract.
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let mut embeddings = Vec::new();
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut cfg = config.clone();
            cfg.num_workers = workers;
            let mut trainer = ParallelTrainer::new(cfg.clone(), 11);
            trainer.set_num_workers(workers);
            let mut agent = XrlflowAgent::new(&cfg, 3);
            let report = trainer.train_curriculum(&mut agent, &curriculum, 2).unwrap();
            assert_eq!(report.episodes.len(), curriculum.len() * 2);
            assert!(!report.updates.is_empty());
            embeddings.push(agent.embed_graph(&probe));
            reports.push(report);
        }
        for (i, emb) in embeddings.iter().enumerate().skip(1) {
            assert_eq!(
                embeddings[0].data(),
                emb.data(),
                "trained parameters diverge between 1 worker and run {i}"
            );
        }
        // The per-model breakdown is identical too (it derives from the
        // deterministic episodes).
        for report in &reports {
            assert_eq!(report.per_model.len(), 2);
            assert_eq!(report.per_model[0].name, "SqueezeNet");
            assert_eq!(report.per_model[1].name, "BERT");
            for breakdown in &report.per_model {
                assert_eq!(breakdown.episodes, 2);
                assert!(breakdown.mean_reward.is_finite());
                assert!(breakdown.mean_final_latency_ms > 0.0);
            }
        }
    }

    #[test]
    fn held_out_generalisation_run_evaluates_the_unseen_model() {
        // Train on N-1 models, evaluate on all N: the held-out model is
        // optimised by a policy that never saw it during training.
        let config = XrlflowConfig::smoke_test();
        let full = zoo_curriculum(&config, &[ModelKind::SqueezeNet, ModelKind::Bert]);
        let (train, held_out) = full.hold_out(1);
        assert_eq!(train.len(), 1);
        assert_eq!(held_out.name, "BERT");

        let mut trainer = ParallelTrainer::new(config.clone(), 7);
        let mut agent = XrlflowAgent::new(&config, 1);
        trainer.train_curriculum(&mut agent, &train, 2).unwrap();

        let evals = evaluate_curriculum(&agent, &full, 0);
        assert_eq!(evals.len(), 2);
        for eval in &evals {
            assert!(eval.stats.final_latency_ms > 0.0, "{} produced no latency", eval.name);
            assert!(eval.speedup_percent().is_finite());
        }
        // Determinism: greedy evaluation is reproducible.
        let again = evaluate_curriculum(&agent, &full, 0);
        for (a, b) in evals.iter().zip(&again) {
            assert_eq!(a.stats.total_reward.to_bits(), b.stats.total_reward.to_bits());
            assert_eq!(a.stats.applied_rules, b.stats.applied_rules);
        }
    }

    #[test]
    fn worker_count_is_clamped_to_the_item_count() {
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let agent = XrlflowAgent::new(&config, 1);
        let rollouts =
            collect_curriculum_parallel(&config, &agent.snapshot(), &curriculum, 0, 1, 0, 64).unwrap();
        assert_eq!(rollouts.episodes.len(), 2);
    }

    #[test]
    fn snapshot_architecture_mismatch_is_reported() {
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        let snapshot = XrlflowAgent::new(&wider, 0).snapshot();
        assert!(collect_curriculum_parallel(&config, &snapshot, &curriculum, 0, 1, 0, 2).is_err());
    }

    #[test]
    fn mismatched_agent_is_rejected_at_any_worker_count() {
        // The error contract must not depend on the worker count: the
        // 1-worker fast path never builds a replica, so the trainer
        // validates the agent up front.
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        for workers in [1usize, 2] {
            let mut trainer = ParallelTrainer::new(config.clone(), 0);
            trainer.set_num_workers(workers);
            let mut agent = XrlflowAgent::new(&wider, 0);
            assert!(
                trainer.train_curriculum(&mut agent, &curriculum, 1).is_err(),
                "{workers}-worker train_curriculum accepted a mismatched agent"
            );
        }
    }

    #[test]
    fn mid_curriculum_checkpoint_resumes_bit_identically_across_worker_counts() {
        // Checkpoint after the first curriculum round, then resume from the
        // checkpoint with different worker counts: the resumed runs must
        // land on bit-identical parameters (the checkpoint is a faithful
        // mid-curriculum cut, and resumption preserves the determinism
        // contract).
        let config = XrlflowConfig::smoke_test();
        let curriculum = smoke_curriculum(&config);
        let probe = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();

        let mut trainer = ParallelTrainer::new(config.clone(), 13);
        let mut agent = XrlflowAgent::new(&config, 4);
        // One update round (update_frequency = 2 episodes per spec).
        trainer.train_curriculum(&mut agent, &curriculum, 2).unwrap();
        let path = std::env::temp_dir().join("xrlflow_curriculum_ckpt/mid.snap");
        trainer.save_checkpoint(&agent, &path).unwrap();

        // The checkpoint round-trips bit-identically under the curriculum.
        let mut restored = XrlflowAgent::new(&config, 77);
        trainer.load_checkpoint(&mut restored, &path).unwrap();
        assert_eq!(agent.embed_graph(&probe).data(), restored.embed_graph(&probe).data());

        // Resuming the curriculum from the checkpoint is worker-count
        // independent: both resumed runs continue with fresh optimiser state
        // over the same parameters and the same (spec, episode) schedule.
        let mut embeddings = Vec::new();
        for workers in [1usize, 2] {
            let mut resumed = XrlflowAgent::new(&config, 0);
            let mut resumed_trainer = ParallelTrainer::new(config.clone(), 29);
            resumed_trainer.set_num_workers(workers);
            resumed_trainer.load_checkpoint(&mut resumed, &path).unwrap();
            resumed_trainer.train_curriculum(&mut resumed, &curriculum, 2).unwrap();
            embeddings.push(resumed.embed_graph(&probe));
        }
        assert_eq!(
            embeddings[0].data(),
            embeddings[1].data(),
            "resumed curriculum runs diverge between worker counts"
        );
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn checkpoint_from_a_different_architecture_fails_with_a_named_tensor_mismatch() {
        // A checkpoint captured under a different agent architecture (e.g. a
        // curriculum deployment that widened the encoder) must fail cleanly,
        // name the offending tensor, and leave the agent untouched.
        let config = XrlflowConfig::smoke_test();
        let mut wider = config.clone();
        wider.encoder.hidden_dim *= 2;
        let path = std::env::temp_dir().join("xrlflow_curriculum_ckpt_mismatch/wider.snap");
        XrlflowAgent::new(&wider, 0).snapshot().save(&path).unwrap();

        let trainer = ParallelTrainer::new(config.clone(), 0);
        let mut victim = XrlflowAgent::new(&config, 9);
        let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let before = victim.embed_graph(&probe);
        let err = trainer.load_checkpoint(&mut victim, &path).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("parameter") && message.contains('"'),
            "mismatch error must name the offending tensor, got: {message}"
        );
        assert_eq!(victim.embed_graph(&probe).data(), before.data(), "failed load must not write");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn empty_curriculum_trains_vacuously() {
        let config = XrlflowConfig::smoke_test();
        let mut trainer = ParallelTrainer::new(config.clone(), 0);
        let mut agent = XrlflowAgent::new(&config, 0);
        let report = trainer.train_curriculum(&mut agent, &Curriculum::new(), 3).unwrap();
        assert!(report.episodes.is_empty());
        assert!(report.updates.is_empty());
        assert!(report.per_model.is_empty());
    }
}
