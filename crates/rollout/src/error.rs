//! The typed failure surface of the parallel training engine.

use std::fmt;

use xrlflow_core::fault::WorkerFault;
use xrlflow_tensor::SnapshotError;

/// Everything that can go wrong inside the parallel training engine.
///
/// The supervised worker pools turn a panicking work item into a queued
/// retry, so a single fault never reaches the caller; only structural
/// problems do — a snapshot that does not match the configured architecture,
/// an item that kept panicking past its retry budget, or a failed durable
/// checkpoint write.
#[derive(Debug)]
pub enum RolloutError {
    /// A parameter snapshot did not match the configured agent architecture.
    Snapshot(SnapshotError),
    /// A work item kept panicking until the supervised pool's retry budget
    /// (`XRLFLOW_ROLLOUT_RETRIES`, default 2) was exhausted. Carries the
    /// phase, the work-item id (numbered as in
    /// [`xrlflow_core::fault::FaultSpec`]), the total attempt count and the
    /// final panic payload text.
    WorkerFault(WorkerFault),
    /// Writing or pruning a durable `TrainState` checkpoint failed. Training
    /// stops at the failing round; the previously written checkpoints are
    /// intact (states are written atomically).
    Checkpoint(std::io::Error),
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            RolloutError::WorkerFault(e) => write!(f, "worker fault: {e}"),
            RolloutError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for RolloutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RolloutError::Snapshot(e) => Some(e),
            RolloutError::WorkerFault(e) => Some(e),
            RolloutError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for RolloutError {
    fn from(e: SnapshotError) -> Self {
        RolloutError::Snapshot(e)
    }
}

impl From<WorkerFault> for RolloutError {
    fn from(e: WorkerFault) -> Self {
        RolloutError::WorkerFault(e)
    }
}
