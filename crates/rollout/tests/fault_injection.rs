//! Fault-injection differential suites for the supervised worker pools.
//!
//! Every test serialises on the fault-plan install lock (fault-free
//! baselines install an *empty* plan, which arms nothing but still takes the
//! lock), so scheduled faults can never leak between concurrently running
//! tests. The core claims under test:
//!
//! * a run with injected panics in any phase — collect, curriculum collect,
//!   parallel update — retries deterministically and lands **bit-identical**
//!   to a fault-free run, at 1, 2 and 4 workers;
//! * a work item that keeps panicking past the retry budget surfaces as the
//!   typed `RolloutError::WorkerFault`, never a process abort;
//! * every injected fault is counted (`rollout/worker_panics`,
//!   `rollout/item_retries`).

use xrlflow_core::fault::{pending_faults, FaultPhase, FaultPlan};
use xrlflow_core::{Trainer, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_env::Observation;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_rl::RolloutBuffer;
use xrlflow_rollout::{
    collect_curriculum_parallel, collect_curriculum_serial, collect_parallel, collect_serial,
    curriculum_fault_item, update_parallel, Curriculum, EnvSpec, ParallelTrainer, RolloutError,
};

fn smoke_spec(config: &XrlflowConfig) -> EnvSpec {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone())
}

fn smoke_curriculum(config: &XrlflowConfig) -> Curriculum {
    Curriculum::from_model_zoo(
        &[ModelKind::SqueezeNet, ModelKind::Bert],
        ModelScale::Bench,
        DeviceProfile::gtx1080(),
        config.env.clone(),
    )
    .unwrap()
}

fn probe() -> Graph {
    build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap()
}

fn assert_buffers_identical(a: &RolloutBuffer<Observation>, b: &RolloutBuffer<Observation>, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: transition counts differ");
    for (i, (ta, tb)) in a.transitions().iter().zip(b.transitions()).enumerate() {
        assert_eq!(ta.action, tb.action, "{label}: action differs at transition {i}");
        assert_eq!(
            ta.log_prob.to_bits(),
            tb.log_prob.to_bits(),
            "{label}: log-prob differs at transition {i}"
        );
        assert_eq!(ta.value.to_bits(), tb.value.to_bits(), "{label}: value differs at transition {i}");
        assert_eq!(ta.reward.to_bits(), tb.reward.to_bits(), "{label}: reward differs at transition {i}");
        assert_eq!(ta.done, tb.done, "{label}: done flag differs at transition {i}");
    }
}

#[test]
fn collect_faults_retry_bit_identically_at_1_2_4_workers() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let agent = XrlflowAgent::new(&config, 5);
    let snapshot = agent.snapshot();

    let baseline = {
        let _quiet = FaultPlan::new().install();
        collect_serial(&agent, &spec, 0, 4, 99)
    };

    for workers in [1usize, 2, 4] {
        // Episode 1 fails once, episode 3 fails twice — both inside the
        // default retry budget of 2.
        let guard = FaultPlan::new()
            .panic_on(FaultPhase::Collect, 1, 0)
            .panic_on(FaultPhase::Collect, 3, 0)
            .panic_on(FaultPhase::Collect, 3, 1)
            .install();
        let collected = collect_parallel(&config, &snapshot, &spec, 0, 4, 99, workers).unwrap();
        assert_eq!(pending_faults(), 0, "{workers} workers: every scheduled fault must fire");
        drop(guard);

        let label = format!("{workers} workers under collect faults");
        assert_buffers_identical(&baseline.buffer, &collected.buffer, &label);
        assert_eq!(baseline.episodes.len(), collected.episodes.len(), "{label}: episode counts differ");
        for (ea, eb) in baseline.episodes.iter().zip(&collected.episodes) {
            assert_eq!(ea.total_reward.to_bits(), eb.total_reward.to_bits(), "{label}: reward differs");
            assert_eq!(ea.applied_rules, eb.applied_rules, "{label}: applied rules differ");
        }
    }
}

#[test]
fn curriculum_faults_retry_bit_identically_at_1_2_4_workers() {
    let config = XrlflowConfig::smoke_test();
    let curriculum = smoke_curriculum(&config);
    let agent = XrlflowAgent::new(&config, 5);
    let snapshot = agent.snapshot();

    let baseline = {
        let _quiet = FaultPlan::new().install();
        collect_curriculum_serial(&agent, &curriculum, 0, 2, 99)
    };

    for workers in [1usize, 2, 4] {
        let guard = FaultPlan::new()
            .panic_on(FaultPhase::CurriculumCollect, curriculum_fault_item(0, 1), 0)
            .panic_on(FaultPhase::CurriculumCollect, curriculum_fault_item(1, 0), 0)
            .install();
        let collected =
            collect_curriculum_parallel(&config, &snapshot, &curriculum, 0, 2, 99, workers).unwrap();
        assert_eq!(pending_faults(), 0, "{workers} workers: every scheduled fault must fire");
        drop(guard);

        let label = format!("{workers} workers under curriculum faults");
        assert_buffers_identical(&baseline.buffer, &collected.buffer, &label);
        assert_eq!(baseline.spec_ranges, collected.spec_ranges, "{label}: spec ranges differ");
        for (ea, eb) in baseline.episodes.iter().zip(&collected.episodes) {
            assert_eq!((ea.spec, ea.episode), (eb.spec, eb.episode), "{label}: item order differs");
            assert_eq!(
                ea.stats.total_reward.to_bits(),
                eb.stats.total_reward.to_bits(),
                "{label}: reward differs"
            );
        }
    }
}

#[test]
fn update_faults_retry_bit_identically_at_1_2_4_workers() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let agent = XrlflowAgent::new(&config, 5);
    let rollouts = {
        let _quiet = FaultPlan::new().install();
        collect_serial(&agent, &spec, 0, 3, 42)
    };
    let probe = probe();

    // One update with fresh, identically seeded trainer + agent per run.
    let run_update = |workers: usize, plan: FaultPlan| {
        let guard = plan.install();
        let mut trainer = Trainer::new(config.clone(), 7);
        let mut update_agent = XrlflowAgent::new(&config, 5);
        let mut buffer = rollouts.buffer.clone();
        let stats = update_parallel(&mut trainer, &mut update_agent, &mut buffer, &[], workers).unwrap();
        assert_eq!(pending_faults(), 0, "{workers} workers: every scheduled fault must fire");
        drop(guard);
        (stats, update_agent.embed_graph(&probe).data().to_vec())
    };

    let (baseline_stats, baseline_params) = run_update(2, FaultPlan::new());
    for workers in [1usize, 2, 4] {
        // Minibatch position 0 fails twice, position 2 once.
        let plan = FaultPlan::new()
            .panic_on(FaultPhase::Update, 0, 0)
            .panic_on(FaultPhase::Update, 0, 1)
            .panic_on(FaultPhase::Update, 2, 0);
        let (stats, params) = run_update(workers, plan);
        assert_eq!(baseline_stats, stats, "{workers}-worker TrainingStats diverge under update faults");
        let bits_equal = baseline_params.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "{workers}-worker post-update parameters diverge under update faults");
    }
}

#[test]
fn end_to_end_training_with_faults_in_every_phase_is_bit_identical() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let curriculum = smoke_curriculum(&config);
    let probe = probe();

    let train_single = |workers: usize| {
        let mut trainer = ParallelTrainer::new(config.clone(), 11);
        trainer.set_num_workers(workers);
        trainer.set_checkpointing(None);
        let mut agent = XrlflowAgent::new(&config, 3);
        trainer.train(&mut agent, &spec, 4).unwrap();
        agent.embed_graph(&probe).data().to_vec()
    };
    let train_multi = |workers: usize| {
        let mut trainer = ParallelTrainer::new(config.clone(), 11);
        trainer.set_num_workers(workers);
        trainer.set_checkpointing(None);
        let mut agent = XrlflowAgent::new(&config, 3);
        trainer.train_curriculum(&mut agent, &curriculum, 2).unwrap();
        agent.embed_graph(&probe).data().to_vec()
    };

    let (single_baseline, multi_baseline) = {
        let _quiet = FaultPlan::new().install();
        (train_single(2), train_multi(2))
    };

    for workers in [1usize, 2, 4] {
        let guard =
            FaultPlan::new().panic_on(FaultPhase::Collect, 1, 0).panic_on(FaultPhase::Update, 0, 0).install();
        let params = train_single(workers);
        assert_eq!(pending_faults(), 0, "{workers} workers: every scheduled fault must fire");
        drop(guard);
        let bits_equal = single_baseline.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "{workers}-worker faulty single-model run diverges from fault-free run");

        let guard = FaultPlan::new()
            .panic_on(FaultPhase::CurriculumCollect, curriculum_fault_item(1, 1), 0)
            .panic_on(FaultPhase::Update, 1, 0)
            .install();
        let params = train_multi(workers);
        assert_eq!(pending_faults(), 0, "{workers} workers: every scheduled curriculum fault fires");
        drop(guard);
        let bits_equal = multi_baseline.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "{workers}-worker faulty curriculum run diverges from fault-free run");
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_worker_fault() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let agent = XrlflowAgent::new(&config, 5);
    let snapshot = agent.snapshot();

    // Default budget is 2 retries → attempts 0, 1, 2 all panic → exhausted.
    let guard = FaultPlan::new().exhaust_budget_on(FaultPhase::Collect, 2, 2).install();
    let err = collect_parallel(&config, &snapshot, &spec, 0, 4, 99, 2).unwrap_err();
    assert_eq!(pending_faults(), 0, "all scheduled attempts must have fired");
    drop(guard);

    match err {
        RolloutError::WorkerFault(fault) => {
            assert_eq!(fault.phase, FaultPhase::Collect);
            assert_eq!(fault.item, 2);
            assert_eq!(fault.attempts, 3, "budget 2 = 3 total executions");
            assert!(
                fault.payload.contains("injected fault"),
                "the panic payload text must survive verbatim, got: {}",
                fault.payload
            );
        }
        other => panic!("expected RolloutError::WorkerFault, got: {other}"),
    }
}

#[test]
fn exhausted_budget_in_the_update_phase_stops_training_with_a_typed_error() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);

    let guard = FaultPlan::new().exhaust_budget_on(FaultPhase::Update, 0, 2).install();
    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_num_workers(2);
    trainer.set_checkpointing(None);
    let mut agent = XrlflowAgent::new(&config, 3);
    let err = trainer.train(&mut agent, &spec, 2).unwrap_err();
    drop(guard);

    match err {
        RolloutError::WorkerFault(fault) => {
            assert_eq!(fault.phase, FaultPhase::Update);
            assert_eq!(fault.item, 0);
            assert_eq!(fault.attempts, 3);
        }
        other => panic!("expected RolloutError::WorkerFault, got: {other}"),
    }
}

#[test]
fn injected_faults_are_counted() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let agent = XrlflowAgent::new(&config, 5);
    let snapshot = agent.snapshot();

    // Episode 0 fails twice (2 panics, 2 retries), episode 1 once (1 + 1).
    let guard = FaultPlan::new()
        .panic_on(FaultPhase::Collect, 0, 0)
        .panic_on(FaultPhase::Collect, 0, 1)
        .panic_on(FaultPhase::Collect, 1, 0)
        .install();
    xrlflow_obs::set_enabled(true);
    let panics_before = xrlflow_obs::counter!("rollout/worker_panics").get();
    let retries_before = xrlflow_obs::counter!("rollout/item_retries").get();
    collect_parallel(&config, &snapshot, &spec, 0, 2, 7, 2).unwrap();
    let panics = xrlflow_obs::counter!("rollout/worker_panics").get() - panics_before;
    let retries = xrlflow_obs::counter!("rollout/item_retries").get() - retries_before;
    xrlflow_obs::set_enabled(false);
    drop(guard);

    assert_eq!(panics, 3, "each caught panic increments rollout/worker_panics");
    assert_eq!(retries, 3, "each re-execution increments rollout/item_retries");
}
