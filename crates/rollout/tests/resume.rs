//! Durable exact-resume suites: kill-between-rounds resume, checkpoint
//! bit-transparency, crash-during-save safety, and cadence/retention.
//!
//! "Kill after round k" is simulated by running a fully checkpointed
//! reference run and resuming a *fresh* trainer + agent from the round-k
//! state file — because states are written atomically, that file is exactly
//! what a process killed between rounds k and k+1 leaves behind.

use std::path::PathBuf;

use xrlflow_core::{latest_train_state, train_state_path, TrainState, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;
use xrlflow_rollout::{CheckpointConfig, Curriculum, EnvSpec, ParallelTrainer, RolloutError};

fn smoke_spec(config: &XrlflowConfig) -> EnvSpec {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone())
}

fn smoke_curriculum(config: &XrlflowConfig) -> Curriculum {
    Curriculum::from_model_zoo(
        &[ModelKind::SqueezeNet, ModelKind::Bert],
        ModelScale::Bench,
        DeviceProfile::gtx1080(),
        config.env.clone(),
    )
    .unwrap()
}

fn probe() -> Graph {
    build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xrlflow_resume_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn assert_bits_equal(a: &[f32], b: &[f32], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: embedding lengths differ");
    let equal = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(equal, "{label}: parameters diverge");
}

#[test]
fn kill_after_round_k_resume_is_bit_identical_across_worker_counts() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let probe = probe();
    let dir = temp_dir("single");
    // update_frequency = 2, so 4 episodes means two rounds with states
    // written at next_episode 2 and 4.
    let episodes = 4;

    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_num_workers(2);
    trainer.set_checkpointing(Some(CheckpointConfig::new(&dir)));
    let mut agent = XrlflowAgent::new(&config, 3);
    trainer.train(&mut agent, &spec, episodes).unwrap();
    let full_run = agent.embed_graph(&probe).data().to_vec();

    let mid = TrainState::load(train_state_path(&dir, 2)).unwrap();
    assert_eq!(mid.next_episode, 2);

    for workers in [1usize, 2, 4] {
        // Seeds 0 and 77 are deliberately wrong: resume must overwrite both
        // the schedule seed and the parameters from the state file.
        let mut resumed_trainer = ParallelTrainer::new(config.clone(), 0);
        resumed_trainer.set_num_workers(workers);
        resumed_trainer.set_checkpointing(None);
        let mut resumed = XrlflowAgent::new(&config, 77);
        resumed_trainer.resume_from(&mut resumed, &mid).unwrap();
        assert_eq!(resumed_trainer.resume_episode(), 2);
        resumed_trainer.train(&mut resumed, &spec, episodes).unwrap();
        assert_bits_equal(
            &full_run,
            resumed.embed_graph(&probe).data(),
            &format!("{workers}-worker resume after kill between rounds"),
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_curriculum_kill_and_resume_is_bit_identical() {
    let config = XrlflowConfig::smoke_test();
    let curriculum = smoke_curriculum(&config);
    let probe = probe();
    let dir = temp_dir("curriculum");
    // 4 episodes per spec → the first round's state lands mid-curriculum
    // (inside spec 0's episode schedule).
    let episodes_per_spec = 4;

    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_num_workers(2);
    trainer.set_checkpointing(Some(CheckpointConfig::new(&dir)));
    let mut agent = XrlflowAgent::new(&config, 3);
    trainer.train_curriculum(&mut agent, &curriculum, episodes_per_spec).unwrap();
    let full_run = agent.embed_graph(&probe).data().to_vec();

    let mid = TrainState::load(train_state_path(&dir, 2)).unwrap();
    assert_eq!(mid.next_episode, 2);

    for workers in [1usize, 2] {
        let mut resumed_trainer = ParallelTrainer::new(config.clone(), 0);
        resumed_trainer.set_num_workers(workers);
        resumed_trainer.set_checkpointing(None);
        let mut resumed = XrlflowAgent::new(&config, 77);
        resumed_trainer.resume_from(&mut resumed, &mid).unwrap();
        resumed_trainer.train_curriculum(&mut resumed, &curriculum, episodes_per_spec).unwrap();
        assert_bits_equal(
            &full_run,
            resumed.embed_graph(&probe).data(),
            &format!("{workers}-worker mid-curriculum resume"),
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointing_is_bit_transparent_and_honours_cadence_and_retention() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let probe = probe();
    let dir = temp_dir("cadence");
    // 6 episodes → rounds end at next_episode 2, 4 and 6. With every(2) the
    // checkpoints land at rounds 2 (episode 4) and — final round, always
    // written — 3 (episode 6); keep_last(2) retains both.
    let episodes = 6;

    let run = |checkpointing: Option<CheckpointConfig>| {
        let mut trainer = ParallelTrainer::new(config.clone(), 11);
        trainer.set_num_workers(2);
        trainer.set_checkpointing(checkpointing);
        let mut agent = XrlflowAgent::new(&config, 3);
        trainer.train(&mut agent, &spec, episodes).unwrap();
        agent.embed_graph(&probe).data().to_vec()
    };

    let plain = run(None);
    let checkpointed = run(Some(CheckpointConfig::new(&dir).every(2).keep_last(2)));
    assert_bits_equal(&plain, &checkpointed, "checkpointing must be bit-transparent");

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["state-00000004.xrlftrst".to_string(), "state-00000006.xrlftrst".to_string()],
        "every(2) + keep_last(2) over three rounds"
    );
    assert_eq!(latest_train_state(&dir).unwrap(), Some(train_state_path(&dir, 6)));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_save_debris_does_not_mask_the_previous_checkpoint() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let dir = temp_dir("debris");

    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_num_workers(2);
    trainer.set_checkpointing(Some(CheckpointConfig::new(&dir)));
    let mut agent = XrlflowAgent::new(&config, 3);
    trainer.train(&mut agent, &spec, 2).unwrap();

    // A crash mid-save leaves only the staging temp file behind — the
    // atomic-write protocol never exposes a partial state under its final
    // name. The scanner must skip the debris and find the real state.
    std::fs::write(dir.join(".state-00000004.xrlftrst.4242.7.tmp"), b"partial write").unwrap();

    let mut fresh_trainer = ParallelTrainer::new(config.clone(), 0);
    fresh_trainer.set_checkpointing(None);
    let mut fresh = XrlflowAgent::new(&config, 77);
    let resumed = fresh_trainer.resume_from_latest(&mut fresh, &dir).unwrap();
    assert_eq!(resumed, Some(2), "the intact round-1 state must win over crash debris");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_checkpoint_is_a_typed_error_not_a_panic() {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let probe = probe();
    let dir = temp_dir("corrupt");

    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_num_workers(2);
    trainer.set_checkpointing(Some(CheckpointConfig::new(&dir)));
    let mut agent = XrlflowAgent::new(&config, 3);
    trainer.train(&mut agent, &spec, 2).unwrap();

    // A newer state that is complete under its final name but corrupt (e.g.
    // bit rot) must surface as a typed error, and the agent being resumed
    // must be left untouched.
    let good = std::fs::read(train_state_path(&dir, 2)).unwrap();
    std::fs::write(train_state_path(&dir, 4), &good[..good.len() / 2]).unwrap();

    let mut fresh_trainer = ParallelTrainer::new(config.clone(), 0);
    fresh_trainer.set_checkpointing(None);
    let mut fresh = XrlflowAgent::new(&config, 77);
    let before = fresh.embed_graph(&probe).data().to_vec();
    let err = fresh_trainer.resume_from_latest(&mut fresh, &dir).unwrap_err();
    assert!(
        matches!(err, RolloutError::Snapshot(_)),
        "truncated state must load as a typed snapshot error, got: {err}"
    );
    assert_bits_equal(&before, fresh.embed_graph(&probe).data(), "failed resume must not write");
    assert_eq!(fresh_trainer.resume_episode(), 0, "failed resume must not move the schedule");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_latest_on_an_empty_or_missing_directory_starts_fresh() {
    let config = XrlflowConfig::smoke_test();
    let dir = temp_dir("empty");

    let mut trainer = ParallelTrainer::new(config.clone(), 11);
    trainer.set_checkpointing(None);
    let mut agent = XrlflowAgent::new(&config, 3);
    assert_eq!(trainer.resume_from_latest(&mut agent, &dir).unwrap(), None);
    assert_eq!(trainer.resume_episode(), 0);
}
