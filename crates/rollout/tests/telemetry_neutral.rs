//! Telemetry neutrality: the observability layer observes, it never steers.
//!
//! Two contracts from ROADMAP.md's "Telemetry dataflow" section:
//!
//! 1. With the registry **active** (the default), the worker count still
//!    changes wall-clock time only — 1/2/4-worker training produces
//!    f32 bit-identical parameters, and the run demonstrably recorded
//!    metrics while doing so.
//! 2. Enabling vs disabling telemetry changes no learned number: the same
//!    seeded run lands on bit-identical parameters either way (recording is
//!    pure reads + atomic bumps, never an RNG draw or an f32 operation on
//!    the training path).
//!
//! Tests that read counters or flip the global enabled flag serialise on a
//! shared lock so neither can observe the other's flag state.

use std::sync::Mutex;

use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_rollout::{EnvSpec, ParallelTrainer};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn smoke_spec(config: &XrlflowConfig) -> EnvSpec {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone())
}

/// Trains a fresh, identically seeded agent for 3 episodes on `workers`
/// workers and returns a probe embedding of the final parameters.
fn train_probe(workers: usize) -> Vec<f32> {
    let config = XrlflowConfig::smoke_test();
    let spec = smoke_spec(&config);
    let mut agent = XrlflowAgent::new(&config, 5);
    let mut trainer = ParallelTrainer::new(config, 7);
    trainer.set_num_workers(workers);
    trainer.train(&mut agent, &spec, 3).unwrap();
    let probe = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    agent.embed_graph(&probe).data().to_vec()
}

#[test]
fn differential_1_2_4_workers_stay_bit_identical_with_the_registry_active() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    assert!(xrlflow_obs::enabled(), "the registry must be active for this differential run");

    let episodes_before = xrlflow_obs::counter!("rollout/episodes").get();
    let collects_before = xrlflow_obs::histogram!("rollout/collect").count();

    let reference = train_probe(1);
    for workers in [2usize, 4] {
        let params = train_probe(workers);
        let bits_equal = reference.iter().zip(&params).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(bits_equal, "{workers}-worker training with active telemetry diverged from the 1-worker run");
    }

    // The runs above must actually have recorded — an accidentally inert
    // registry would make this differential test vacuous.
    assert!(
        xrlflow_obs::counter!("rollout/episodes").get() >= episodes_before + 9,
        "training with the registry active must count its episodes"
    );
    assert!(
        xrlflow_obs::histogram!("rollout/collect").count() > collects_before,
        "training with the registry active must record collect-phase spans"
    );
}

#[test]
fn enabling_or_disabling_telemetry_changes_no_learned_bit() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();

    let enabled_params = train_probe(2);

    xrlflow_obs::set_enabled(false);
    let disabled_params = train_probe(2);
    xrlflow_obs::set_enabled(true);

    assert_eq!(enabled_params.len(), disabled_params.len());
    let bits_equal = enabled_params.iter().zip(&disabled_params).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bits_equal,
        "disabling telemetry changed the learned parameters — instrumentation is not bit-transparent"
    );
}
