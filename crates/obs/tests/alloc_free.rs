//! Proves steady-state metric recording is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after one
//! warm-up pass resolves every call-site handle (registration leaks one
//! allocation per *distinct* metric name, by design), recording through the
//! `counter!`/`gauge!`/`histogram!`/`span!` macros must perform **zero**
//! heap allocations — the contract behind the "Telemetry dataflow" rules in
//! ROADMAP.md. This file holds exactly one test so no concurrent test
//! thread can touch the counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use xrlflow_obs::{counter, gauge, histogram, span};

/// Counts every allocation (and reallocation) routed through the global
/// allocator; frees are not counted — the test only cares that steady-state
/// recording requests no new memory.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// One round of recording through every metric kind, exactly as call sites
/// in rollout/core/cost/serve do it.
fn record_round() {
    counter!("alloc_test/events").inc();
    counter!("alloc_test/batch").add(17);
    gauge!("alloc_test/utilization").set(0.75);
    histogram!("alloc_test/latency").record(1_234);
    let _span = span!("alloc_test/phase");
    std::hint::black_box(2 + 2);
}

#[test]
fn steady_state_metric_recording_allocates_nothing() {
    // Warm-up: registers the metric names (leaks one handle each) and fills
    // every call-site OnceLock.
    record_round();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        record_round();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state metric recording must not allocate (saw {} allocations over 100 rounds)",
        after - before
    );

    // The records actually landed — zero allocations must not mean no-op.
    let snapshot = xrlflow_obs::Registry::global().snapshot();
    assert_eq!(snapshot.counter("alloc_test/events"), Some(101));
    assert_eq!(snapshot.counter("alloc_test/batch"), Some(17 * 101));
    assert_eq!(snapshot.gauge("alloc_test/utilization"), Some(0.75));
    assert_eq!(snapshot.histogram("alloc_test/latency").unwrap().count, 101);
    assert_eq!(snapshot.histogram("alloc_test/phase").unwrap().count, 101);
}
