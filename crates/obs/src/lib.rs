//! # xrlflow-obs
//!
//! Zero-overhead telemetry for the X-RLflow stack: atomic counters, gauges
//! and fixed-bucket log-scale histograms, RAII span timers, a process-wide
//! [`Registry`] with cheap pre-registered handles, and a structured JSON
//! snapshot built on the same hand-rolled [`JsonValue`] writer the graph
//! interchange and the serving cache use.
//!
//! Two rules govern every instrumented path (see "Telemetry dataflow" in
//! ROADMAP.md):
//!
//! 1. **Recording is allocation-free in steady state.** Handles are resolved
//!    once (a `OnceLock` per call site, via the [`counter!`], [`gauge!`],
//!    [`histogram!`] and [`span!`] macros) and every record is a handful of
//!    relaxed atomic operations — no per-event heap traffic, enforced by a
//!    counting-allocator test in this crate.
//! 2. **Telemetry is bit-transparent.** Metrics observe; they never touch an
//!    RNG stream, a merge order or an f32 result. Enabling or disabling the
//!    registry ([`set_enabled`]) must not change a single learned number —
//!    the rollout engine's differential suites run with the registry active
//!    to enforce this.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_obs as obs;
//!
//! // Handles resolve once per call site and are then a pointer deref.
//! obs::counter!("demo/requests").inc();
//! obs::gauge!("demo/queue_depth").set(3.0);
//! obs::histogram!("demo/latency").record(1_500); // ns
//! {
//!     let _span = obs::span!("demo/phase"); // records elapsed ns on drop
//! }
//!
//! let snapshot = obs::Registry::global().snapshot();
//! assert!(snapshot.counter("demo/requests").unwrap() >= 1);
//! let json = snapshot.to_json(); // {"format": "xrlflow-metrics", ...}
//! assert!(json.contains("demo/latency"));
//! ```
//!
//! Metric names are `/`-separated static paths (`"serve/requests"`,
//! `"rollout/collect"`). The registry leaks one small allocation per
//! *distinct* name — the set of metrics in a process is fixed and tiny, and
//! leaking is what makes handles `&'static` (copyable, lock-free, cheap to
//! stash in a `OnceLock` at the call site).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use xrlflow_graph::JsonValue;

/// The `"format"` marker identifying a metrics snapshot document.
pub const METRICS_JSON_FORMAT: &str = "xrlflow-metrics";

/// The snapshot schema version this build writes.
pub const METRICS_JSON_VERSION: u64 = 1;

/// Number of log-scale buckets in a [`Histogram`] (powers of two; bucket `i`
/// holds values `v` with `2^(i-1) <= v < 2^i`, bucket 0 holds zero).
pub const HISTOGRAM_BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry recording is active (default: `true`).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables telemetry recording.
///
/// Disabling turns every record into one relaxed atomic load and stops span
/// timers from reading the clock. It exists for overhead measurement
/// (`bench_obs` compares instrumented vs uninstrumented hot loops) and must
/// never change programme behaviour — instrumented code is bit-transparent
/// either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing event counter over one relaxed atomic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the count to zero (snapshots are cumulative otherwise).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (an `f64` stored as bits in
/// one relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores a new value.
    #[inline]
    pub fn set(&self, value: f64) {
        if enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// The most recently stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Resets the gauge to `0.0`.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log-scale histogram over atomics: 64 power-of-two buckets
/// plus total count and sum, all relaxed.
///
/// Designed for nanosecond timings (a 64-bucket log2 scale spans 1 ns to
/// centuries) but any `u64` works. Recording is two-to-three relaxed
/// `fetch_add`s — no locks, no allocation, wait-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self { buckets: [ZERO; HISTOGRAM_BUCKETS], count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// The bucket index of a value: 0 for 0, else `⌈log2(v+1)⌉` clamped to
    /// the last bucket — so bucket `i ≥ 1` covers `2^(i-1) <= v < 2^i`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize
    }

    /// The exclusive upper bound of bucket `index` (`2^index`; the last
    /// bucket is unbounded and reports `u64::MAX`).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index + 1 >= HISTOGRAM_BUCKETS {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if enabled() {
            self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (nanoseconds, for span histograms).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`), or 0 when empty. Log-scale buckets make this an
    /// upper estimate within 2× of the true quantile — the right resolution
    /// for latency monitoring.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| (Self::bucket_upper_bound(i), count))
            })
            .collect()
    }

    /// Clears every bucket and the count/sum.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An RAII timer: records the elapsed nanoseconds into a [`Histogram`] when
/// dropped. When telemetry is disabled at construction the clock is never
/// read and the drop is a no-op.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    histogram: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span over a histogram handle.
    #[inline]
    pub fn start(histogram: &'static Histogram) -> Self {
        Self { histogram, start: enabled().then(Instant::now) }
    }

    /// Ends the span early, recording now instead of at scope exit.
    pub fn finish(self) {}
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// One kind of metric store inside the registry.
#[derive(Debug, Default)]
struct Table<T: 'static> {
    entries: Mutex<Vec<(String, &'static T)>>,
}

impl<T: Default> Table<T> {
    /// Get-or-register: the first lookup of a name leaks one `T` (making the
    /// handle `&'static`), later lookups return the same handle.
    fn get_or_register(&self, name: &str) -> &'static T {
        let mut entries = self.entries.lock().expect("metric registry poisoned");
        if let Some((_, handle)) = entries.iter().find(|(n, _)| n == name) {
            return handle;
        }
        let handle: &'static T = Box::leak(Box::default());
        entries.push((name.to_string(), handle));
        handle
    }

    fn sorted(&self) -> Vec<(String, &'static T)> {
        let mut entries = self.entries.lock().expect("metric registry poisoned").clone();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        entries
    }
}

/// The process-wide metric registry: named counters, gauges and histograms.
///
/// Registration (the *first* lookup of a name) takes a short lock and leaks
/// one allocation; every later lookup through the [`counter!`]-family macros
/// is a `OnceLock` load. Recording through a resolved handle never touches
/// the registry at all.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Table<Counter>,
    gauges: Table<Gauge>,
    histograms: Table<Histogram>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// The process-wide registry every instrumented crate records into.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::default)
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.counters.get_or_register(name)
    }

    /// Resolves (registering on first use) a gauge handle.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.gauges.get_or_register(name)
    }

    /// Resolves (registering on first use) a histogram handle.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.histograms.get_or_register(name)
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.sorted().into_iter().map(|(n, c)| (n, c.get())).collect(),
            gauges: self.gauges.sorted().into_iter().map(|(n, g)| (n, g.get())).collect(),
            histograms: self
                .histograms
                .sorted()
                .into_iter()
                .map(|(n, h)| (n, HistogramSnapshot::from_histogram(h)))
                .collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid). For tests and
    /// benches that want per-phase readings out of the cumulative registry.
    pub fn reset(&self) {
        for (_, c) in self.counters.sorted() {
            c.reset();
        }
        for (_, g) in self.gauges.sorted() {
            g.reset();
        }
        for (_, h) in self.histograms.sorted() {
            h.reset();
        }
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (ns for span histograms).
    pub sum: u64,
    /// Upper bound of the median bucket.
    pub p50: u64,
    /// Upper bound of the 90th-percentile bucket.
    pub p90: u64,
    /// Upper bound of the 99th-percentile bucket.
    pub p99: u64,
    /// Non-empty `(upper_bound, count)` buckets in value order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile_upper_bound(0.50),
            p90: h.quantile_upper_bound(0.90),
            p99: h.quantile_upper_bound(0.99),
            buckets: h.nonzero_buckets(),
        }
    }

    /// Mean observed value, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of the whole registry, ready for JSON export.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name, sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name, sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name, sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Builds the snapshot as a [`JsonValue`] document — the same generic
    /// document model the graph interchange and the serving cache use.
    ///
    /// Counts and bucket bounds are JSON numbers (f64): counts stay far
    /// below 2^53 in practice, and bucket upper bounds are exact powers of
    /// two, which f64 represents exactly.
    pub fn to_json_value(&self) -> JsonValue {
        let counters =
            self.counters.iter().map(|(n, v)| (n.clone(), JsonValue::Number(*v as f64))).collect::<Vec<_>>();
        let gauges = self.gauges.iter().map(|(n, v)| (n.clone(), JsonValue::Number(*v))).collect::<Vec<_>>();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(upper, count)| {
                        JsonValue::Array(vec![
                            JsonValue::Number(*upper as f64),
                            JsonValue::Number(*count as f64),
                        ])
                    })
                    .collect();
                (
                    n.clone(),
                    JsonValue::Object(vec![
                        ("count".to_string(), JsonValue::Number(h.count as f64)),
                        ("sum".to_string(), JsonValue::Number(h.sum as f64)),
                        ("mean".to_string(), JsonValue::Number(h.mean())),
                        ("p50".to_string(), JsonValue::Number(h.p50 as f64)),
                        ("p90".to_string(), JsonValue::Number(h.p90 as f64)),
                        ("p99".to_string(), JsonValue::Number(h.p99 as f64)),
                        ("buckets".to_string(), JsonValue::Array(buckets)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        JsonValue::Object(vec![
            ("format".to_string(), JsonValue::String(METRICS_JSON_FORMAT.to_string())),
            ("version".to_string(), JsonValue::Number(METRICS_JSON_VERSION as f64)),
            ("counters".to_string(), JsonValue::Object(counters)),
            ("gauges".to_string(), JsonValue::Object(gauges)),
            ("histograms".to_string(), JsonValue::Object(histograms)),
        ])
    }

    /// Serialises the snapshot as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Writes the snapshot to a file atomically (temp file → fsync →
    /// rename), creating parent directories. A crash mid-save never leaves
    /// a torn document under the final name.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or writing.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        xrlflow_tensor::atomic_write(path, self.to_json())
    }
}

/// Resolves a `&'static Counter` from the global registry, caching the
/// handle in a per-call-site `OnceLock` — steady-state cost is one atomic
/// load plus the record itself, with zero allocation.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Registry::global().counter($name))
    }};
}

/// Resolves a `&'static Gauge` from the global registry (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Registry::global().gauge($name))
    }};
}

/// Resolves a `&'static Histogram` from the global registry (see
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Registry::global().histogram($name))
    }};
}

/// Starts an RAII [`Span`] over a named histogram: elapsed nanoseconds are
/// recorded when the returned guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($crate::histogram!($name))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the global enabled flag serialise on this lock so
    /// they cannot disable recording under a concurrently running test.
    static ENABLED_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counter_and_gauge_record_and_reset() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_log_scale_and_quantiles_bound_the_data() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(1), 2);
        assert_eq!(Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);

        let h = Histogram::new();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 101_500);
        assert!((h.mean() - 20_300.0).abs() < 1e-9);
        // The p50 bucket bound must cover the median (400 -> bucket (256, 512]).
        assert_eq!(h.quantile_upper_bound(0.5), 512);
        // p99 lands in the top value's bucket (100_000 -> (65536, 131072]).
        assert_eq!(h.quantile_upper_bound(0.99), 131_072);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "buckets must be in value order");

        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn span_records_elapsed_time() {
        let h: &'static Histogram = Box::leak(Box::default());
        {
            let _span = Span::start(h);
            std::hint::black_box(1 + 1);
        }
        assert_eq!(h.count(), 1, "dropping a span must record one observation");
        Span::start(h).finish();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        set_enabled(false);
        c.inc();
        g.set(9.0);
        h.record(42);
        let span = Span::start(&*Box::leak::<'static>(Box::new(Histogram::new())));
        assert!(span.start.is_none(), "disabled spans must not read the clock");
        drop(span);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_handles_are_stable_and_macros_cache_them() {
        let a = Registry::global().counter("obs_test/stable");
        let b = Registry::global().counter("obs_test/stable");
        assert!(std::ptr::eq(a, b), "same name must resolve to the same handle");
        let m1 = counter!("obs_test/macro");
        let m2 = counter!("obs_test/macro");
        assert!(std::ptr::eq(m1, m2));
    }

    #[test]
    fn snapshot_json_contains_every_metric_kind() {
        let _guard = ENABLED_LOCK.lock().unwrap();
        counter!("obs_test/json_counter").add(7);
        gauge!("obs_test/json_gauge").set(0.5);
        histogram!("obs_test/json_hist").record(1000);
        let snapshot = Registry::global().snapshot();
        assert!(snapshot.counter("obs_test/json_counter").unwrap() >= 7);
        assert_eq!(snapshot.gauge("obs_test/json_gauge"), Some(0.5));
        assert!(snapshot.histogram("obs_test/json_hist").unwrap().count >= 1);
        assert!(snapshot.histogram("obs_test/missing").is_none());

        // The JSON document round-trips through the shared JsonValue parser.
        let json = snapshot.to_json();
        let parsed = JsonValue::parse(&json).expect("snapshot JSON must parse");
        assert_eq!(parsed.get("format").and_then(JsonValue::as_str), Some(METRICS_JSON_FORMAT));
        assert_eq!(parsed.get("version").and_then(JsonValue::as_f64), Some(METRICS_JSON_VERSION as f64));
        let counters = parsed.get("counters").expect("counters object");
        assert!(counters.get("obs_test/json_counter").and_then(JsonValue::as_f64).unwrap() >= 7.0);
        let hist = parsed.get("histograms").and_then(|h| h.get("obs_test/json_hist")).expect("histogram");
        assert!(hist.get("count").and_then(JsonValue::as_f64).unwrap() >= 1.0);
        assert!(hist.get("buckets").and_then(JsonValue::as_array).is_some());
    }

    #[test]
    fn snapshot_names_are_sorted() {
        counter!("obs_test/z_last").inc();
        counter!("obs_test/a_first").inc();
        let snapshot = Registry::global().snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must list metrics in sorted name order");
    }

    #[test]
    fn snapshot_save_writes_parseable_json() {
        counter!("obs_test/saved").inc();
        let path = std::env::temp_dir().join("xrlflow_obs_test/metrics.json");
        Registry::global().snapshot().save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(JsonValue::parse(&text).is_ok());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
