//! The Tensat baseline: equality saturation over the e-graph followed by
//! cost-based extraction.
//!
//! Tensat applies rewrite rules *non-destructively*: every rule application
//! adds e-nodes and unions e-classes, so the e-graph represents many
//! equivalent graphs at once. Saturation is bounded by a node limit and an
//! iteration limit (the paper notes the e-graph is never truly saturated in
//! practice), after which the cheapest graph under a per-node cost model is
//! extracted. Because extraction needs per-node costs, Tensat cannot use
//! end-to-end latency as its signal — one of the motivations for X-RLflow.

use std::time::Instant;

use xrlflow_cost::{node_compute_us, DeviceProfile};
use xrlflow_graph::{FusedActivation, Graph, OpAttributes, OpKind, TensorRef, TensorShape};

use crate::egraph::{ClassId, EGraph, EGraphError, ENode};

/// Configuration of the equality-saturation run.
#[derive(Debug, Clone)]
pub struct TensatConfig {
    /// Maximum number of e-nodes before saturation stops (the paper uses a
    /// 10,000-node cap).
    pub node_limit: usize,
    /// Maximum number of saturation iterations.
    pub iter_limit: usize,
    /// Maximum applications of the "multi-pattern" growth rules
    /// (re-association) per iteration, mirroring Tensat's `k` parameter
    /// (default 1).
    pub multi_pattern_limit: usize,
}

impl Default for TensatConfig {
    fn default() -> Self {
        Self { node_limit: 10_000, iter_limit: 10, multi_pattern_limit: 1 }
    }
}

/// Result of a Tensat optimisation run.
#[derive(Debug, Clone)]
pub struct TensatResult {
    /// The extracted graph.
    pub graph: Graph,
    /// Whether the e-graph saturated before hitting a limit.
    pub saturated: bool,
    /// Number of saturation iterations performed.
    pub iterations: usize,
    /// Final number of e-classes.
    pub num_classes: usize,
    /// Final number of e-nodes.
    pub num_nodes: usize,
    /// Wall-clock optimisation time in seconds.
    pub optimisation_time_s: f64,
}

/// The Tensat-style equality-saturation optimiser.
#[derive(Debug, Clone, Default)]
pub struct TensatOptimizer {
    config: TensatConfig,
    profile: DeviceProfile,
}

impl TensatOptimizer {
    /// Creates an optimiser with the given configuration and device profile.
    pub fn new(config: TensatConfig, profile: DeviceProfile) -> Self {
        Self { config, profile }
    }

    /// Runs equality saturation and extraction on a graph.
    ///
    /// # Errors
    ///
    /// Returns [`EGraphError::Unsupported`] when the graph contains operators
    /// the e-graph representation cannot express (Tensat's conversion filter).
    pub fn optimize(&self, graph: &Graph) -> Result<TensatResult, EGraphError> {
        let start = Instant::now();
        let mut eg = EGraph::from_graph(graph)?;
        let mut saturated = false;
        let mut iterations = 0;

        for _ in 0..self.config.iter_limit {
            iterations += 1;
            let changed = self.apply_rewrites(&mut eg);
            eg.rebuild();
            if !changed {
                saturated = true;
                break;
            }
            if eg.num_nodes() > self.config.node_limit {
                break;
            }
        }

        let profile = self.profile.clone();
        let extracted = eg.extract(|node, child_shapes, out_shape| {
            enode_cost_us(node, child_shapes, out_shape, &profile)
        })?;
        Ok(TensatResult {
            num_classes: eg.num_classes(),
            num_nodes: eg.num_nodes(),
            graph: extracted,
            saturated,
            iterations,
            optimisation_time_s: start.elapsed().as_secs_f64(),
        })
    }

    /// Applies one round of every rewrite to the e-graph. Returns whether the
    /// e-graph changed.
    fn apply_rewrites(&self, eg: &mut EGraph) -> bool {
        let mut changed = false;
        changed |= fuse_activation(eg, OpKind::Conv2d);
        changed |= fuse_activation(eg, OpKind::MatMul);
        changed |= fuse_conv_batchnorm(eg);
        changed |= fuse_bias_add(eg);
        changed |= eliminate_pass_through(eg);
        changed |= eliminate_transpose_pair(eg);
        changed |= reassociate_matmul(eg, self.config.multi_pattern_limit);
        changed
    }
}

/// Per-e-node cost in microseconds, computed by materialising the operator in
/// a throwaway graph and reusing the analytical cost model.
fn enode_cost_us(
    node: &ENode,
    child_shapes: &[TensorShape],
    _out_shape: &TensorShape,
    profile: &DeviceProfile,
) -> f64 {
    if node.op.is_source() {
        return 0.0;
    }
    let mut g = Graph::new();
    let inputs: Vec<TensorRef> =
        child_shapes.iter().map(|s| TensorRef::new(g.add_input(s.clone()))).collect();
    match g.add_node(node.op, node.attrs.clone(), inputs) {
        Ok(id) => node_compute_us(&g, id, profile),
        // Unrepresentable combinations are heavily penalised so extraction
        // never chooses them.
        Err(_) => 1e12,
    }
}

fn fusable_activation(op: OpKind) -> Option<FusedActivation> {
    match op {
        OpKind::Relu => Some(FusedActivation::Relu),
        OpKind::Sigmoid => Some(FusedActivation::Sigmoid),
        OpKind::Tanh => Some(FusedActivation::Tanh),
        OpKind::Gelu => Some(FusedActivation::Gelu),
        _ => None,
    }
}

/// `act(producer(x)) == producer_with_fused_act(x)`.
fn fuse_activation(eg: &mut EGraph, producer: OpKind) -> bool {
    let mut additions: Vec<(ENode, TensorShape, ClassId)> = Vec::new();
    for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            let Some(act) = fusable_activation(node.op) else { continue };
            let Some(&child) = node.children.first() else { continue };
            for inner in &eg.class(child).nodes {
                if inner.op == producer && inner.attrs.fused_activation.is_none() {
                    let fused = ENode {
                        op: inner.op,
                        attrs: inner.attrs.clone().with_fused_activation(act),
                        children: inner.children.clone(),
                        source_shape: None,
                        source_id: None,
                    };
                    additions.push((fused, class.shape.clone(), cid));
                }
            }
        }
    }
    apply_additions(eg, additions)
}

/// `BatchNorm(Conv(x)) == Conv'(x)` (folding the affine transform).
fn fuse_conv_batchnorm(eg: &mut EGraph) -> bool {
    let mut unions: Vec<(ClassId, ClassId)> = Vec::new();
    for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            if node.op != OpKind::BatchNorm {
                continue;
            }
            let Some(&child) = node.children.first() else { continue };
            if eg.class(child).shape != class.shape {
                continue;
            }
            if eg.class(child).nodes.iter().any(|n| n.op == OpKind::Conv2d) {
                unions.push((cid, child));
            }
        }
    }
    apply_unions(eg, unions)
}

/// `Add(MatMul(x, w), bias) == MatMul'(x, w)` when `bias` is a parameter and
/// broadcasting does not change the shape.
fn fuse_bias_add(eg: &mut EGraph) -> bool {
    let mut unions: Vec<(ClassId, ClassId)> = Vec::new();
    for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            if node.op != OpKind::Add || node.children.len() != 2 {
                continue;
            }
            for (main, bias) in [(0, 1), (1, 0)] {
                let main_class = node.children[main];
                let bias_class = node.children[bias];
                let main_is_compute = eg
                    .class(main_class)
                    .nodes
                    .iter()
                    .any(|n| matches!(n.op, OpKind::MatMul | OpKind::Conv2d));
                let bias_is_param = eg
                    .class(bias_class)
                    .nodes
                    .iter()
                    .any(|n| matches!(n.op, OpKind::Weight | OpKind::Constant));
                if main_is_compute && bias_is_param && eg.class(main_class).shape == class.shape {
                    unions.push((cid, main_class));
                }
            }
        }
    }
    apply_unions(eg, unions)
}

/// `Identity(x) == x`, `Dropout(x) == x` (inference).
fn eliminate_pass_through(eg: &mut EGraph) -> bool {
    let mut unions: Vec<(ClassId, ClassId)> = Vec::new();
    for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            if matches!(node.op, OpKind::Identity | OpKind::Dropout | OpKind::Cast) {
                if let Some(&child) = node.children.first() {
                    if eg.class(child).shape == class.shape {
                        unions.push((cid, child));
                    }
                }
            }
        }
    }
    apply_unions(eg, unions)
}

/// `Transpose_q(Transpose_p(x)) == x` when `q ∘ p` is the identity.
fn eliminate_transpose_pair(eg: &mut EGraph) -> bool {
    let mut unions: Vec<(ClassId, ClassId)> = Vec::new();
    for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            if node.op != OpKind::Transpose {
                continue;
            }
            let Some(ref q) = node.attrs.perm else { continue };
            let Some(&child) = node.children.first() else { continue };
            for inner in &eg.class(child).nodes {
                if inner.op != OpKind::Transpose {
                    continue;
                }
                let Some(ref p) = inner.attrs.perm else { continue };
                if p.len() == q.len() && (0..p.len()).all(|i| p[q[i]] == i) {
                    let Some(&grandchild) = inner.children.first() else { continue };
                    if eg.class(grandchild).shape == class.shape {
                        unions.push((cid, grandchild));
                    }
                }
            }
        }
    }
    apply_unions(eg, unions)
}

/// `(A·B)·C == A·(B·C)` — Tensat's growth-prone "multi-pattern" rule, limited
/// to `limit` applications per saturation iteration.
fn reassociate_matmul(eg: &mut EGraph, limit: usize) -> bool {
    let mut additions: Vec<(ENode, ENode, TensorShape, TensorShape, ClassId)> = Vec::new();
    'outer: for (cid, class) in eg.iter_classes() {
        for node in &class.nodes {
            if node.op != OpKind::MatMul || node.attrs.fused_activation.is_some() {
                continue;
            }
            if node.children.len() != 2 {
                continue;
            }
            let (ab_class, c_class) = (node.children[0], node.children[1]);
            if eg.class(c_class).shape.rank() != 2 {
                continue;
            }
            for inner in &eg.class(ab_class).nodes {
                if inner.op != OpKind::MatMul
                    || inner.attrs.fused_activation.is_some()
                    || inner.children.len() != 2
                {
                    continue;
                }
                let (a_class, b_class) = (inner.children[0], inner.children[1]);
                let b_shape = eg.class(b_class).shape.clone();
                let c_shape = eg.class(c_class).shape.clone();
                if b_shape.rank() != 2 {
                    continue;
                }
                // B·C has shape [b_rows, c_cols].
                let bc_shape = TensorShape::new(vec![b_shape.dim(0), c_shape.dim(1)]);
                let bc = ENode {
                    op: OpKind::MatMul,
                    attrs: OpAttributes::default(),
                    children: vec![b_class, c_class],
                    source_shape: None,
                    source_id: None,
                };
                let outer_shape = class.shape.clone();
                let a_bc = ENode {
                    op: OpKind::MatMul,
                    attrs: OpAttributes::default(),
                    children: vec![a_class, ClassId(usize::MAX)], // patched after bc is added
                    source_shape: None,
                    source_id: None,
                };
                additions.push((bc, a_bc, bc_shape, outer_shape, cid));
                if additions.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    let mut changed = false;
    for (bc, mut a_bc, bc_shape, outer_shape, target) in additions {
        let bc_class = eg.add(bc, bc_shape);
        a_bc.children[1] = bc_class;
        let new_class = eg.add(a_bc, outer_shape);
        let (_, did) = eg.union(target, new_class);
        changed |= did;
    }
    changed
}

fn apply_additions(eg: &mut EGraph, additions: Vec<(ENode, TensorShape, ClassId)>) -> bool {
    let mut changed = false;
    for (node, shape, target) in additions {
        let new_class = eg.add(node, shape);
        let (_, did) = eg.union(target, new_class);
        changed |= did;
    }
    changed
}

fn apply_unions(eg: &mut EGraph, unions: Vec<(ClassId, ClassId)>) -> bool {
    let mut changed = false;
    for (a, b) in unions {
        let (_, did) = eg.union(a, b);
        changed |= did;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_cost::{CostModel, InferenceSimulator};
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    #[test]
    fn tensat_reduces_cost_on_conv_nets() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
        let result = tensat.optimize(&g).unwrap();
        assert!(result.graph.validate().is_ok());
        let cm = CostModel::new(DeviceProfile::gtx1080());
        assert!(
            cm.graph_cost_ms(&result.graph) <= cm.graph_cost_ms(&g),
            "Tensat must not regress the cost model"
        );
        // Fusion should have removed stand-alone activations or normalisations.
        assert!(result.graph.num_nodes() < g.num_nodes());
    }

    #[test]
    fn tensat_improves_e2e_latency_on_bert() {
        let g = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
        let result = tensat.optimize(&g).unwrap();
        assert!(result.graph.validate().is_ok());
        let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
        assert!(sim.measure_ms(&result.graph, 0) < sim.measure_ms(&g, 0));
    }

    #[test]
    fn saturation_respects_iteration_limit() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let tensat = TensatOptimizer::new(
            TensatConfig { iter_limit: 1, ..TensatConfig::default() },
            DeviceProfile::gtx1080(),
        );
        let result = tensat.optimize(&g).unwrap();
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn node_limit_stops_growth() {
        let g = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let tensat = TensatOptimizer::new(
            TensatConfig { node_limit: 10, iter_limit: 50, multi_pattern_limit: 8 },
            DeviceProfile::gtx1080(),
        );
        // Must terminate promptly and still produce a valid graph.
        let result = tensat.optimize(&g).unwrap();
        assert!(result.graph.validate().is_ok());
        assert!(result.iterations < 50);
    }

    #[test]
    fn enode_cost_is_zero_for_sources_and_positive_for_compute() {
        let profile = DeviceProfile::gtx1080();
        let source = ENode {
            op: OpKind::Weight,
            attrs: OpAttributes::default(),
            children: vec![],
            source_shape: Some(TensorShape::new(vec![64, 64])),
            source_id: Some(0),
        };
        assert_eq!(enode_cost_us(&source, &[], &TensorShape::new(vec![64, 64]), &profile), 0.0);
        let mm = ENode {
            op: OpKind::MatMul,
            attrs: OpAttributes::default(),
            children: vec![ClassId(0), ClassId(1)],
            source_shape: None,
            source_id: None,
        };
        let cost = enode_cost_us(
            &mm,
            &[TensorShape::new(vec![64, 64]), TensorShape::new(vec![64, 64])],
            &TensorShape::new(vec![64, 64]),
            &profile,
        );
        assert!(cost > 0.0);
    }
}
