//! A from-scratch e-graph (equivalence graph) for tensor expressions.
//!
//! Tensat represents many equivalent tensor graphs compactly in an e-graph
//! (built on the `egg` library) and extracts the cheapest one with a
//! per-node cost model. This module provides the same machinery:
//! hash-consed e-nodes, a union-find over e-classes, congruence maintenance
//! (`rebuild`) and cost-based extraction back into a [`Graph`].
//!
//! Like Tensat, the conversion is restricted to single-output operators; a
//! graph containing multi-output operators (e.g. `Split`) is rejected, which
//! mirrors Tensat's own representation filtering.

use std::collections::HashMap;

use xrlflow_graph::{Graph, GraphError, NodeId, OpAttributes, OpKind, TensorRef, TensorShape};

/// Identifier of an e-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub usize);

/// An e-node: an operator applied to e-class children.
#[derive(Debug, Clone, PartialEq)]
pub struct ENode {
    /// The operator kind.
    pub op: OpKind,
    /// Operator attributes.
    pub attrs: OpAttributes,
    /// Child e-classes (operands).
    pub children: Vec<ClassId>,
    /// Shape of the source tensor for `Input`/`Weight`/`Constant` nodes.
    pub source_shape: Option<TensorShape>,
    /// Identity of the source node in the original graph, so that distinct
    /// inputs/weights with identical shapes are not conflated.
    pub source_id: Option<u32>,
}

impl ENode {
    fn key(&self) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}",
            self.op, self.attrs, self.children, self.source_shape, self.source_id
        )
    }
}

/// One equivalence class of e-nodes, all computing the same tensor.
#[derive(Debug, Clone)]
pub struct EClass {
    /// The e-nodes in this class.
    pub nodes: Vec<ENode>,
    /// The shape of the tensor this class computes.
    pub shape: TensorShape,
}

/// Errors produced while building or extracting an e-graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EGraphError {
    /// The input graph contains an operator the e-graph representation does
    /// not support (multi-output operators, exactly like Tensat's filter).
    Unsupported(OpKind),
    /// The e-graph grew beyond its configured node limit before saturating.
    NodeLimit(usize),
    /// An error occurred while reconstructing the extracted graph.
    Reconstruction(GraphError),
    /// The input graph was malformed.
    Graph(GraphError),
}

impl std::fmt::Display for EGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EGraphError::Unsupported(op) => write!(f, "operator {op} is not representable in the e-graph"),
            EGraphError::NodeLimit(n) => write!(f, "e-graph exceeded the node limit of {n}"),
            EGraphError::Reconstruction(e) => write!(f, "failed to reconstruct extracted graph: {e}"),
            EGraphError::Graph(e) => write!(f, "invalid input graph: {e}"),
        }
    }
}

impl std::error::Error for EGraphError {}

impl From<GraphError> for EGraphError {
    fn from(e: GraphError) -> Self {
        EGraphError::Graph(e)
    }
}

/// A hash-consed e-graph over tensor operators.
#[derive(Debug, Default)]
pub struct EGraph {
    classes: Vec<EClass>,
    parents: Vec<usize>,
    memo: HashMap<String, ClassId>,
    /// Maps original-graph tensors to e-classes (filled by [`EGraph::from_graph`]).
    pub roots: Vec<ClassId>,
}

impl EGraph {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of e-classes (after canonicalisation some may be unioned).
    pub fn num_classes(&self) -> usize {
        (0..self.classes.len()).filter(|&i| self.find_index(i) == i).count()
    }

    /// Total number of e-nodes across canonical classes.
    pub fn num_nodes(&self) -> usize {
        (0..self.classes.len())
            .filter(|&i| self.find_index(i) == i)
            .map(|i| self.classes[i].nodes.len())
            .sum()
    }

    fn find_index(&self, mut i: usize) -> usize {
        while self.parents[i] != i {
            i = self.parents[i];
        }
        i
    }

    /// Canonical representative of an e-class.
    pub fn find(&self, id: ClassId) -> ClassId {
        ClassId(self.find_index(id.0))
    }

    /// The canonical e-class data for an id.
    pub fn class(&self, id: ClassId) -> &EClass {
        &self.classes[self.find(id).0]
    }

    fn canonicalize(&self, node: &ENode) -> ENode {
        let mut n = node.clone();
        for c in &mut n.children {
            *c = self.find(*c);
        }
        n
    }

    /// Adds an e-node, returning the e-class that contains it (an existing
    /// class when an identical e-node is already present).
    pub fn add(&mut self, node: ENode, shape: TensorShape) -> ClassId {
        let node = self.canonicalize(&node);
        let key = node.key();
        if let Some(&id) = self.memo.get(&key) {
            return self.find(id);
        }
        let id = ClassId(self.classes.len());
        self.classes.push(EClass { nodes: vec![node], shape });
        self.parents.push(id.0);
        self.memo.insert(key, id);
        id
    }

    /// Merges two e-classes, asserting they compute tensors of the same shape.
    ///
    /// Returns the canonical id of the merged class and whether anything
    /// changed.
    pub fn union(&mut self, a: ClassId, b: ClassId) -> (ClassId, bool) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return (ra, false);
        }
        assert_eq!(
            self.classes[ra.0].shape, self.classes[rb.0].shape,
            "cannot union e-classes of different shapes"
        );
        // Union by keeping the smaller id as the representative.
        let (keep, merge) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
        self.parents[merge.0] = keep.0;
        let moved = std::mem::take(&mut self.classes[merge.0].nodes);
        self.classes[keep.0].nodes.extend(moved);
        (keep, true)
    }

    /// Restores congruence after unions: re-canonicalises every e-node and
    /// merges classes that now contain identical e-nodes.
    pub fn rebuild(&mut self) {
        loop {
            let mut changed = false;
            let mut memo: HashMap<String, ClassId> = HashMap::new();
            let mut pending: Vec<(ClassId, ClassId)> = Vec::new();
            for i in 0..self.classes.len() {
                if self.find_index(i) != i {
                    continue;
                }
                let canon_nodes: Vec<ENode> =
                    self.classes[i].nodes.iter().map(|n| self.canonicalize(n)).collect();
                for n in &canon_nodes {
                    let key = n.key();
                    match memo.get(&key) {
                        Some(&other) if self.find(other) != ClassId(i) => {
                            pending.push((other, ClassId(i)));
                        }
                        None => {
                            memo.insert(key, ClassId(i));
                        }
                        _ => {}
                    }
                }
                self.classes[i].nodes = canon_nodes;
                self.classes[i].nodes.sort_by_key(|n| n.key());
                self.classes[i].nodes.dedup();
            }
            for (a, b) in pending {
                let (_, did) = self.union(a, b);
                changed |= did;
            }
            self.memo = memo.into_iter().map(|(k, v)| (k, self.find(v))).collect();
            if !changed {
                break;
            }
        }
    }

    /// Iterates over canonical classes.
    pub fn iter_classes(&self) -> impl Iterator<Item = (ClassId, &EClass)> {
        (0..self.classes.len())
            .filter(move |&i| self.find_index(i) == i)
            .map(move |i| (ClassId(i), &self.classes[i]))
    }

    /// Builds an e-graph from a dataflow graph.
    ///
    /// # Errors
    ///
    /// Returns [`EGraphError::Unsupported`] for graphs containing
    /// multi-output operators.
    pub fn from_graph(graph: &Graph) -> Result<Self, EGraphError> {
        let mut eg = Self::new();
        let order = graph.topo_order()?;
        let mut class_of: HashMap<NodeId, ClassId> = HashMap::new();
        for id in order {
            let node = graph.node(id)?;
            if node.outputs.len() != 1 {
                return Err(EGraphError::Unsupported(node.op));
            }
            let shape = node.outputs[0].clone();
            let enode = if node.op.is_source() {
                ENode {
                    op: node.op,
                    attrs: node.attrs.clone(),
                    children: Vec::new(),
                    source_shape: Some(shape.clone()),
                    source_id: Some(id.index() as u32),
                }
            } else {
                let mut children = Vec::with_capacity(node.inputs.len());
                for r in &node.inputs {
                    if r.port != 0 {
                        return Err(EGraphError::Unsupported(node.op));
                    }
                    children.push(*class_of.get(&r.node).expect("topological order guarantees parents"));
                }
                ENode {
                    op: node.op,
                    attrs: node.attrs.clone(),
                    children,
                    source_shape: None,
                    source_id: None,
                }
            };
            let cid = eg.add(enode, shape);
            class_of.insert(id, cid);
        }
        eg.roots = graph.outputs().iter().map(|r| eg.find(class_of[&r.node])).collect();
        Ok(eg)
    }

    /// Extracts the cheapest representative graph using a per-node cost
    /// function `cost(op, attrs, input shapes, output shape) -> cost`.
    ///
    /// # Errors
    ///
    /// Returns an error if reconstruction fails (which indicates an
    /// inconsistent e-graph).
    pub fn extract<F>(&self, mut node_cost: F) -> Result<Graph, EGraphError>
    where
        F: FnMut(&ENode, &[TensorShape], &TensorShape) -> f64,
    {
        // Bottom-up cost computation over canonical classes.
        let canon: Vec<ClassId> = self.iter_classes().map(|(id, _)| id).collect();
        let mut best_cost: HashMap<ClassId, f64> = HashMap::new();
        let mut best_node: HashMap<ClassId, ENode> = HashMap::new();

        let mut changed = true;
        while changed {
            changed = false;
            for &cid in &canon {
                let class = &self.classes[cid.0];
                for node in &class.nodes {
                    let child_shapes: Vec<TensorShape> =
                        node.children.iter().map(|c| self.class(*c).shape.clone()).collect();
                    let children_cost: Option<f64> = node
                        .children
                        .iter()
                        .map(|c| best_cost.get(&self.find(*c)).copied())
                        .sum::<Option<f64>>();
                    let Some(children_cost) = children_cost else { continue };
                    let total = children_cost + node_cost(node, &child_shapes, &class.shape);
                    if best_cost.get(&cid).map(|&c| total < c).unwrap_or(true) {
                        best_cost.insert(cid, total);
                        best_node.insert(cid, node.clone());
                        changed = true;
                    }
                }
            }
        }

        // Reconstruct a graph from the chosen representatives.
        let mut g = Graph::new();
        let mut built: HashMap<ClassId, NodeId> = HashMap::new();
        let mut stack: Vec<ClassId> = self.roots.iter().map(|r| self.find(*r)).collect();
        // Emit in dependency order via an explicit DFS with a visitation stack.
        while let Some(&cid) = stack.last() {
            if built.contains_key(&cid) {
                stack.pop();
                continue;
            }
            let node = best_node.get(&cid).ok_or(EGraphError::NodeLimit(self.num_nodes()))?;
            let missing: Vec<ClassId> =
                node.children.iter().map(|c| self.find(*c)).filter(|c| !built.contains_key(c)).collect();
            if !missing.is_empty() {
                stack.extend(missing);
                continue;
            }
            stack.pop();
            let new_id = if node.op.is_source() {
                let shape = node.source_shape.clone().expect("source e-node retains its shape");
                match node.op {
                    OpKind::Input => g.add_input(shape),
                    OpKind::Weight => g.add_weight(shape),
                    _ => g.add_constant(shape),
                }
            } else {
                let inputs: Vec<TensorRef> =
                    node.children.iter().map(|c| TensorRef::new(built[&self.find(*c)])).collect();
                g.add_node(node.op, node.attrs.clone(), inputs).map_err(EGraphError::Reconstruction)?
            };
            built.insert(cid, new_id);
        }
        for root in &self.roots {
            g.mark_output(TensorRef::new(built[&self.find(*root)]));
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::OpAttributes;

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    fn mlp_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 64]));
        let w1 = g.add_weight(shape(&[64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w1.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn round_trip_without_rewrites_preserves_structure() {
        let g = mlp_graph();
        let eg = EGraph::from_graph(&g).unwrap();
        assert_eq!(eg.num_classes(), g.num_nodes());
        let out = eg.extract(|_, _, _| 1.0).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.num_nodes(), g.num_nodes());
        assert_eq!(out.count_op(OpKind::MatMul), 1);
        assert_eq!(out.count_op(OpKind::Relu), 1);
    }

    #[test]
    fn hashcons_deduplicates_identical_nodes() {
        let mut eg = EGraph::new();
        let a = eg.add(
            ENode {
                op: OpKind::Input,
                attrs: OpAttributes::default(),
                children: vec![],
                source_shape: Some(shape(&[1, 4])),
                source_id: Some(0),
            },
            shape(&[1, 4]),
        );
        let b = eg.add(
            ENode {
                op: OpKind::Input,
                attrs: OpAttributes::default(),
                children: vec![],
                source_shape: Some(shape(&[1, 4])),
                source_id: Some(0),
            },
            shape(&[1, 4]),
        );
        assert_eq!(a, b);
        assert_eq!(eg.num_classes(), 1);
    }

    #[test]
    fn union_and_rebuild_maintain_congruence() {
        // Two "different" leaves x and y; Relu(x) and Relu(y) differ until we
        // union x with y, after which rebuild must merge the Relu classes.
        let mut eg = EGraph::new();
        let leaf = |eg: &mut EGraph, id: u32| {
            eg.add(
                ENode {
                    op: OpKind::Input,
                    attrs: OpAttributes::default(),
                    children: vec![],
                    source_shape: Some(shape(&[1, 4])),
                    source_id: Some(id),
                },
                shape(&[1, 4]),
            )
        };
        let x = leaf(&mut eg, 0);
        let y = leaf(&mut eg, 1);
        let relu = |eg: &mut EGraph, c: ClassId| {
            eg.add(
                ENode {
                    op: OpKind::Relu,
                    attrs: OpAttributes::default(),
                    children: vec![c],
                    source_shape: None,
                    source_id: None,
                },
                shape(&[1, 4]),
            )
        };
        let rx = relu(&mut eg, x);
        let ry = relu(&mut eg, y);
        assert_ne!(eg.find(rx), eg.find(ry));
        eg.union(x, y);
        eg.rebuild();
        assert_eq!(eg.find(rx), eg.find(ry));
    }

    #[test]
    fn multi_output_graphs_are_rejected() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8, 4, 4]));
        let split =
            g.add_node(OpKind::Split, xrlflow_graph::OpAttributes::split(1, 2), vec![x.into()]).unwrap();
        let a =
            g.add_node(OpKind::Relu, OpAttributes::default(), vec![TensorRef::with_port(split, 0)]).unwrap();
        g.mark_output(a.into());
        assert!(matches!(EGraph::from_graph(&g), Err(EGraphError::Unsupported(OpKind::Split))));
    }

    #[test]
    fn extraction_picks_cheaper_alternative() {
        // Build Relu(x) and union its class with Identity(x); extraction with
        // a cost that penalises Relu must pick Identity.
        let g = mlp_graph();
        let mut eg = EGraph::from_graph(&g).unwrap();
        // Find the Relu class and the MatMul class.
        let relu_class =
            eg.iter_classes().find(|(_, c)| c.nodes.iter().any(|n| n.op == OpKind::Relu)).unwrap().0;
        let matmul_class =
            eg.iter_classes().find(|(_, c)| c.nodes.iter().any(|n| n.op == OpKind::MatMul)).unwrap().0;
        let out_shape = eg.class(relu_class).shape.clone();
        let identity = ENode {
            op: OpKind::Identity,
            attrs: OpAttributes::default(),
            children: vec![matmul_class],
            source_shape: None,
            source_id: None,
        };
        let id_class = eg.add(identity, out_shape);
        eg.union(relu_class, id_class);
        eg.rebuild();
        let extracted = eg.extract(|n, _, _| if n.op == OpKind::Relu { 100.0 } else { 1.0 }).unwrap();
        assert_eq!(extracted.count_op(OpKind::Relu), 0);
        assert_eq!(extracted.count_op(OpKind::Identity), 1);
    }
}
