//! # xrlflow-egraph
//!
//! A from-scratch e-graph and equality-saturation optimiser reproducing the
//! Tensat baseline the paper compares X-RLflow against (Figure 8).
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_cost::DeviceProfile;
//! use xrlflow_egraph::{TensatConfig, TensatOptimizer};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
//! let result = tensat.optimize(&graph).unwrap();
//! println!("extracted graph with {} nodes from {} e-nodes", result.graph.num_nodes(), result.num_nodes);
//! ```

#![warn(missing_docs)]

mod egraph;
mod tensat;

pub use egraph::{ClassId, EClass, EGraph, EGraphError, ENode};
pub use tensat::{TensatConfig, TensatOptimizer, TensatResult};
