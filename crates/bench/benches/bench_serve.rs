//! Serving-layer benchmark: graph ingestion cost, cold-miss vs warm
//! cache-hit request latency, sustained requests/sec against a warm cache,
//! and the cache-hit ratio of a mixed request stream.
//!
//! The service under test is a frozen snapshot replica behind the
//! canonical-hash result cache — the production configuration described in
//! ROADMAP's "Serving dataflow". Cold misses pay one greedy policy episode;
//! warm hits pay a hash and a map lookup, so the hit/miss ratio is the
//! headline number a deployment cares about.
//!
//! Knobs: `XRLFLOW_ITERS` (timed repetitions), `XRLFLOW_MAX_CANDIDATES`
//! (action-space bound), `XRLFLOW_SERVE_REQUESTS` (requests per timed
//! batch), `XRLFLOW_BENCH_JSON` (result artifact path).

use std::sync::Arc;

use xrlflow_bench::{env_usize, finish, iters_from_env, report, report_rate, report_ratio, time_ns};
use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::Graph;
use xrlflow_serve::{http_call, CacheConfig, CacheEntry, OptimizeServer, OptimizeService, ResultCache};

fn main() {
    let iters = iters_from_env(3);
    let requests = env_usize("XRLFLOW_SERVE_REQUESTS", 64);

    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", config.env.max_candidates);

    let snapshot = XrlflowAgent::new(&config, 0).snapshot();
    let kinds = [ModelKind::SqueezeNet, ModelKind::Bert];
    let graphs: Vec<Graph> = kinds.iter().map(|&k| build_model(k, ModelScale::Bench).unwrap()).collect();
    let bodies: Vec<String> = graphs.iter().map(Graph::to_json).collect();

    println!("== optimisation service ({requests} requests/batch) ==\n");

    // Ingestion: JSON import (parse + full validation) of a request body.
    for (kind, body) in kinds.iter().zip(&bodies) {
        let ns = time_ns(1, iters, || Graph::from_json(body).unwrap().num_nodes());
        report(&format!("serve/import_json/{}", kind.name()), ns);
    }

    // Cold miss vs warm hit on one graph. A fresh service per iteration
    // keeps every "cold" measurement genuinely cold.
    let cold_ns = time_ns(0, iters, || {
        let service = OptimizeService::from_snapshot(&config, &snapshot).unwrap();
        service.optimize_json(&bodies[0]).unwrap().steps
    });
    report("serve/request_cold_miss/SqueezeNet", cold_ns);

    let warm_service = Arc::new(OptimizeService::from_snapshot(&config, &snapshot).unwrap());
    for body in &bodies {
        warm_service.optimize_json(body).unwrap();
    }
    let warm_ns = time_ns(1, iters, || warm_service.optimize_json(&bodies[0]).unwrap().steps);
    report("serve/request_warm_hit/SqueezeNet", warm_ns);
    report_ratio("serve/cold_over_warm/SqueezeNet", cold_ns / warm_ns.max(1.0));

    // Sustained throughput over a mixed stream of known graphs (all warm).
    let stream_ns = time_ns(1, iters, || {
        let mut steps = 0;
        for i in 0..requests {
            steps += warm_service.optimize_json(&bodies[i % bodies.len()]).unwrap().steps;
        }
        steps
    });
    report_rate("serve/requests_per_sec_warm", requests as f64 / (stream_ns / 1e9));

    // Cache-hit ratio of everything this process sent to the warm service.
    let stats = warm_service.stats();
    report_ratio("serve/cache_hit_ratio", stats.cache_hits as f64 / stats.requests.max(1) as f64);
    println!(
        "   ({} requests, {} hits, {} policy episodes)",
        stats.requests, stats.cache_hits, stats.policy_invocations
    );

    // Cache persistence round trip (save + load of the warm cache).
    let persist_ns = time_ns(1, iters, || {
        let restored = ResultCache::from_json(&warm_service.cache_to_json()).unwrap();
        restored.len()
    });
    report("serve/cache_persist_roundtrip", persist_ns);

    // End-to-end HTTP throughput: the same warm-hit stream, but over a real
    // socket through the blocking front end — connect + parse + route +
    // respond per request, the cost a deployment actually pays per call.
    let server = OptimizeServer::bind(Arc::clone(&warm_service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let http_ns = time_ns(1, iters, || {
        let mut hits = 0;
        for i in 0..requests {
            let reply = http_call(addr, "POST", "/optimize", bodies[i % bodies.len()].as_bytes()).unwrap();
            assert_eq!(reply.status, 200);
            hits += reply.body.len();
        }
        hits
    });
    report_rate("serve/http_requests_per_sec_warm", requests as f64 / (http_ns / 1e9));
    drop(server);

    // Eviction on vs off: raw cache insert throughput with no budget versus
    // a budget small enough that nearly every insert also evicts (the LRU
    // index bookkeeping is the difference being measured).
    let inserts = 1024usize;
    let entry_graph = Arc::new(graphs[0].clone());
    let make_entry = || CacheEntry {
        graph: Arc::clone(&entry_graph),
        initial_latency_ms: 1.0,
        final_latency_ms: 0.5,
        steps: 3,
    };
    let unbounded_ns = time_ns(1, iters, || {
        let mut cache = ResultCache::new();
        for key in 0..inserts as u64 {
            cache.insert(key, make_entry());
        }
        cache.len()
    });
    report_rate("serve/cache_inserts_per_sec_unbounded", inserts as f64 / (unbounded_ns / 1e9));
    let budget = CacheConfig::builder().max_entries(inserts / 8).build().unwrap();
    let evicting_ns = time_ns(1, iters, || {
        let mut cache = ResultCache::with_config(budget);
        for key in 0..inserts as u64 {
            cache.insert(key, make_entry());
        }
        cache.len()
    });
    report_rate("serve/cache_inserts_per_sec_evicting", inserts as f64 / (evicting_ns / 1e9));
    report_ratio("serve/eviction_overhead", evicting_ns / unbounded_ns.max(1.0));

    finish("bench_serve");
}
