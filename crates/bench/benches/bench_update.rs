//! Data-parallel PPO update benchmark: wall-clock per update round (one full
//! pass of clip-objective re-evaluation, gradient merge and optimiser steps
//! over a fixed rollout buffer), serial oracle vs 1/2/4 update workers, on
//! SqueezeNet and BERT.
//!
//! Every worker count re-evaluates the identical transitions from
//! snapshot-built replicas and merges per-transition gradient buffers in
//! minibatch-position order, so all configurations land on bit-identical
//! parameters — the only thing that varies is wall-clock time. The speedup
//! is hardware-bound like the rollout engine's: expect ~1x on a single-core
//! container and ~min(W, cores) on real multi-core machines.
//!
//! Knobs: `XRLFLOW_ITERS` (timed repetitions), `XRLFLOW_MAX_CANDIDATES`
//! (action-space bound), `XRLFLOW_UPDATE_EPISODES` (episodes collected into
//! the timed buffer), `XRLFLOW_BENCH_JSON` (result artifact path).

use xrlflow_bench::{env_usize, finish, iters_from_env, report, report_ratio, time_ns};
use xrlflow_core::{Trainer, XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_rollout::{collect_serial, update_parallel, EnvSpec};

fn main() {
    let iters = iters_from_env(3);
    let episodes = env_usize("XRLFLOW_UPDATE_EPISODES", 4);
    let worker_counts = [1usize, 2, 4];

    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", config.env.max_candidates);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== PPO update wall-clock per round ({episodes}-episode buffer, {cores} cores available) ==\n");

    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let spec = EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone());
        let agent = XrlflowAgent::new(&config, 0);
        let snapshot = agent.snapshot();
        let rollouts = collect_serial(&agent, &spec, 0, episodes, 7);
        println!("-- {} ({} transitions/round)", kind.name(), rollouts.buffer.len());

        // The update consumes the buffer and advances agent + optimiser, so
        // every timed round rebuilds all three from the shared template; the
        // rebuild cost is identical across variants.
        let serial_ns = time_ns(1, iters, || {
            let mut trainer = Trainer::new(config.clone(), 7);
            let mut agent = XrlflowAgent::from_snapshot(&config, &snapshot).unwrap();
            let mut buffer = rollouts.buffer.clone();
            trainer.update(&mut agent, &mut buffer).transitions
        });
        report(&format!("update/ms_per_round/serial/{}", kind.name()), serial_ns);

        let mut parallel_ns = Vec::new();
        for &workers in &worker_counts {
            let ns = time_ns(1, iters, || {
                let mut trainer = Trainer::new(config.clone(), 7);
                let mut agent = XrlflowAgent::from_snapshot(&config, &snapshot).unwrap();
                let mut buffer = rollouts.buffer.clone();
                update_parallel(&mut trainer, &mut agent, &mut buffer, &[], workers)
                    .expect("snapshot matches the agent architecture")
                    .transitions
            });
            report(&format!("update/ms_per_round/{}w/{}", workers, kind.name()), ns);
            parallel_ns.push(ns);
        }
        report_ratio(
            &format!("update/speedup_4w_vs_serial/{}", kind.name()),
            serial_ns / parallel_ns[parallel_ns.len() - 1],
        );
        println!();
    }

    finish("bench_update");
}
