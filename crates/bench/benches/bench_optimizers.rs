//! Criterion benchmarks comparing whole-optimiser runs (TASO greedy, TASO
//! backtracking, Tensat, one X-RLflow policy step) on a common workload.
//! These are the per-figure building blocks; the table/figure binaries in
//! `src/bin` print the paper-formatted results.

use criterion::{criterion_group, criterion_main, Criterion};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_cost::{CostModel, DeviceProfile};
use xrlflow_egraph::{TensatConfig, TensatOptimizer};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_taso::{BacktrackingOptimizer, GreedyOptimizer, SearchConfig};

fn workload() -> xrlflow_graph::Graph {
    build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap()
}

fn bench_taso_greedy(c: &mut Criterion) {
    let graph = workload();
    let mut group = c.benchmark_group("optimizers");
    group.sample_size(10);
    group.bench_function("taso_greedy/squeezenet", |b| {
        b.iter(|| {
            let opt = GreedyOptimizer::new(
                RuleSet::standard(),
                CostModel::new(DeviceProfile::gtx1080()),
                SearchConfig { budget: 20, max_candidates: 32, alpha: 1.05 },
            );
            opt.optimize(&graph).steps
        })
    });
    group.bench_function("taso_backtracking/squeezenet", |b| {
        b.iter(|| {
            let opt = BacktrackingOptimizer::new(
                RuleSet::standard(),
                CostModel::new(DeviceProfile::gtx1080()),
                SearchConfig { budget: 30, max_candidates: 32, alpha: 1.05 },
            );
            opt.optimize(&graph).steps
        })
    });
    group.bench_function("tensat/squeezenet", |b| {
        b.iter(|| {
            let opt = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
            opt.optimize(&graph).unwrap().graph.num_nodes()
        })
    });
    group.bench_function("xrlflow_policy_rollout/squeezenet", |b| {
        b.iter(|| {
            let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
            system.optimize(&graph).steps
        })
    });
    group.finish();
}

criterion_group!(benches, bench_taso_greedy);
criterion_main!(benches);
