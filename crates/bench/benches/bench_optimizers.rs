//! Benchmarks comparing whole-optimiser runs (TASO greedy, TASO
//! backtracking, Tensat, one X-RLflow policy rollout) on a common workload.
//! These are the per-figure building blocks; the table/figure binaries in
//! `src/bin` print the paper-formatted results.

use xrlflow_bench::{finish, report, time_ns};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_cost::{CostModel, DeviceProfile};
use xrlflow_egraph::{TensatConfig, TensatOptimizer};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_taso::{BacktrackingOptimizer, GreedyOptimizer, SearchConfig};

fn workload() -> xrlflow_graph::Graph {
    build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap()
}

fn main() {
    let graph = workload();
    report(
        "optimizers/taso_greedy/squeezenet",
        time_ns(1, 5, || {
            let opt = GreedyOptimizer::new(
                RuleSet::standard(),
                CostModel::new(DeviceProfile::gtx1080()),
                SearchConfig { budget: 20, max_candidates: 32, alpha: 1.05 },
            );
            opt.optimize(&graph).steps
        }),
    );
    report(
        "optimizers/taso_backtracking/squeezenet",
        time_ns(1, 5, || {
            let opt = BacktrackingOptimizer::new(
                RuleSet::standard(),
                CostModel::new(DeviceProfile::gtx1080()),
                SearchConfig { budget: 30, max_candidates: 32, alpha: 1.05 },
            );
            opt.optimize(&graph).steps
        }),
    );
    report(
        "optimizers/tensat/squeezenet",
        time_ns(1, 5, || {
            let opt = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
            opt.optimize(&graph).unwrap().graph.num_nodes()
        }),
    );
    report(
        "optimizers/xrlflow_policy_rollout/squeezenet",
        time_ns(0, 3, || {
            let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 0);
            system.optimize(&graph).steps
        }),
    );

    finish("bench_optimizers");
}
