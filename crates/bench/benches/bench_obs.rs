//! Telemetry overhead benchmark: per-record cost of each metric primitive
//! (ns/op) and the end-to-end overhead of an instrumented rollout versus the
//! same rollout with telemetry disabled.
//!
//! The headline metric is `obs/rollout/uninstrumented_over_instrumented`:
//! wall-clock of a telemetry-disabled collection divided by the same
//! collection with the registry active. A healthy build sits at ~1.0x
//! (the "<2% overhead" contract from ROADMAP.md's telemetry rules); if
//! instrumentation ever gets expensive the ratio drops and the direction-
//! aware CI gate flags it.
//!
//! Knobs: `XRLFLOW_ITERS` (timed repetitions), `XRLFLOW_MAX_CANDIDATES`
//! (action-space bound), `XRLFLOW_OBS_EPISODES` (episodes per timed rollout
//! batch), `XRLFLOW_BENCH_JSON` (result artifact path).

use xrlflow_bench::{env_usize, finish, iters_from_env, report, report_ratio, time_ns};
use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_rollout::{collect_parallel, EnvSpec};

/// Records per timed batch for the primitive micro-benchmarks — large
/// enough that loop overhead and the timer read vanish in the average.
const RECORDS: usize = 100_000;

fn main() {
    let iters = iters_from_env(3);
    let episodes = env_usize("XRLFLOW_OBS_EPISODES", 2);

    println!("== telemetry record cost ({RECORDS} records/batch) ==\n");

    let counter = xrlflow_obs::counter!("bench_obs/counter");
    let ns = time_ns(1, iters, || {
        for _ in 0..RECORDS {
            counter.inc();
        }
        counter.get()
    });
    report("obs/record/counter_inc", ns / RECORDS as f64);

    let gauge = xrlflow_obs::gauge!("bench_obs/gauge");
    let ns = time_ns(1, iters, || {
        for i in 0..RECORDS {
            gauge.set(i as f64);
        }
        gauge.get()
    });
    report("obs/record/gauge_set", ns / RECORDS as f64);

    let histogram = xrlflow_obs::histogram!("bench_obs/histogram");
    let ns = time_ns(1, iters, || {
        for i in 0..RECORDS {
            histogram.record(i as u64);
        }
        histogram.count()
    });
    report("obs/record/histogram_record", ns / RECORDS as f64);

    let ns = time_ns(1, iters, || {
        for _ in 0..RECORDS {
            let _span = xrlflow_obs::span!("bench_obs/span");
        }
        xrlflow_obs::histogram!("bench_obs/span").count()
    });
    report("obs/record/span_start_drop", ns / RECORDS as f64);

    // End-to-end: the instrumented rollout hot loop (spans, busy accounting,
    // memo + candidate counters all live) vs the identical loop with the
    // global enabled flag off. Identical seeds, bit-identical episodes —
    // the only difference is whether records land. The per-batch cost is
    // milliseconds while the true instrumentation delta is microseconds, so
    // two separately-timed blocks would drown in scheduler noise; instead
    // the modes are interleaved batch-by-batch and each mode reports its
    // best (minimum) batch time, which is robust to one-sided noise spikes.
    println!("\n== instrumented vs uninstrumented rollout ({episodes} episodes/batch) ==\n");
    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", config.env.max_candidates);
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let spec = EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone());
    let snapshot = XrlflowAgent::new(&config, 0).snapshot();

    let collect = || {
        collect_parallel(&config, &snapshot, &spec, 0, episodes, 7, 1)
            .expect("snapshot matches the agent architecture")
            .buffer
            .len()
    };
    // Warm both paths (and the shared simulator memo) before timing.
    std::hint::black_box(collect());
    xrlflow_obs::set_enabled(false);
    std::hint::black_box(collect());
    xrlflow_obs::set_enabled(true);

    let pairs = iters.max(1) * 4;
    let mut instrumented_ns = f64::INFINITY;
    let mut uninstrumented_ns = f64::INFINITY;
    for _ in 0..pairs {
        let start = std::time::Instant::now();
        std::hint::black_box(collect());
        instrumented_ns = instrumented_ns.min(start.elapsed().as_nanos() as f64);

        xrlflow_obs::set_enabled(false);
        let start = std::time::Instant::now();
        std::hint::black_box(collect());
        uninstrumented_ns = uninstrumented_ns.min(start.elapsed().as_nanos() as f64);
        xrlflow_obs::set_enabled(true);
    }

    report("obs/rollout/instrumented", instrumented_ns);
    report("obs/rollout/uninstrumented", uninstrumented_ns);
    report_ratio("obs/rollout/uninstrumented_over_instrumented", uninstrumented_ns / instrumented_ns);
    let overhead_percent = (instrumented_ns / uninstrumented_ns - 1.0) * 100.0;
    println!("  (instrumentation overhead: {overhead_percent:+.2}% — contract: < 2%)");

    finish("bench_obs");
}
