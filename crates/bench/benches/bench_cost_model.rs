//! Micro-benchmarks for the cost model and the end-to-end latency simulator
//! (these run once per candidate / every N steps respectively, so their
//! throughput bounds the whole optimisation loop). The simulator is measured
//! both cold (fresh instance per iteration) and warm (memoised by canonical
//! hash), since the RL loop overwhelmingly re-measures known graphs.

use xrlflow_bench::{finish, report, time_ns};
use xrlflow_cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

fn main() {
    let cm = CostModel::new(DeviceProfile::gtx1080());
    println!("== cost model ==");
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        report(&format!("cost_model/{}", kind.name()), time_ns(3, 50, || cm.graph_cost_ms(&graph)));
    }

    println!("\n== end-to-end simulator ==");
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let cold = time_ns(0, 20, || InferenceSimulator::new(DeviceProfile::gtx1080()).measure_ms(&graph, 0));
        let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
        sim.measure_ms(&graph, 0);
        let warm = time_ns(3, 50, || sim.measure_ms(&graph, 0));
        report(&format!("e2e_simulator/cold/{}", kind.name()), cold);
        report(&format!("e2e_simulator/memoized/{}", kind.name()), warm);
    }

    finish("bench_cost_model");
}
