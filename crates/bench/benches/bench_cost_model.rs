//! Criterion micro-benchmarks for the cost model and the end-to-end latency
//! simulator (these run once per candidate / every N steps respectively, so
//! their throughput bounds the whole optimisation loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xrlflow_cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

fn bench_cost_model(c: &mut Criterion) {
    let cm = CostModel::new(DeviceProfile::gtx1080());
    let mut group = c.benchmark_group("cost_model");
    group.sample_size(20);
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| cm.graph_cost_ms(g))
        });
    }
    group.finish();
}

fn bench_e2e_simulator(c: &mut Criterion) {
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
    let mut group = c.benchmark_group("e2e_simulator");
    group.sample_size(20);
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| sim.measure_ms(g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_e2e_simulator);
criterion_main!(benches);
