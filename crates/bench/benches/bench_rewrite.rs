//! Micro-benchmarks for the substitution engine: pattern matching and
//! candidate generation throughput on the evaluated workloads.
//!
//! The headline comparison is patch-based candidate generation (the current
//! pipeline: one [`xrlflow_rewrite::Candidate`] carries a small delta) against
//! the pre-patch eager pipeline (materialise + validate + canonically hash a
//! full graph per candidate), which is kept as
//! `RuleSet::generate_candidates_eager` for exactly this purpose.

use xrlflow_bench::{finish, iters_from_env, report, report_ratio, time_ns};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;

fn main() {
    let rules = RuleSet::standard();
    let iters = iters_from_env(20);

    println!("== candidate generation: patch-based vs eager (the old clone-per-candidate path) ==");
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::InceptionV3] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let patch_ns = time_ns(3, iters, || rules.generate_candidates(&graph, 64).len());
        let eager_ns = time_ns(3, iters, || rules.generate_candidates_eager(&graph, 64).len());
        report(&format!("candidate_generation/patch/{}", kind.name()), patch_ns);
        report(&format!("candidate_generation/eager/{}", kind.name()), eager_ns);
        report_ratio(&format!("candidate_generation/speedup/{}", kind.name()), eager_ns / patch_ns);
    }

    println!("\n== pattern matching ==");
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    report("count_matches/squeezenet", time_ns(3, iters.max(50), || rules.count_matches(&graph)));

    println!("\n== single-candidate materialisation ==");
    let candidates = rules.generate_candidates(&graph, 64);
    if let Some(c) = candidates.first() {
        report(
            "materialize_one_candidate/squeezenet",
            time_ns(3, iters.max(50), || c.materialize(&graph).unwrap().num_nodes()),
        );
    }

    finish("bench_rewrite");
}
