//! Criterion micro-benchmarks for the substitution engine: pattern matching
//! and candidate generation throughput on the evaluated workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;

fn bench_candidate_generation(c: &mut Criterion) {
    let rules = RuleSet::standard();
    let mut group = c.benchmark_group("candidate_generation");
    group.sample_size(10);
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::InceptionV3] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &graph, |b, g| {
            b.iter(|| rules.generate_candidates(g, 64).len())
        });
    }
    group.finish();
}

fn bench_match_counting(c: &mut Criterion) {
    let rules = RuleSet::standard();
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    c.bench_function("count_matches/squeezenet", |b| b.iter(|| rules.count_matches(&graph)));
}

criterion_group!(benches, bench_candidate_generation, bench_match_counting);
criterion_main!(benches);
