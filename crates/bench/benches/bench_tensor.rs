//! Micro-benchmarks for the tensor hot paths: the tiled matmul kernels at
//! real GAT-layer shapes (against the retained naive reference), the
//! transposed-RHS backward kernel against materialising a transpose, a full
//! tape forward/backward step on a fresh tape vs a recycled one, and the
//! gradient-buffer pooling primitives behind the PPO update's index-ordered
//! merge.

use xrlflow_bench::{finish, iters_from_env, report, report_ratio, time_ns};
use xrlflow_tensor::{GradBuffer, Mlp, ParamStore, Tape, Tensor, XorShiftRng};

fn random_tensor(rng: &mut XorShiftRng, shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    let data: Vec<f32> = (0..numel).map(|_| rng.uniform(-1.0, 1.0)).collect();
    Tensor::from_vec(data, shape)
}

fn main() {
    // Everything here is micro-scale (µs per iteration), so the pinned CI
    // iteration count that keeps the episode-driven benches quick would
    // leave these metrics — especially the fresh-vs-recycled allocator
    // ratios — at the mercy of a single scheduler hiccup. Floor the sample
    // count; the whole binary still finishes in well under a second.
    let iters = iters_from_env(10).max(30);
    let mut rng = XorShiftRng::new(0xBEEF);

    // The shapes a GAT layer actually multiplies: the node projection
    // ([N, H] x [H, H]), the attention scoring column ([N, H] x [H, 1]) and
    // the weight-gradient shape of the backward pass ([H, N] x [N, H]).
    println!("== matmul: tiled kernel vs naive reference ==");
    for (m, k, n) in [(256usize, 64usize, 64usize), (256, 64, 1), (64, 256, 64)] {
        let a = random_tensor(&mut rng, &[m, k]);
        let b = random_tensor(&mut rng, &[k, n]);
        // Sample the skinny shapes harder: an 8 µs measurement needs many
        // more repetitions than a 100 µs one to ride out scheduler blips.
        let shape_iters = iters * (256 * 64 * 64 / (m * k * n)).max(1);
        let tiled = time_ns(2, shape_iters, || a.matmul(&b).sum());
        let naive = time_ns(2, shape_iters, || a.matmul_naive(&b).sum());
        report(&format!("matmul/tiled/{m}x{k}x{n}"), tiled);
        report(&format!("matmul/naive/{m}x{k}x{n}"), naive);
        report_ratio(&format!("matmul/tiled_speedup/{m}x{k}x{n}"), naive / tiled);
    }

    // The backward pass's right-hand-side gradient: multiplying by Bᵀ
    // without ever materialising the transpose.
    println!("\n== matmul backward: transposed-RHS kernel vs transpose-then-matmul ==");
    let grad = random_tensor(&mut rng, &[256, 64]);
    let weight = random_tensor(&mut rng, &[64, 64]);
    let fused = time_ns(2, iters, || grad.matmul_transposed_rhs(&weight).sum());
    let materialised = time_ns(2, iters, || grad.matmul(&weight.transpose()).sum());
    report("matmul/transposed_rhs/256x64x64", fused);
    report("matmul/transpose_then_matmul/256x64x64", materialised);
    report_ratio("matmul/transposed_rhs_speedup/256x64x64", materialised / fused);

    // One full train step (forward + backward) through an MLP of the policy
    // head's published size, on a fresh tape per step vs one recycled tape —
    // the allocation-free steady state the training stack runs in.
    println!("\n== tape train step: fresh tape vs recycled arena ==");
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "bench", &[64, 256, 64, 1], &mut rng);
    let x = random_tensor(&mut rng, &[32, 64]);
    let mut train_step = |tape: &mut Tape| {
        let input = tape.constant_copied(&x);
        let out = mlp.forward(tape, &store, input);
        let loss = tape.mean_all(out);
        store.zero_grad();
        tape.backward(loss, &mut store);
        tape.value(loss).item()
    };
    let fresh = time_ns(2, iters, || {
        let mut tape = Tape::new();
        train_step(&mut tape)
    });
    let mut arena = Tape::new();
    let recycled = time_ns(2, iters, || {
        arena.recycle();
        train_step(&mut arena)
    });
    report("tape/train_step_fresh", fresh);
    report("tape/train_step_recycled", recycled);
    report_ratio("tape/recycle_speedup", fresh / recycled);

    // The PPO update's gradient-buffer primitives: allocating a buffer per
    // transition vs zero-filling a pooled one, and the position-ordered merge.
    println!("\n== gradient buffers: pooling and merge ==");
    let alloc = time_ns(2, iters, || GradBuffer::zeros_like(&store).norm());
    let mut pooled = GradBuffer::zeros_like(&store);
    let zero_fill = time_ns(2, iters, || {
        pooled.zero_fill();
        pooled.norm()
    });
    report("grad_buffer/zeros_like", alloc);
    report("grad_buffer/zero_fill", zero_fill);
    report_ratio("grad_buffer/zero_fill_speedup", alloc / zero_fill);
    let mut merged = GradBuffer::zeros_like(&store);
    let contribution = GradBuffer::zeros_like(&store);
    report(
        "grad_buffer/merge",
        time_ns(2, iters, || {
            merged.merge(&contribution);
            merged.norm()
        }),
    );

    finish("bench_tensor");
}
