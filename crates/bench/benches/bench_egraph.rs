//! Criterion micro-benchmarks for the e-graph substrate: conversion,
//! saturation and extraction (the Tensat baseline's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use xrlflow_cost::DeviceProfile;
use xrlflow_egraph::{EGraph, TensatConfig, TensatOptimizer};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

fn bench_egraph_conversion(c: &mut Criterion) {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    c.bench_function("egraph_from_graph/squeezenet", |b| {
        b.iter(|| EGraph::from_graph(&graph).unwrap().num_classes())
    });
}

fn bench_tensat_end_to_end(c: &mut Criterion) {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
    let mut group = c.benchmark_group("tensat");
    group.sample_size(10);
    group.bench_function("saturate_and_extract/squeezenet", |b| {
        b.iter(|| tensat.optimize(&graph).unwrap().graph.num_nodes())
    });
    group.finish();
}

criterion_group!(benches, bench_egraph_conversion, bench_tensat_end_to_end);
criterion_main!(benches);
