//! Micro-benchmarks for the e-graph substrate: conversion, saturation and
//! extraction (the Tensat baseline's inner loop).

use xrlflow_bench::{finish, report, time_ns};
use xrlflow_cost::DeviceProfile;
use xrlflow_egraph::{EGraph, TensatConfig, TensatOptimizer};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

fn main() {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    report(
        "egraph_from_graph/squeezenet",
        time_ns(3, 20, || EGraph::from_graph(&graph).unwrap().num_classes()),
    );

    let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
    report(
        "tensat/saturate_and_extract/squeezenet",
        time_ns(2, 10, || tensat.optimize(&graph).unwrap().graph.num_nodes()),
    );

    finish("bench_egraph");
}
