//! Parallel rollout engine benchmark: episode-collection throughput
//! (episodes/sec) at 1 vs N workers on SqueezeNet and BERT.
//!
//! Every worker count replays the identical per-episode seed schedule
//! against snapshot-built agent replicas, so all configurations collect
//! bit-identical transitions — the only thing that varies is wall-clock
//! time. The speedup therefore measures pure engine scaling and is bounded
//! by the hardware: expect ~1x on a single-core container and ~min(W, cores)
//! on real multi-core machines (the CI `bench-smoke` runners have several
//! cores).
//!
//! Knobs: `XRLFLOW_ITERS` (timed repetitions), `XRLFLOW_MAX_CANDIDATES`
//! (action-space bound), `XRLFLOW_ROLLOUT_EPISODES` (episodes per timed
//! batch), `XRLFLOW_BENCH_JSON` (result artifact path).

use xrlflow_bench::{env_usize, finish, iters_from_env, report_rate, report_ratio, time_ns};
use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_rollout::{collect_parallel, EnvSpec};

fn main() {
    let iters = iters_from_env(3);
    let episodes = env_usize("XRLFLOW_ROLLOUT_EPISODES", 8);
    let worker_counts = [1usize, 2, 4];

    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", config.env.max_candidates);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== rollout collection throughput ({episodes} episodes/batch, {cores} cores available) ==\n");

    for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let spec = EnvSpec::new(graph, RuleSet::standard(), DeviceProfile::gtx1080(), config.env.clone());
        let agent = XrlflowAgent::new(&config, 0);
        let snapshot = agent.snapshot();
        println!("-- {}", kind.name());

        let mut eps_per_sec = Vec::new();
        for &workers in &worker_counts {
            let ns = time_ns(1, iters, || {
                collect_parallel(&config, &snapshot, &spec, 0, episodes, 7, workers)
                    .expect("snapshot matches the agent architecture")
                    .buffer
                    .len()
            });
            let rate = episodes as f64 / (ns / 1e9);
            report_rate(&format!("rollout/episodes_per_sec/{}w/{}", workers, kind.name()), rate);
            eps_per_sec.push(rate);
        }
        report_ratio(
            &format!("rollout/speedup_4w_vs_1w/{}", kind.name()),
            eps_per_sec[eps_per_sec.len() - 1] / eps_per_sec[0],
        );
        println!();
    }

    finish("bench_rollout");
}
