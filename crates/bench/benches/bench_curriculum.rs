//! Multi-model curriculum rollout benchmark: episode-collection throughput
//! across a model-zoo curriculum, per model and for the sharded whole, at
//! 1/2/4 workers.
//!
//! Every configuration replays the identical `(spec, episode)` seed schedule
//! against snapshot-built agent replicas, so all worker counts collect
//! bit-identical transitions — the only thing that varies is wall-clock
//! time. Per-model rates show which zoo entries dominate a curriculum
//! round; the whole-curriculum rates show how well `(spec, episode)`
//! sharding turns cores into throughput (hardware-bound, ~min(W, cores)).
//!
//! Knobs: `XRLFLOW_ITERS` (timed repetitions), `XRLFLOW_MAX_CANDIDATES`
//! (action-space bound), `XRLFLOW_CURRICULUM_EPISODES` (episodes per spec
//! per timed batch), `XRLFLOW_BENCH_JSON` (result artifact path).

use xrlflow_bench::{env_usize, finish, iters_from_env, report_rate, report_ratio, time_ns};
use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_cost::DeviceProfile;
use xrlflow_graph::models::{ModelKind, ModelScale};
use xrlflow_rollout::{collect_curriculum_parallel, collect_curriculum_serial, Curriculum};

fn main() {
    let iters = iters_from_env(3);
    let episodes_per_spec = env_usize("XRLFLOW_CURRICULUM_EPISODES", 4);
    let worker_counts = [1usize, 2, 4];
    let kinds = [ModelKind::SqueezeNet, ModelKind::ResNet18, ModelKind::Bert];

    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", config.env.max_candidates);

    let curriculum =
        Curriculum::from_model_zoo(&kinds, ModelScale::Bench, DeviceProfile::gtx1080(), config.env.clone())
            .expect("model zoo builds");
    let agent = XrlflowAgent::new(&config, 0);
    let snapshot = agent.snapshot();

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "== curriculum collection throughput ({} models x {episodes_per_spec} episodes/batch, {cores} cores) ==\n",
        curriculum.len()
    );

    // Per-model episodes/sec: a one-entry curriculum isolates each zoo
    // entry's collection cost. Timed against the live agent via the serial
    // oracle so no per-iteration replica build contaminates the number —
    // the per-model rate is about the model, not the pool.
    for entry in curriculum.entries() {
        let single = Curriculum::new().with_entry(entry.name.clone(), entry.spec.clone());
        let ns = time_ns(1, iters, || {
            collect_curriculum_serial(&agent, &single, 0, episodes_per_spec, 7).buffer.len()
        });
        let rate = episodes_per_spec as f64 / (ns / 1e9);
        report_rate(&format!("curriculum/episodes_per_sec/{}", entry.name), rate);
    }
    println!();

    // Whole-curriculum rates: (spec, episode) items sharded across the pool.
    let total_episodes = curriculum.len() * episodes_per_spec;
    let mut eps_per_sec = Vec::new();
    for &workers in &worker_counts {
        let ns = time_ns(1, iters, || {
            collect_curriculum_parallel(&config, &snapshot, &curriculum, 0, episodes_per_spec, 7, workers)
                .expect("snapshot matches the agent architecture")
                .buffer
                .len()
        });
        let rate = total_episodes as f64 / (ns / 1e9);
        report_rate(&format!("curriculum/episodes_per_sec/{workers}w/all"), rate);
        eps_per_sec.push(rate);
    }
    report_ratio("curriculum/speedup_4w_vs_1w", eps_per_sec[eps_per_sec.len() - 1] / eps_per_sec[0]);

    finish("bench_curriculum");
}
