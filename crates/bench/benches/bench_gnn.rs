//! Criterion micro-benchmarks for the GNN encoder: featurisation and the
//! forward pass at different message-passing depths (the `k` ablation from
//! DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xrlflow_gnn::{EncoderConfig, GnnEncoder, GraphFeatures};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_tensor::{ParamStore, XorShiftRng};

fn bench_featurize(c: &mut Criterion) {
    let graph = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
    c.bench_function("featurize/bert", |b| b.iter(|| GraphFeatures::from_graph(&graph).num_edges()));
}

fn bench_encoder_depth(c: &mut Criterion) {
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let features = GraphFeatures::from_graph(&graph);
    let mut group = c.benchmark_group("gnn_forward_by_depth");
    group.sample_size(10);
    for k in [1usize, 3, 5] {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(0);
        let encoder =
            GnnEncoder::new(&mut store, EncoderConfig { hidden_dim: 32, num_gat_layers: k }, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| encoder.encode_value(&store, &features).sum())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_featurize, bench_encoder_depth);
criterion_main!(benches);
