//! Micro-benchmarks for the GNN encoder: featurisation and the forward pass
//! at different message-passing depths (the `k` ablation from DESIGN.md).

use xrlflow_bench::{report, time_ns};
use xrlflow_gnn::{EncoderConfig, GnnEncoder, GraphFeatures};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_tensor::{ParamStore, XorShiftRng};

fn main() {
    let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
    report("featurize/bert", time_ns(3, 50, || GraphFeatures::from_graph(&bert).num_edges()));

    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let features = GraphFeatures::from_graph(&graph);
    println!("\n== GNN forward by depth ==");
    for k in [1usize, 3, 5] {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(0);
        let encoder =
            GnnEncoder::new(&mut store, EncoderConfig { hidden_dim: 32, num_gat_layers: k }, &mut rng);
        report(
            &format!("gnn_forward_by_depth/{k}"),
            time_ns(2, 10, || encoder.encode_value(&store, &features).sum()),
        );
    }
}
