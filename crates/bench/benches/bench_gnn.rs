//! Micro-benchmarks for the GNN encoder: featurisation, the forward pass at
//! different message-passing depths (the `k` ablation from DESIGN.md), and
//! the headline per-step policy-evaluation comparison — the serial
//! materialise-and-encode baseline against the batched + delta-aware path
//! the agent actually runs.

use xrlflow_bench::{env_usize, finish, iters_from_env, report, report_ratio, time_ns};
use xrlflow_core::{XrlflowAgent, XrlflowConfig};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::Environment;
use xrlflow_gnn::{EncoderConfig, GnnEncoder, GraphFeatures};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_rewrite::RuleSet;
use xrlflow_tensor::{ParamStore, XorShiftRng};

fn main() {
    let iters = iters_from_env(10);

    let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
    report("featurize/bert", time_ns(3, iters.max(50), || GraphFeatures::from_graph(&bert).num_edges()));

    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let features = GraphFeatures::from_graph(&graph);
    println!("\n== GNN forward by depth ==");
    for k in [1usize, 3, 5] {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(0);
        let encoder =
            GnnEncoder::new(&mut store, EncoderConfig { hidden_dim: 32, num_gat_layers: k }, &mut rng);
        report(
            &format!("gnn_forward_by_depth/{k}"),
            time_ns(2, iters, || encoder.encode_value(&store, &features).sum()),
        );
    }

    // Per-step policy evaluation: the full agent forward (featurise current
    // graph + K candidates, encode, score all pairs, estimate the value) on
    // one environment observation per workload. The serial baseline
    // materialises every candidate and runs K + 1 encoder tapes; the batched
    // path derives candidate features from patches and encodes one
    // block-diagonal batch. `XRLFLOW_MAX_CANDIDATES` bounds K (CI smoke uses
    // a small value).
    println!("\n== per-step policy evaluation: serial baseline vs batched+delta ==");
    let max_candidates = env_usize("XRLFLOW_MAX_CANDIDATES", 64);
    let mut config = XrlflowConfig::bench();
    config.env.max_candidates = max_candidates;
    let agent = XrlflowAgent::new(&config, 0);
    for kind in [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::InceptionV3] {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let mut env = Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            config.env.clone(),
        );
        let obs = env.reset(0);
        println!("-- {} ({} candidates)", kind.name(), obs.num_candidates());
        let serial_ns = time_ns(1, iters, || agent.policy_logits_serial(&obs).1);
        let batched_ns = time_ns(1, iters, || agent.policy_logits_batched(&obs).1);
        report(&format!("policy_evaluation/serial/{}", kind.name()), serial_ns);
        report(&format!("policy_evaluation/batched/{}", kind.name()), batched_ns);
        report_ratio(&format!("policy_evaluation/speedup/{}", kind.name()), serial_ns / batched_ns);
    }

    finish("bench_gnn");
}
