//! Table 3: properties of the evaluated DNNs (type and "complexity" — the
//! average number of rewrite candidates per transformation step).

use xrlflow_bench::{render_table, scale_from_env};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_env::{EnvConfig, Environment};
use xrlflow_graph::models::{build_model, ModelKind};
use xrlflow_rewrite::RuleSet;

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, scale).expect("model builds");
        let nodes = graph.num_nodes();
        let mut env = Environment::new(
            graph,
            RuleSet::standard(),
            InferenceSimulator::new(DeviceProfile::gtx1080()),
            EnvConfig { max_candidates: 128, ..EnvConfig::default() },
        );
        let complexity = env.measure_complexity(8, 0);
        let kind_str = if kind.is_transformer() { "Transformer" } else { "Convolutional" };
        rows.push(vec![
            kind.name().to_string(),
            kind_str.to_string(),
            format!("{nodes}"),
            format!("{complexity:.0}"),
        ]);
    }
    println!("Table 3: properties of evaluated DNNs (scale = {:?})\n", scale);
    println!("{}", render_table(&["DNN", "Type", "Nodes", "Complexity"], &rows));
}
