//! Figure 5: heatmap of rewrite rules applied by X-RLflow on each DNN.

use std::collections::HashMap;

use xrlflow_bench::{episodes_from_env, render_heatmap, scale_from_env};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_graph::models::{build_model, ModelKind};

fn main() {
    let scale = scale_from_env();
    let episodes = episodes_from_env(2);
    let mut counts: HashMap<String, HashMap<&'static str, usize>> = HashMap::new();
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, scale).expect("model builds");
        let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 7);
        let (_report, result) = system.train_and_optimize(&graph, episodes);
        eprintln!("[fig5] {kind}: {} substitutions", result.steps);
        counts.insert(kind.name().to_string(), result.rule_applications);
    }
    println!(
        "Figure 5: rewrite rules applied by X-RLflow (scale = {:?}, {} episodes/model)\n",
        scale, episodes
    );
    println!("{}", render_heatmap(&counts));
}
