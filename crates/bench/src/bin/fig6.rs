//! Figure 6: optimisation (search) time of TASO vs X-RLflow.
//! X-RLflow's time excludes agent training, as in the paper.

use xrlflow_bench::{episodes_from_env, render_table, scale_from_env};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_cost::{CostModel, DeviceProfile};
use xrlflow_graph::models::{build_model, ModelKind};
use xrlflow_rewrite::RuleSet;
use xrlflow_taso::{BacktrackingOptimizer, SearchConfig};

fn main() {
    let scale = scale_from_env();
    let episodes = episodes_from_env(2);
    let mut rows = Vec::new();
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, scale).expect("model builds");
        let taso = BacktrackingOptimizer::new(
            RuleSet::standard(),
            CostModel::new(DeviceProfile::gtx1080()),
            SearchConfig { budget: 60, max_candidates: 48, alpha: 1.05 },
        );
        let taso_result = taso.optimize(&graph);

        let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 3);
        let _ = system.train_on(&graph, episodes);
        let xrl_result = system.optimize(&graph);

        eprintln!(
            "[fig6] {kind}: TASO {:.2}s vs X-RLflow {:.2}s",
            taso_result.optimisation_time_s, xrl_result.optimisation_time_s
        );
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}", taso_result.optimisation_time_s),
            format!("{:.2}", xrl_result.optimisation_time_s),
        ]);
    }
    println!("Figure 6: optimisation time in seconds (scale = {:?})\n", scale);
    println!("{}", render_table(&["DNN", "TASO (s)", "X-RLflow (s)"], &rows));
}
