//! Table 4: hyper-parameter values used by X-RLflow.

use xrlflow_bench::render_table;
use xrlflow_core::{HyperParameterTable, XrlflowConfig};

fn main() {
    let table = HyperParameterTable::from(&XrlflowConfig::paper());
    let rows = vec![
        vec!["Learning rate".into(), format!("{}", table.learning_rate)],
        vec!["Value loss coefficient (c1)".into(), format!("{}", table.value_loss_coefficient)],
        vec!["Entropy loss coefficient (c2)".into(), format!("{}", table.entropy_coefficient)],
        vec!["Edge attribute constant (M)".into(), format!("{}", table.edge_attribute_constant)],
        vec!["Number of GAT layers (k)".into(), format!("{}", table.num_gat_layers)],
        vec!["Update frequency".into(), format!("{}", table.update_frequency)],
        vec!["Feedback frequency (N)".into(), format!("{}", table.feedback_frequency)],
        vec!["MLP heads".into(), format!("{:?}", table.mlp_heads)],
        vec!["Batch size".into(), format!("{}", table.batch_size)],
    ];
    println!("Table 4: hyper-parameter values\n");
    println!("{}", render_table(&["Name", "Value"], &rows));
}
