//! Figure 4: end-to-end inference speedup of TASO vs X-RLflow over the seven
//! evaluated DNNs (mean ± std over five measurements).

use xrlflow_bench::{episodes_from_env, mean_std, render_table, scale_from_env};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_cost::{CostModel, DeviceProfile, InferenceSimulator};
use xrlflow_graph::models::{build_model, ModelKind};
use xrlflow_rewrite::RuleSet;
use xrlflow_taso::{BacktrackingOptimizer, SearchConfig};

fn speedups(
    sim: &InferenceSimulator,
    before: &xrlflow_graph::Graph,
    after: &xrlflow_graph::Graph,
) -> (f64, f64) {
    let samples: Vec<f64> = (0..5)
        .map(|i| {
            let b = sim.measure_ms(before, i);
            let a = sim.measure_ms(after, i);
            (b / a - 1.0) * 100.0
        })
        .collect();
    mean_std(&samples)
}

fn main() {
    let scale = scale_from_env();
    let episodes = episodes_from_env(6);
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
    let mut rows = Vec::new();
    for &kind in ModelKind::EVALUATED {
        let graph = build_model(kind, scale).expect("model builds");

        // TASO baseline (backtracking search over the cost model).
        let taso = BacktrackingOptimizer::new(
            RuleSet::standard(),
            CostModel::new(DeviceProfile::gtx1080()),
            SearchConfig { budget: 60, max_candidates: 48, alpha: 1.05 },
        );
        let taso_result = taso.optimize(&graph);
        let (taso_mean, taso_std) = speedups(&sim, &graph, &taso_result.graph);

        // X-RLflow: train briefly on the target graph, then optimise greedily.
        let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 42);
        let (_report, xrl_result) = system.train_and_optimize(&graph, episodes);
        let (xrl_mean, xrl_std) = speedups(&sim, &graph, &xrl_result.graph);

        eprintln!("[fig4] {kind}: TASO {taso_mean:.2}% vs X-RLflow {xrl_mean:.2}%");
        rows.push(vec![
            kind.name().to_string(),
            format!("{taso_mean:.2} ± {taso_std:.2}"),
            format!("{xrl_mean:.2} ± {xrl_std:.2}"),
        ]);
    }
    println!(
        "Figure 4: end-to-end speedup (%) of TASO vs X-RLflow (scale = {:?}, {} episodes/model)\n",
        scale, episodes
    );
    println!("{}", render_table(&["DNN", "TASO speedup (%)", "X-RLflow speedup (%)"], &rows));
}
