//! Table 2: PET-style partially equivalent transformation vs TASO on
//! ResNet-18 and ResNeXt-50 (optimised end-to-end latency, ms).

use xrlflow_bench::{render_table, scale_from_env};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_graph::models::{build_model, ModelKind};
use xrlflow_taso::{PetOptimizer, SearchConfig};

fn main() {
    let scale = scale_from_env();
    let simulator = InferenceSimulator::new(DeviceProfile::gtx1080());
    let config = SearchConfig { budget: 40, max_candidates: 48, alpha: 1.05 };
    let mut rows = Vec::new();
    for kind in [ModelKind::ResNet18, ModelKind::ResNext50] {
        let graph = build_model(kind, scale).expect("model builds");
        let pet = PetOptimizer::new(DeviceProfile::gtx1080(), config.clone());
        let pet_result = pet.optimize(&graph);
        let taso_result = pet.taso_counterpart().optimize(&graph);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.4}", simulator.measure_ms(&pet_result.graph, 0)),
            format!("{:.4}", simulator.measure_ms(&taso_result.graph, 0)),
            format!("{}", pet_result.steps),
            format!("{}", taso_result.steps),
        ]);
    }
    println!("Table 2: PET vs TASO optimised end-to-end latency (scale = {:?})\n", scale);
    println!("{}", render_table(&["DNN", "PET (ms)", "TASO (ms)", "PET steps", "TASO steps"], &rows));
}
