//! Table 1: discrepancy between the cost-model estimate and the simulated
//! end-to-end inference latency on unoptimised DNNs.

use xrlflow_bench::{render_table, scale_from_env};
use xrlflow_cost::{discrepancy, CostModel, DeviceProfile, InferenceSimulator};
use xrlflow_graph::models::{build_model, ModelKind};

fn main() {
    let scale = scale_from_env();
    let cost_model = CostModel::new(DeviceProfile::gtx1080());
    let simulator = InferenceSimulator::new(DeviceProfile::gtx1080());
    let workloads = [
        ModelKind::DallE,
        ModelKind::InceptionV3,
        ModelKind::Bert,
        ModelKind::SqueezeNet,
        ModelKind::ResNext50,
        ModelKind::TransformerTransducer,
    ];
    let mut rows = Vec::new();
    for kind in workloads {
        let graph = build_model(kind, scale).expect("model builds");
        let d = discrepancy(kind.name(), &graph, &cost_model, &simulator);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.4}", d.cost_model_ms),
            format!("{:.4}", d.e2e_ms),
            format!("{:.1}%", d.diff_percent()),
        ]);
    }
    println!("Table 1: cost model vs end-to-end latency (scale = {:?})\n", scale);
    println!("{}", render_table(&["DNN", "Cost model (ms)", "E2E (ms)", "Diff"], &rows));
}
