//! Baseline diff gate for the CI `bench-smoke` job.
//!
//! Usage: `bench_diff <baseline.json> <current.json> [threshold]`
//!
//! Compares a fresh bench-smoke JSON artifact against the committed
//! `BENCH_*.json` baseline (both in the schema `xrlflow_bench::finish`
//! writes), prints a per-metric trend table — appended to
//! `$GITHUB_STEP_SUMMARY` when set, so the trend line shows up in the job
//! summary — and exits non-zero only on *gross* regressions (worse than
//! `threshold`×, default 3×) or on metrics that silently vanished.
//! Shared-runner noise stays a trend line; catastrophic regressions become
//! a gate.

use std::io::Write;
use std::process::ExitCode;

use xrlflow_bench::{diff_reports, parse_results_json, render_trend_markdown, trends_pass, BenchReport};

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_results_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!("usage: bench_diff <baseline.json> <current.json> [threshold]");
        ExitCode::from(2)
    };
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => return usage(),
    };
    let threshold: f64 = match args.get(2) {
        None => 3.0,
        // A malformed threshold must not silently fall back to the default
        // — the operator would believe they changed the gate.
        Some(t) => match t.parse() {
            Ok(v) if v > 0.0 => v,
            _ => {
                eprintln!("bench_diff: invalid threshold {t:?}");
                return usage();
            }
        },
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let trends = diff_reports(&baseline, &current, threshold);
    let table = render_trend_markdown(&current.bench, &trends, threshold);
    println!("{table}");
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        match std::fs::OpenOptions::new().create(true).append(true).open(&summary_path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{table}");
            }
            Err(e) => eprintln!("bench_diff: cannot append to job summary {summary_path}: {e}"),
        }
    }

    if trends_pass(&trends) {
        println!("bench_diff: {} within the {threshold}x gate against {baseline_path}", current.bench);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_diff: {} FAILED the {threshold}x gate against {baseline_path} (see table above; \
             if the change is intentional, regenerate the committed baseline)",
            current.bench
        );
        ExitCode::FAILURE
    }
}
