//! Figure 7: generalisation to unseen tensor shapes. An agent trained on one
//! input shape of DALL-E / InceptionV3 is reused, without retraining, on
//! other input shapes.

use xrlflow_bench::{episodes_from_env, render_table, scale_from_env};
use xrlflow_core::{run_generalization, XrlflowConfig, XrlflowSystem};
use xrlflow_graph::models::ModelKind;

fn main() {
    let scale = scale_from_env();
    let episodes = episodes_from_env(4);
    let experiments: [(ModelKind, usize, Vec<usize>); 2] =
        [(ModelKind::DallE, 64, vec![32, 48, 64, 96]), (ModelKind::InceptionV3, 299, vec![225, 250, 299])];
    let mut rows = Vec::new();
    for (kind, train_size, eval_sizes) in experiments {
        let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 11);
        let report = run_generalization(&mut system, kind, scale, train_size, &eval_sizes, episodes)
            .expect("generalisation run");
        for p in &report.points {
            let marker = if p.trained_on { "*" } else { " " };
            eprintln!("[fig7] {kind}-{}{marker}: {:.2}%", p.input_size, p.result.speedup_percent());
            rows.push(vec![
                format!("{}-{}{}", kind.name(), p.input_size, marker),
                format!("{:.2}", p.result.speedup_percent()),
                format!("{:.3}", p.result.final_latency_ms),
            ]);
        }
    }
    println!(
        "Figure 7: generalisation to unseen tensor shapes ('*' marks the trained shape; scale = {:?})\n",
        scale
    );
    println!("{}", render_table(&["DNN-shape", "Speedup (%)", "Latency (ms)"], &rows));
}
