//! Figure 8: end-to-end speedup of X-RLflow vs Tensat (equality saturation)
//! on BERT, InceptionV3, SqueezeNet and ResNeXt-50.

use xrlflow_bench::{episodes_from_env, render_table, scale_from_env};
use xrlflow_core::{XrlflowConfig, XrlflowSystem};
use xrlflow_cost::{DeviceProfile, InferenceSimulator};
use xrlflow_egraph::{TensatConfig, TensatOptimizer};
use xrlflow_graph::models::{build_model, ModelKind};

fn main() {
    let scale = scale_from_env();
    let episodes = episodes_from_env(6);
    let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
    let workloads = [ModelKind::Bert, ModelKind::InceptionV3, ModelKind::SqueezeNet, ModelKind::ResNext50];
    let mut rows = Vec::new();
    for kind in workloads {
        let graph = build_model(kind, scale).expect("model builds");
        let before = sim.measure_ms(&graph, 0);

        let tensat = TensatOptimizer::new(TensatConfig::default(), DeviceProfile::gtx1080());
        let tensat_speedup = match tensat.optimize(&graph) {
            Ok(result) => (before / sim.measure_ms(&result.graph, 0) - 1.0) * 100.0,
            Err(e) => {
                eprintln!("[fig8] {kind}: Tensat conversion failed ({e}); reporting 0%");
                0.0
            }
        };

        let mut system = XrlflowSystem::new(XrlflowConfig::bench(), 23);
        let (_report, xrl) = system.train_and_optimize(&graph, episodes);
        let xrl_speedup = (before / sim.measure_ms(&xrl.graph, 0) - 1.0) * 100.0;

        eprintln!("[fig8] {kind}: Tensat {tensat_speedup:.2}% vs X-RLflow {xrl_speedup:.2}%");
        rows.push(vec![kind.name().to_string(), format!("{tensat_speedup:.2}"), format!("{xrl_speedup:.2}")]);
    }
    println!(
        "Figure 8: end-to-end speedup (%) of Tensat vs X-RLflow (scale = {:?}, {} episodes/model)\n",
        scale, episodes
    );
    println!("{}", render_table(&["DNN", "Tensat speedup (%)", "X-RLflow speedup (%)"], &rows));
}
