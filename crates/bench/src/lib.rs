//! # xrlflow-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each table/figure has a dedicated binary (`table1`, `table2`,
//! `table3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `table4`) that prints
//! the same rows/series the paper reports; Criterion micro-benchmarks cover
//! the substrates (rewrite engine, cost model, GNN, e-graph, optimisers).
//!
//! All binaries honour two environment variables:
//!
//! * `XRLFLOW_SCALE` — `bench` (default) or `paper`, selecting the model-zoo
//!   depth preset;
//! * `XRLFLOW_EPISODES` — RL training episodes per model for the figures that
//!   train an agent (default: a CPU-friendly handful).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use xrlflow_graph::models::ModelScale;

/// Times `f` over `iters` iterations after `warmup` warmup runs and returns
/// the mean wall-clock nanoseconds per iteration. The dependency-free
/// replacement for the Criterion harness (the build environment has no
/// crates.io access); benches are plain `harness = false` binaries built on
/// this.
pub fn time_ns<R>(warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "iters must be positive");
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Prints one benchmark result line in the harness's standard format.
pub fn report(name: &str, ns_per_iter: f64) {
    if ns_per_iter >= 1e6 {
        println!("{name:<44} {:>12.3} ms/iter", ns_per_iter / 1e6);
    } else if ns_per_iter >= 1e3 {
        println!("{name:<44} {:>12.3} µs/iter", ns_per_iter / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", ns_per_iter);
    }
}

/// Reads the model-scale preset from `XRLFLOW_SCALE` (default: bench).
pub fn scale_from_env() -> ModelScale {
    match std::env::var("XRLFLOW_SCALE").as_deref() {
        Ok("paper") | Ok("Paper") | Ok("PAPER") => ModelScale::Paper,
        _ => ModelScale::Bench,
    }
}

/// Reads the per-model training-episode budget from `XRLFLOW_EPISODES`.
pub fn episodes_from_env(default: usize) -> usize {
    std::env::var("XRLFLOW_EPISODES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Formats a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a rule-application heatmap (rule name x workload counts) as text,
/// in the style of Figure 5.
pub fn render_heatmap(counts: &HashMap<String, HashMap<&'static str, usize>>) -> String {
    // Collect the union of rules applied at least once, as the paper does.
    let mut rules: Vec<&'static str> = counts
        .values()
        .flat_map(|per_rule| per_rule.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    rules.sort_unstable();
    let headers: Vec<&str> = std::iter::once("DNN").chain(rules.iter().copied()).collect();
    let mut workloads: Vec<&String> = counts.keys().collect();
    workloads.sort();
    let rows: Vec<Vec<String>> = workloads
        .into_iter()
        .map(|w| {
            let per_rule = &counts[w];
            std::iter::once(w.clone())
                .chain(
                    rules
                        .iter()
                        .map(|r| per_rule.get(r).map(|c| c.to_string()).unwrap_or_else(|| "-".to_string())),
                )
                .collect()
        })
        .collect();
    render_table(&headers, &rows)
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["DNN", "Speedup"],
            &[vec!["BERT".into(), "8.3%".into()], vec!["InceptionV3".into(), "4.1%".into()]],
        );
        assert!(t.contains("BERT"));
        assert!(t.contains("InceptionV3"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn heatmap_renders_union_of_rules() {
        let mut counts = HashMap::new();
        let mut bert = HashMap::new();
        bert.insert("fuse-matmul-bias", 3usize);
        counts.insert("BERT".to_string(), bert);
        let mut incep = HashMap::new();
        incep.insert("fuse-conv-relu", 5usize);
        counts.insert("InceptionV3".to_string(), incep);
        let rendered = render_heatmap(&counts);
        assert!(rendered.contains("fuse-matmul-bias"));
        assert!(rendered.contains("fuse-conv-relu"));
        assert!(rendered.contains("-"));
    }

    #[test]
    fn env_defaults() {
        assert_eq!(episodes_from_env(6), 6);
    }
}
