//! # xrlflow-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each table/figure has a dedicated binary (`table1`, `table2`,
//! `table3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `table4`) that prints
//! the same rows/series the paper reports; Criterion micro-benchmarks cover
//! the substrates (rewrite engine, cost model, GNN, e-graph, optimisers).
//!
//! All binaries honour these environment variables:
//!
//! * `XRLFLOW_SCALE` — `bench` (default) or `paper`, selecting the model-zoo
//!   depth preset;
//! * `XRLFLOW_EPISODES` — RL training episodes per model for the figures that
//!   train an agent (default: a CPU-friendly handful);
//! * `XRLFLOW_ITERS` — timed iterations per micro-benchmark (the CI
//!   `bench-smoke` job sets a tiny value);
//! * `XRLFLOW_BENCH_JSON` — when set, a path the binary writes its recorded
//!   results to as JSON (uploaded as a CI artifact to track the perf
//!   trajectory per PR).

use std::collections::HashMap;
use std::hint::black_box;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use xrlflow_graph::models::ModelScale;

/// One recorded measurement: a metric name, its value and the value's unit
/// (`"ns/iter"` for timings, `"x"` for speedup ratios).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Metric name, e.g. `"policy_evaluation/batched/BERT"`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value.
    pub unit: &'static str,
}

/// Every result reported so far in this process, in report order. Collected
/// so benchmark binaries can emit a machine-readable JSON artifact (the CI
/// `bench-smoke` job uploads it to track the perf trajectory per PR).
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(name: &str, value: f64, unit: &'static str) {
    RESULTS.lock().expect("bench result lock").push(BenchRecord { name: name.to_string(), value, unit });
}

/// Times `f` over `iters` iterations after `warmup` warmup runs and returns
/// the mean wall-clock nanoseconds per iteration. The dependency-free
/// replacement for the Criterion harness (the build environment has no
/// crates.io access); benches are plain `harness = false` binaries built on
/// this.
pub fn time_ns<R>(warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "iters must be positive");
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Prints one benchmark result line in the harness's standard format and
/// records it for [`write_results_json`].
pub fn report(name: &str, ns_per_iter: f64) {
    if ns_per_iter >= 1e6 {
        println!("{name:<44} {:>12.3} ms/iter", ns_per_iter / 1e6);
    } else if ns_per_iter >= 1e3 {
        println!("{name:<44} {:>12.3} µs/iter", ns_per_iter / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", ns_per_iter);
    }
    record(name, ns_per_iter, "ns/iter");
}

/// Prints a speedup ratio (e.g. serial over batched time) and records it for
/// [`write_results_json`].
pub fn report_ratio(name: &str, ratio: f64) {
    println!("{name:<44} {ratio:>11.2}x");
    record(name, ratio, "x");
}

/// Prints a throughput value in events per second (e.g. rollout
/// episodes/sec) and records it for [`write_results_json`] with unit
/// `"eps/s"`.
pub fn report_rate(name: &str, per_sec: f64) {
    println!("{name:<44} {per_sec:>11.2} eps/s");
    record(name, per_sec, "eps/s");
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every result reported so far as a JSON document:
/// `{"bench": <name>, "results": [{"name", "value", "unit"}, ...]}`.
/// Hand-rolled (the container has no serde) but escaped well enough for the
/// metric names the harness produces.
///
/// # Errors
///
/// Returns any I/O error from creating parent directories or writing.
pub fn write_results_json(bench: &str, path: &Path) -> std::io::Result<()> {
    let results = RESULTS.lock().expect("bench result lock");
    let mut out = String::new();
    out.push_str(&format!("{{\"bench\": \"{}\", \"results\": [", json_escape(bench)));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}",
            json_escape(&r.name),
            if r.value.is_finite() { r.value.to_string() } else { "null".to_string() },
            json_escape(r.unit)
        ));
    }
    out.push_str("]}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    // Atomic so an interrupted benchmark run cannot leave a torn JSON file
    // for the CI diff gate to choke on.
    xrlflow_tensor::atomic_write(path, out)
}

/// Called at the end of every benchmark binary: when `XRLFLOW_BENCH_JSON` is
/// set, writes the recorded results there (the CI `bench-smoke` job uploads
/// the file as a workflow artifact and diffs it against the committed
/// `BENCH_<bench>.json` baseline).
///
/// This is the **single** producer of the benchmark JSON schema; the
/// consumer side is [`parse_results_json`] / [`diff_reports`], so the
/// binaries, the committed baselines and the CI diff gate can never drift
/// apart on format.
pub fn finish(bench: &str) {
    if let Ok(path) = std::env::var("XRLFLOW_BENCH_JSON") {
        match write_results_json(bench, Path::new(&path)) {
            Ok(()) => println!("\nwrote benchmark JSON to {path}"),
            Err(e) => eprintln!("failed to write benchmark JSON to {path}: {e}"),
        }
    }
}

/// One metric parsed back from a benchmark JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Metric name, e.g. `"policy_evaluation/batched/BERT"`.
    pub name: String,
    /// Measured value; `None` when the binary recorded a non-finite value.
    pub value: Option<f64>,
    /// Unit string (`"ns/iter"`, `"x"`, `"eps/s"`).
    pub unit: String,
}

/// A benchmark JSON document parsed back into memory — the read side of the
/// schema [`write_results_json`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The benchmark binary's name.
    pub bench: String,
    /// Every recorded metric, in report order.
    pub results: Vec<ParsedRecord>,
}

/// Parses a benchmark JSON document produced by [`write_results_json`].
///
/// Hand-rolled like the writer (no serde in the container); accepts
/// arbitrary whitespace and key order but only the schema's own shape.
///
/// # Errors
///
/// Returns a description of the first syntax or schema violation.
pub fn parse_results_json(text: &str) -> Result<BenchReport, String> {
    let mut parser = JsonParser { bytes: text.as_bytes(), pos: 0 };
    let report = parser.parse_report()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing content at byte {}", parser.pos));
    }
    Ok(report)
}

/// Minimal JSON reader for the benchmark result schema.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape")?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number_or_null(&mut self) -> Result<Option<f64>, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Some)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_report(&mut self) -> Result<BenchReport, String> {
        self.expect(b'{')?;
        let mut bench = None;
        let mut results = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "bench" => bench = Some(self.string()?),
                "results" => results = Some(self.parse_results()?),
                other => return Err(format!("unknown key {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        Ok(BenchReport {
            bench: bench.ok_or("missing \"bench\" key")?,
            results: results.ok_or("missing \"results\" key")?,
        })
    }

    fn parse_results(&mut self) -> Result<Vec<ParsedRecord>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_record()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_record(&mut self) -> Result<ParsedRecord, String> {
        self.expect(b'{')?;
        let mut name = None;
        let mut value = None;
        let mut unit = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => name = Some(self.string()?),
                "value" => value = Some(self.number_or_null()?),
                "unit" => unit = Some(self.string()?),
                other => return Err(format!("unknown result key {other:?}")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
        Ok(ParsedRecord {
            name: name.ok_or("result missing \"name\"")?,
            value: value.ok_or("result missing \"value\"")?,
            unit: unit.ok_or("result missing \"unit\"")?,
        })
    }
}

/// Verdict of one metric's baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendStatus {
    /// Within the regression threshold (or not judgeable: null/zero values).
    Ok,
    /// Worse than the baseline by more than the threshold factor.
    Regressed,
    /// Present in the baseline but absent from the fresh run — the binary
    /// dropped or renamed a metric without regenerating the baseline.
    MissingInCurrent,
    /// Present in both but with different units — the values are
    /// incommensurate, so no trend can be computed; regenerate the baseline.
    UnitChanged,
    /// Present only in the fresh run (a newly added metric; informational).
    NewInCurrent,
}

/// One row of a baseline-vs-current trend comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTrend {
    /// Metric name.
    pub name: String,
    /// Unit string (drives the comparison direction).
    pub unit: String,
    /// Baseline value, when the metric exists in the baseline.
    pub baseline: Option<f64>,
    /// Fresh value, when the metric exists in the current run.
    pub current: Option<f64>,
    /// Direction-normalised regression factor: how many times *worse* the
    /// current value is than the baseline (`> 1` is worse, `< 1` is better,
    /// regardless of whether the unit is higher- or lower-is-better).
    pub factor: Option<f64>,
    /// The comparison verdict.
    pub status: TrendStatus,
}

/// `true` for units where a larger value is an improvement (`"x"` ratios,
/// `"eps/s"` throughput); timings (`"ns/iter"`) are lower-is-better.
pub fn higher_is_better(unit: &str) -> bool {
    matches!(unit, "x" | "eps/s")
}

/// Compares a fresh benchmark report against its committed baseline.
///
/// Shared-runner numbers are noisy, so the comparison is a *trend line with
/// a catastrophe gate*: a metric only counts as [`TrendStatus::Regressed`]
/// when it is worse than the baseline by more than `threshold` (the CI gate
/// uses 3×). Metrics that vanished from the current run are flagged
/// [`TrendStatus::MissingInCurrent`] (regenerate the baseline when renaming
/// metrics); new metrics are informational. Rows follow baseline order, then
/// any new metrics in current-run order.
pub fn diff_reports(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<MetricTrend> {
    let mut trends = Vec::new();
    for base in &baseline.results {
        let fresh = current.results.iter().find(|r| r.name == base.name);
        let Some(fresh) = fresh else {
            trends.push(MetricTrend {
                name: base.name.clone(),
                unit: base.unit.clone(),
                baseline: base.value,
                current: None,
                factor: None,
                status: TrendStatus::MissingInCurrent,
            });
            continue;
        };
        if fresh.unit != base.unit {
            // Incommensurate values: comparing them with the baseline's
            // direction would read a unit change as a huge regression (or
            // mask a real one).
            trends.push(MetricTrend {
                name: base.name.clone(),
                unit: format!("{} -> {}", base.unit, fresh.unit),
                baseline: base.value,
                current: fresh.value,
                factor: None,
                status: TrendStatus::UnitChanged,
            });
            continue;
        }
        let factor = match (base.value, fresh.value) {
            (Some(b), Some(c)) if b > 0.0 && c > 0.0 => {
                Some(if higher_is_better(&base.unit) { b / c } else { c / b })
            }
            _ => None,
        };
        let status = match (base.value, fresh.value, factor) {
            // A real baseline measurement that became non-finite (recorded
            // as null) is a broken metric, not an unjudgeable one.
            (Some(_), None, _) => TrendStatus::Regressed,
            (_, _, Some(f)) if f > threshold => TrendStatus::Regressed,
            _ => TrendStatus::Ok,
        };
        trends.push(MetricTrend {
            name: base.name.clone(),
            unit: base.unit.clone(),
            baseline: base.value,
            current: fresh.value,
            factor,
            status,
        });
    }
    for fresh in &current.results {
        if !baseline.results.iter().any(|r| r.name == fresh.name) {
            trends.push(MetricTrend {
                name: fresh.name.clone(),
                unit: fresh.unit.clone(),
                baseline: None,
                current: fresh.value,
                factor: None,
                status: TrendStatus::NewInCurrent,
            });
        }
    }
    trends
}

/// `true` when no trend row fails the gate (no gross regression, no metric
/// silently dropped).
pub fn trends_pass(trends: &[MetricTrend]) -> bool {
    trends.iter().all(|t| {
        !matches!(t.status, TrendStatus::Regressed | TrendStatus::MissingInCurrent | TrendStatus::UnitChanged)
    })
}

/// Renders the trend comparison as a GitHub-flavoured Markdown table
/// (written to the CI job summary by the `bench_diff` tool).
pub fn render_trend_markdown(bench: &str, trends: &[MetricTrend], threshold: f64) -> String {
    let fmt_value = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |v| format!("{v:.4}"));
    let mut out = format!(
        "### Bench trend: `{bench}` (gate: >{threshold:.0}× regression)\n\n\
         | metric | unit | baseline | current | trend | status |\n\
         |---|---|---:|---:|---:|---|\n"
    );
    for t in trends {
        let trend = t.factor.map_or_else(
            || "—".to_string(),
            |f| {
                if (f - 1.0).abs() < 0.005 {
                    "≈1.00×".to_string()
                } else if f > 1.0 {
                    format!("{f:.2}× worse")
                } else {
                    format!("{:.2}× better", 1.0 / f)
                }
            },
        );
        let status = match t.status {
            TrendStatus::Ok => "ok",
            TrendStatus::Regressed => "**REGRESSED**",
            TrendStatus::MissingInCurrent => "**MISSING** (regenerate baseline?)",
            TrendStatus::UnitChanged => "**UNIT CHANGED** (regenerate baseline)",
            TrendStatus::NewInCurrent => "new",
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} |\n",
            t.name,
            t.unit,
            fmt_value(t.baseline),
            fmt_value(t.current),
            trend,
            status
        ));
    }
    out
}

/// Reads the model-scale preset from `XRLFLOW_SCALE` (default: bench).
pub fn scale_from_env() -> ModelScale {
    match std::env::var("XRLFLOW_SCALE").as_deref() {
        Ok("paper") | Ok("Paper") | Ok("PAPER") => ModelScale::Paper,
        _ => ModelScale::Bench,
    }
}

/// Reads a `usize` configuration knob from the environment, falling back to
/// `default` when the variable is unset or unparsable.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads the per-model training-episode budget from `XRLFLOW_EPISODES`.
pub fn episodes_from_env(default: usize) -> usize {
    env_usize("XRLFLOW_EPISODES", default)
}

/// Reads the timed-iteration budget for micro-benchmarks from
/// `XRLFLOW_ITERS` (the CI smoke job sets a tiny value).
pub fn iters_from_env(default: usize) -> usize {
    env_usize("XRLFLOW_ITERS", default).max(1)
}

/// Formats a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a rule-application heatmap (rule name x workload counts) as text,
/// in the style of Figure 5.
pub fn render_heatmap(counts: &HashMap<String, HashMap<&'static str, usize>>) -> String {
    // Collect the union of rules applied at least once, as the paper does.
    let mut rules: Vec<&'static str> = counts
        .values()
        .flat_map(|per_rule| per_rule.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    rules.sort_unstable();
    let headers: Vec<&str> = std::iter::once("DNN").chain(rules.iter().copied()).collect();
    let mut workloads: Vec<&String> = counts.keys().collect();
    workloads.sort();
    let rows: Vec<Vec<String>> = workloads
        .into_iter()
        .map(|w| {
            let per_rule = &counts[w];
            std::iter::once(w.clone())
                .chain(
                    rules
                        .iter()
                        .map(|r| per_rule.get(r).map(|c| c.to_string()).unwrap_or_else(|| "-".to_string())),
                )
                .collect()
        })
        .collect();
    render_table(&headers, &rows)
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["DNN", "Speedup"],
            &[vec!["BERT".into(), "8.3%".into()], vec!["InceptionV3".into(), "4.1%".into()]],
        );
        assert!(t.contains("BERT"));
        assert!(t.contains("InceptionV3"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn heatmap_renders_union_of_rules() {
        let mut counts = HashMap::new();
        let mut bert = HashMap::new();
        bert.insert("fuse-matmul-bias", 3usize);
        counts.insert("BERT".to_string(), bert);
        let mut incep = HashMap::new();
        incep.insert("fuse-conv-relu", 5usize);
        counts.insert("InceptionV3".to_string(), incep);
        let rendered = render_heatmap(&counts);
        assert!(rendered.contains("fuse-matmul-bias"));
        assert!(rendered.contains("fuse-conv-relu"));
        assert!(rendered.contains("-"));
    }

    #[test]
    fn env_defaults() {
        assert_eq!(env_usize("XRLFLOW_NO_SUCH_VAR", 17), 17);
        // iters_from_env reads ambient XRLFLOW_ITERS (which a developer
        // reproducing the CI smoke environment may have set); it must always
        // return a usable iteration count.
        assert!(iters_from_env(20) >= 1);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("plain/name_1"), "plain/name_1");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn parse_results_json_round_trips_the_writer_schema() {
        report("roundtrip/timing", 987.25);
        report_ratio("roundtrip/speedup", 4.5);
        report_rate("roundtrip/rate", 12.0);
        let path = std::env::temp_dir().join("xrlflow_bench_parse_test/results.json");
        write_results_json("bench_roundtrip", &path).unwrap();
        let parsed = parse_results_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.bench, "bench_roundtrip");
        let find = |name: &str| parsed.results.iter().find(|r| r.name == name).unwrap().clone();
        assert_eq!(
            find("roundtrip/timing"),
            ParsedRecord { name: "roundtrip/timing".into(), value: Some(987.25), unit: "ns/iter".into() }
        );
        assert_eq!(find("roundtrip/speedup").value, Some(4.5));
        assert_eq!(find("roundtrip/rate").unit, "eps/s");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn parse_results_json_handles_escapes_null_and_rejects_garbage() {
        let parsed = parse_results_json(
            "{\"bench\": \"b\", \"results\": [{\"name\": \"a\\\"b\\u0009\", \"value\": null, \"unit\": \"x\"}]}",
        )
        .unwrap();
        assert_eq!(parsed.results[0].name, "a\"b\t");
        assert_eq!(parsed.results[0].value, None);
        assert!(parse_results_json("not json").is_err());
        assert!(parse_results_json("{\"bench\": \"b\"}").is_err(), "missing results must be rejected");
        assert!(
            parse_results_json("{\"bench\": \"b\", \"results\": []} extra").is_err(),
            "trailing content must be rejected"
        );
    }

    fn record_with(name: &str, value: Option<f64>, unit: &str) -> ParsedRecord {
        ParsedRecord { name: name.into(), value, unit: unit.into() }
    }

    #[test]
    fn diff_reports_gates_on_gross_regressions_only() {
        let baseline = BenchReport {
            bench: "b".into(),
            results: vec![
                record_with("timing", Some(100.0), "ns/iter"),
                record_with("rate", Some(10.0), "eps/s"),
                record_with("ratio", Some(2.0), "x"),
            ],
        };
        // Noise-level wobble passes; only >3x counts.
        let noisy = BenchReport {
            bench: "b".into(),
            results: vec![
                record_with("timing", Some(250.0), "ns/iter"), // 2.5x slower: noise
                record_with("rate", Some(4.0), "eps/s"),       // 2.5x slower: noise
                record_with("ratio", Some(5.0), "x"),          // better
            ],
        };
        let trends = diff_reports(&baseline, &noisy, 3.0);
        assert!(trends_pass(&trends));
        assert!(trends.iter().all(|t| t.status == TrendStatus::Ok));

        let regressed = BenchReport {
            bench: "b".into(),
            results: vec![
                record_with("timing", Some(500.0), "ns/iter"), // 5x slower: gate
                record_with("rate", Some(2.0), "eps/s"),       // 5x slower: gate
                record_with("ratio", Some(2.1), "x"),
            ],
        };
        let trends = diff_reports(&baseline, &regressed, 3.0);
        assert!(!trends_pass(&trends));
        assert_eq!(trends[0].status, TrendStatus::Regressed);
        assert_eq!(trends[1].status, TrendStatus::Regressed, "lower eps/s must regress");
        assert_eq!(trends[2].status, TrendStatus::Ok);
        assert!((trends[0].factor.unwrap() - 5.0).abs() < 1e-9);
        assert!((trends[1].factor.unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn diff_reports_flags_missing_and_new_metrics() {
        let baseline =
            BenchReport { bench: "b".into(), results: vec![record_with("old", Some(1.0), "ns/iter")] };
        let current =
            BenchReport { bench: "b".into(), results: vec![record_with("new", Some(1.0), "ns/iter")] };
        let trends = diff_reports(&baseline, &current, 3.0);
        assert_eq!(trends.len(), 2);
        assert_eq!(trends[0].status, TrendStatus::MissingInCurrent);
        assert_eq!(trends[1].status, TrendStatus::NewInCurrent);
        assert!(!trends_pass(&trends), "a silently dropped metric must fail the gate");
        // A finite baseline degrading to null (non-finite measurement) is a
        // broken metric and must fail the gate...
        let nulls = BenchReport { bench: "b".into(), results: vec![record_with("old", None, "ns/iter")] };
        let trends = diff_reports(&baseline, &nulls, 3.0);
        assert_eq!(trends[0].status, TrendStatus::Regressed);
        assert_eq!(trends[0].factor, None);
        assert!(!trends_pass(&trends));
        // ...while a null-to-null metric stays unjudgeable.
        let null_base = BenchReport { bench: "b".into(), results: vec![record_with("old", None, "ns/iter")] };
        let trends = diff_reports(&null_base, &nulls, 3.0);
        assert_eq!(trends[0].status, TrendStatus::Ok);
        // A same-named metric with a different unit is incommensurate: no
        // factor, and the gate fails until the baseline is regenerated.
        let changed =
            BenchReport { bench: "b".into(), results: vec![record_with("old", Some(1e9), "eps/s")] };
        let trends = diff_reports(&baseline, &changed, 3.0);
        assert_eq!(trends[0].status, TrendStatus::UnitChanged);
        assert_eq!(trends[0].factor, None);
        assert!(!trends_pass(&trends));
    }

    #[test]
    fn trend_markdown_renders_every_row() {
        let baseline =
            BenchReport { bench: "b".into(), results: vec![record_with("m", Some(100.0), "ns/iter")] };
        let current =
            BenchReport { bench: "b".into(), results: vec![record_with("m", Some(450.0), "ns/iter")] };
        let trends = diff_reports(&baseline, &current, 3.0);
        let md = render_trend_markdown("bench_x", &trends, 3.0);
        assert!(md.contains("`bench_x`"));
        assert!(md.contains("| `m` |"));
        assert!(md.contains("REGRESSED"));
        assert!(md.contains("4.50× worse"));
    }

    #[test]
    fn report_records_and_write_results_json_emits_them() {
        report("json_test/timing", 1234.5);
        report_ratio("json_test/speedup", 2.5);
        let path = std::env::temp_dir().join("xrlflow_bench_json_test/results.json");
        write_results_json("bench_lib_test", &path).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"bench\": \"bench_lib_test\""));
        assert!(
            written.contains("{\"name\": \"json_test/timing\", \"value\": 1234.5, \"unit\": \"ns/iter\"}")
        );
        assert!(written.contains("{\"name\": \"json_test/speedup\", \"value\": 2.5, \"unit\": \"x\"}"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
