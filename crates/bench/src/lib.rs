//! # xrlflow-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each table/figure has a dedicated binary (`table1`, `table2`,
//! `table3`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `table4`) that prints
//! the same rows/series the paper reports; Criterion micro-benchmarks cover
//! the substrates (rewrite engine, cost model, GNN, e-graph, optimisers).
//!
//! All binaries honour these environment variables:
//!
//! * `XRLFLOW_SCALE` — `bench` (default) or `paper`, selecting the model-zoo
//!   depth preset;
//! * `XRLFLOW_EPISODES` — RL training episodes per model for the figures that
//!   train an agent (default: a CPU-friendly handful);
//! * `XRLFLOW_ITERS` — timed iterations per micro-benchmark (the CI
//!   `bench-smoke` job sets a tiny value);
//! * `XRLFLOW_BENCH_JSON` — when set, a path the binary writes its recorded
//!   results to as JSON (uploaded as a CI artifact to track the perf
//!   trajectory per PR).

use std::collections::HashMap;
use std::hint::black_box;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use xrlflow_graph::models::ModelScale;

/// One recorded measurement: a metric name, its value and the value's unit
/// (`"ns/iter"` for timings, `"x"` for speedup ratios).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Metric name, e.g. `"policy_evaluation/batched/BERT"`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value.
    pub unit: &'static str,
}

/// Every result reported so far in this process, in report order. Collected
/// so benchmark binaries can emit a machine-readable JSON artifact (the CI
/// `bench-smoke` job uploads it to track the perf trajectory per PR).
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(name: &str, value: f64, unit: &'static str) {
    RESULTS.lock().expect("bench result lock").push(BenchRecord { name: name.to_string(), value, unit });
}

/// Times `f` over `iters` iterations after `warmup` warmup runs and returns
/// the mean wall-clock nanoseconds per iteration. The dependency-free
/// replacement for the Criterion harness (the build environment has no
/// crates.io access); benches are plain `harness = false` binaries built on
/// this.
pub fn time_ns<R>(warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "iters must be positive");
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Prints one benchmark result line in the harness's standard format and
/// records it for [`write_results_json`].
pub fn report(name: &str, ns_per_iter: f64) {
    if ns_per_iter >= 1e6 {
        println!("{name:<44} {:>12.3} ms/iter", ns_per_iter / 1e6);
    } else if ns_per_iter >= 1e3 {
        println!("{name:<44} {:>12.3} µs/iter", ns_per_iter / 1e3);
    } else {
        println!("{name:<44} {:>12.1} ns/iter", ns_per_iter);
    }
    record(name, ns_per_iter, "ns/iter");
}

/// Prints a speedup ratio (e.g. serial over batched time) and records it for
/// [`write_results_json`].
pub fn report_ratio(name: &str, ratio: f64) {
    println!("{name:<44} {ratio:>11.2}x");
    record(name, ratio, "x");
}

/// Prints a throughput value in events per second (e.g. rollout
/// episodes/sec) and records it for [`write_results_json`] with unit
/// `"eps/s"`.
pub fn report_rate(name: &str, per_sec: f64) {
    println!("{name:<44} {per_sec:>11.2} eps/s");
    record(name, per_sec, "eps/s");
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes every result reported so far as a JSON document:
/// `{"bench": <name>, "results": [{"name", "value", "unit"}, ...]}`.
/// Hand-rolled (the container has no serde) but escaped well enough for the
/// metric names the harness produces.
///
/// # Errors
///
/// Returns any I/O error from creating parent directories or writing.
pub fn write_results_json(bench: &str, path: &Path) -> std::io::Result<()> {
    let results = RESULTS.lock().expect("bench result lock");
    let mut out = String::new();
    out.push_str(&format!("{{\"bench\": \"{}\", \"results\": [", json_escape(bench)));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}",
            json_escape(&r.name),
            if r.value.is_finite() { r.value.to_string() } else { "null".to_string() },
            json_escape(r.unit)
        ));
    }
    out.push_str("]}\n");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, out)
}

/// Called at the end of every benchmark binary: when `XRLFLOW_BENCH_JSON` is
/// set, writes the recorded results there (the CI `bench-smoke` job uploads
/// the file as a workflow artifact).
pub fn finish(bench: &str) {
    if let Ok(path) = std::env::var("XRLFLOW_BENCH_JSON") {
        match write_results_json(bench, Path::new(&path)) {
            Ok(()) => println!("\nwrote benchmark JSON to {path}"),
            Err(e) => eprintln!("failed to write benchmark JSON to {path}: {e}"),
        }
    }
}

/// Reads the model-scale preset from `XRLFLOW_SCALE` (default: bench).
pub fn scale_from_env() -> ModelScale {
    match std::env::var("XRLFLOW_SCALE").as_deref() {
        Ok("paper") | Ok("Paper") | Ok("PAPER") => ModelScale::Paper,
        _ => ModelScale::Bench,
    }
}

/// Reads a `usize` configuration knob from the environment, falling back to
/// `default` when the variable is unset or unparsable.
pub fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads the per-model training-episode budget from `XRLFLOW_EPISODES`.
pub fn episodes_from_env(default: usize) -> usize {
    env_usize("XRLFLOW_EPISODES", default)
}

/// Reads the timed-iteration budget for micro-benchmarks from
/// `XRLFLOW_ITERS` (the CI smoke job sets a tiny value).
pub fn iters_from_env(default: usize) -> usize {
    env_usize("XRLFLOW_ITERS", default).max(1)
}

/// Formats a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a rule-application heatmap (rule name x workload counts) as text,
/// in the style of Figure 5.
pub fn render_heatmap(counts: &HashMap<String, HashMap<&'static str, usize>>) -> String {
    // Collect the union of rules applied at least once, as the paper does.
    let mut rules: Vec<&'static str> = counts
        .values()
        .flat_map(|per_rule| per_rule.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    rules.sort_unstable();
    let headers: Vec<&str> = std::iter::once("DNN").chain(rules.iter().copied()).collect();
    let mut workloads: Vec<&String> = counts.keys().collect();
    workloads.sort();
    let rows: Vec<Vec<String>> = workloads
        .into_iter()
        .map(|w| {
            let per_rule = &counts[w];
            std::iter::once(w.clone())
                .chain(
                    rules
                        .iter()
                        .map(|r| per_rule.get(r).map(|c| c.to_string()).unwrap_or_else(|| "-".to_string())),
                )
                .collect()
        })
        .collect();
    render_table(&headers, &rows)
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["DNN", "Speedup"],
            &[vec!["BERT".into(), "8.3%".into()], vec!["InceptionV3".into(), "4.1%".into()]],
        );
        assert!(t.contains("BERT"));
        assert!(t.contains("InceptionV3"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn mean_std_of_constant_is_zero_std() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn heatmap_renders_union_of_rules() {
        let mut counts = HashMap::new();
        let mut bert = HashMap::new();
        bert.insert("fuse-matmul-bias", 3usize);
        counts.insert("BERT".to_string(), bert);
        let mut incep = HashMap::new();
        incep.insert("fuse-conv-relu", 5usize);
        counts.insert("InceptionV3".to_string(), incep);
        let rendered = render_heatmap(&counts);
        assert!(rendered.contains("fuse-matmul-bias"));
        assert!(rendered.contains("fuse-conv-relu"));
        assert!(rendered.contains("-"));
    }

    #[test]
    fn env_defaults() {
        assert_eq!(env_usize("XRLFLOW_NO_SUCH_VAR", 17), 17);
        // iters_from_env reads ambient XRLFLOW_ITERS (which a developer
        // reproducing the CI smoke environment may have set); it must always
        // return a usable iteration count.
        assert!(iters_from_env(20) >= 1);
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("plain/name_1"), "plain/name_1");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn report_records_and_write_results_json_emits_them() {
        report("json_test/timing", 1234.5);
        report_ratio("json_test/speedup", 2.5);
        let path = std::env::temp_dir().join("xrlflow_bench_json_test/results.json");
        write_results_json("bench_lib_test", &path).unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"bench\": \"bench_lib_test\""));
        assert!(
            written.contains("{\"name\": \"json_test/timing\", \"value\": 1234.5, \"unit\": \"ns/iter\"}")
        );
        assert!(written.contains("{\"name\": \"json_test/speedup\", \"value\": 2.5, \"unit\": \"x\"}"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
