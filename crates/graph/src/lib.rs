//! # xrlflow-graph
//!
//! The tensor dataflow-graph intermediate representation used by the
//! X-RLflow reproduction: operator vocabulary, tensor shapes, shape
//! inference, the [`Graph`] DAG itself and a model zoo with builders for
//! every DNN in the paper's evaluation.
//!
//! Graphs cross process boundaries in the versioned JSON interchange
//! format of the [`json`] module, specified field-by-field in
//! [`docs/FORMATS.md`](https://github.com/xrlflow/xrlflow/blob/main/docs/FORMATS.md)
//! alongside the repository's other wire formats.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//!
//! let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
//! assert!(bert.validate().is_ok());
//! println!("BERT has {} operator nodes", bert.num_nodes());
//! ```

#![warn(missing_docs)]

mod graph;
mod infer;
pub mod json;
pub mod models;
mod op;
mod patch;
mod shape;

pub use graph::{Graph, GraphError, Node, NodeId, TensorRef};
pub use infer::infer_output_shapes;
pub use json::JsonValue;
pub use op::{FusedActivation, OpAttributes, OpKind, Padding};
pub use patch::{GraphPatch, PatchBuilder, PatchNode, PatchNodeId, PatchRef};
pub use shape::TensorShape;
