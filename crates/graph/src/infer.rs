//! Shape inference for every operator kind.
//!
//! Every node added to a [`crate::Graph`] runs through
//! [`infer_output_shapes`]; rewrite rules rely on this to prove that a
//! substituted subgraph still produces tensors of the same shape.

use crate::op::{OpAttributes, OpKind, Padding};
use crate::shape::TensorShape;
use crate::GraphError;

fn conv_spatial(in_size: usize, kernel: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Same => in_size.div_ceil(stride),
        Padding::Valid => {
            if in_size < kernel {
                0
            } else {
                (in_size - kernel) / stride + 1
            }
        }
    }
}

/// Infers the output shapes of an operator given its attributes and the
/// shapes of its inputs.
///
/// # Errors
///
/// Returns [`GraphError::Shape`] when the inputs are rank- or
/// size-incompatible with the operator, and [`GraphError::Arity`] when the
/// operator receives the wrong number of inputs.
pub fn infer_output_shapes(
    op: OpKind,
    attrs: &OpAttributes,
    inputs: &[TensorShape],
) -> Result<Vec<TensorShape>, GraphError> {
    let arity = |min: usize, max: usize| -> Result<(), GraphError> {
        if inputs.len() < min || inputs.len() > max {
            Err(GraphError::Arity { op, expected_min: min, expected_max: max, got: inputs.len() })
        } else {
            Ok(())
        }
    };
    let shape_err = |msg: String| GraphError::Shape { op, message: msg };

    match op {
        OpKind::Input | OpKind::Weight | OpKind::Constant => Err(GraphError::Shape {
            op,
            message: "source operators must be created with an explicit shape".into(),
        }),

        OpKind::MatMul => {
            arity(2, 2)?;
            let (a, b) = (&inputs[0], &inputs[1]);
            if a.rank() < 2 || b.rank() < 2 {
                return Err(shape_err(format!("MatMul requires rank >= 2, got {a} x {b}")));
            }
            let (m, k) = (a.dim(a.rank() - 2), a.dim(a.rank() - 1));
            let (k2, n) = (b.dim(b.rank() - 2), b.dim(b.rank() - 1));
            if k != k2 {
                return Err(shape_err(format!("MatMul inner dims differ: {a} x {b}")));
            }
            // Leading (batch) dims come from the higher-rank operand.
            let lead = if a.rank() >= b.rank() {
                a.dims()[..a.rank() - 2].to_vec()
            } else {
                b.dims()[..b.rank() - 2].to_vec()
            };
            let mut out = lead;
            out.push(m);
            out.push(n);
            Ok(vec![TensorShape::new(out)])
        }

        OpKind::BatchMatMul => {
            arity(2, 2)?;
            let (a, b) = (&inputs[0], &inputs[1]);
            if a.rank() != b.rank() || a.rank() < 3 {
                return Err(shape_err(format!("BatchMatMul requires equal rank >= 3, got {a} x {b}")));
            }
            let r = a.rank();
            if a.dims()[..r - 2] != b.dims()[..r - 2] {
                return Err(shape_err(format!("BatchMatMul batch dims differ: {a} x {b}")));
            }
            if a.dim(r - 1) != b.dim(r - 2) {
                return Err(shape_err(format!("BatchMatMul inner dims differ: {a} x {b}")));
            }
            let mut out = a.dims()[..r - 2].to_vec();
            out.push(a.dim(r - 2));
            out.push(b.dim(r - 1));
            Ok(vec![TensorShape::new(out)])
        }

        OpKind::Conv2d | OpKind::DepthwiseConv2d => {
            arity(2, 3)?;
            let (x, w) = (&inputs[0], &inputs[1]);
            if x.rank() != 4 || w.rank() != 4 {
                return Err(shape_err(format!("Conv2d requires NCHW input and OIHW weight, got {x}, {w}")));
            }
            let (n, c, h, wd) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            let (cout, cin_per_group, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
            let groups = attrs.groups.max(1);
            let expected_cin = if op == OpKind::DepthwiseConv2d { 1 } else { c / groups };
            if c % groups != 0 || cin_per_group != expected_cin {
                return Err(shape_err(format!(
                    "Conv2d channel mismatch: input {c} channels, weight {cin_per_group} per group, {groups} groups"
                )));
            }
            let kernel = attrs.kernel.unwrap_or([kh, kw]);
            if kernel != [kh, kw] {
                return Err(shape_err(format!(
                    "Conv2d kernel attribute {:?} disagrees with weight shape {w}",
                    kernel
                )));
            }
            let stride = attrs.stride.unwrap_or([1, 1]);
            if stride[0] == 0 || stride[1] == 0 {
                return Err(shape_err(format!("Conv2d stride must be positive, got {:?}", stride)));
            }
            let oh = conv_spatial(h, kh, stride[0], attrs.padding);
            let ow = conv_spatial(wd, kw, stride[1], attrs.padding);
            if oh == 0 || ow == 0 {
                return Err(shape_err(format!("Conv2d output collapsed to zero for input {x}")));
            }
            Ok(vec![TensorShape::new(vec![n, cout, oh, ow])])
        }

        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Pow => {
            arity(2, 2)?;
            inputs[0].broadcast(&inputs[1]).map(|s| vec![s]).ok_or_else(|| {
                shape_err(format!("operands not broadcastable: {} vs {}", inputs[0], inputs[1]))
            })
        }

        OpKind::Sqrt
        | OpKind::Relu
        | OpKind::LeakyRelu
        | OpKind::Sigmoid
        | OpKind::Tanh
        | OpKind::Gelu
        | OpKind::Erf
        | OpKind::Softmax
        | OpKind::Identity
        | OpKind::Dropout
        | OpKind::Cast => {
            arity(1, 1)?;
            Ok(vec![inputs[0].clone()])
        }

        OpKind::BatchNorm => {
            arity(1, 5)?;
            Ok(vec![inputs[0].clone()])
        }

        OpKind::LayerNorm => {
            arity(1, 3)?;
            Ok(vec![inputs[0].clone()])
        }

        OpKind::MaxPool2d | OpKind::AvgPool2d => {
            arity(1, 1)?;
            let x = &inputs[0];
            if x.rank() != 4 {
                return Err(shape_err(format!("pooling requires NCHW input, got {x}")));
            }
            let kernel = attrs.kernel.ok_or_else(|| shape_err("pooling requires a kernel".into()))?;
            if kernel[0] == 0 || kernel[1] == 0 {
                return Err(shape_err(format!("pooling kernel must be positive, got {:?}", kernel)));
            }
            let stride = attrs.stride.unwrap_or(kernel);
            if stride[0] == 0 || stride[1] == 0 {
                return Err(shape_err(format!("pooling stride must be positive, got {:?}", stride)));
            }
            let oh = conv_spatial(x.dim(2), kernel[0], stride[0], attrs.padding);
            let ow = conv_spatial(x.dim(3), kernel[1], stride[1], attrs.padding);
            if oh == 0 || ow == 0 {
                return Err(shape_err(format!("pooling output collapsed to zero for input {x}")));
            }
            Ok(vec![TensorShape::new(vec![x.dim(0), x.dim(1), oh, ow])])
        }

        OpKind::GlobalAvgPool => {
            arity(1, 1)?;
            let x = &inputs[0];
            if x.rank() != 4 {
                return Err(shape_err(format!("GlobalAvgPool requires NCHW input, got {x}")));
            }
            Ok(vec![TensorShape::new(vec![x.dim(0), x.dim(1), 1, 1])])
        }

        OpKind::ReduceSum | OpKind::ReduceMean => {
            arity(1, 1)?;
            let x = &inputs[0];
            let axis = attrs.axis.unwrap_or(x.rank().saturating_sub(1));
            if axis >= x.rank() {
                return Err(shape_err(format!("reduction axis {axis} out of range for {x}")));
            }
            let mut dims = x.dims().to_vec();
            dims[axis] = 1;
            Ok(vec![TensorShape::new(dims)])
        }

        OpKind::Concat => {
            arity(2, usize::MAX)?;
            let axis = attrs.axis.ok_or_else(|| shape_err("Concat requires an axis".into()))?;
            let first = &inputs[0];
            if axis >= first.rank() {
                return Err(shape_err(format!("concat axis {axis} out of range for {first}")));
            }
            let mut total = 0usize;
            for s in inputs {
                if s.rank() != first.rank() {
                    return Err(shape_err(format!("concat rank mismatch: {first} vs {s}")));
                }
                for d in 0..first.rank() {
                    if d != axis && s.dim(d) != first.dim(d) {
                        return Err(shape_err(format!("concat dim {d} mismatch: {first} vs {s}")));
                    }
                }
                total = total
                    .checked_add(s.dim(axis))
                    .ok_or_else(|| shape_err(format!("concat size along axis {axis} overflows usize")))?;
            }
            let mut dims = first.dims().to_vec();
            dims[axis] = total;
            Ok(vec![TensorShape::new(dims)])
        }

        OpKind::Split => {
            arity(1, 1)?;
            let x = &inputs[0];
            let axis = attrs.axis.ok_or_else(|| shape_err("Split requires an axis".into()))?;
            let n = attrs.num_splits;
            if n == 0 {
                return Err(shape_err("Split requires num_splits > 0".into()));
            }
            if axis >= x.rank() || !x.dim(axis).is_multiple_of(n) {
                return Err(shape_err(format!("cannot split {x} into {n} parts along axis {axis}")));
            }
            let mut dims = x.dims().to_vec();
            dims[axis] /= n;
            Ok(vec![TensorShape::new(dims); n])
        }

        OpKind::Slice => {
            arity(1, 1)?;
            let target = attrs
                .target_shape
                .as_ref()
                .ok_or_else(|| shape_err("Slice requires a target shape".into()))?;
            let x = &inputs[0];
            if target.len() != x.rank() || target.iter().zip(x.dims()).any(|(&t, &d)| t > d || t == 0) {
                return Err(shape_err(format!("invalid slice {:?} of {x}", target)));
            }
            Ok(vec![TensorShape::new(target.clone())])
        }

        OpKind::Pad => {
            arity(1, 1)?;
            let target =
                attrs.target_shape.as_ref().ok_or_else(|| shape_err("Pad requires a target shape".into()))?;
            let x = &inputs[0];
            if target.len() != x.rank() || target.iter().zip(x.dims()).any(|(&t, &d)| t < d) {
                return Err(shape_err(format!("invalid pad {:?} of {x}", target)));
            }
            Ok(vec![TensorShape::new(target.clone())])
        }

        OpKind::Transpose => {
            arity(1, 1)?;
            let x = &inputs[0];
            let perm = match &attrs.perm {
                Some(p) => p.clone(),
                None => (0..x.rank()).rev().collect(),
            };
            match x.try_permute(&perm) {
                Some(out) => Ok(vec![out]),
                None => {
                    Err(shape_err(format!("transpose perm {:?} is not a permutation of {x}'s axes", perm)))
                }
            }
        }

        OpKind::Reshape => {
            arity(1, 1)?;
            let target = attrs
                .target_shape
                .as_ref()
                .ok_or_else(|| shape_err("Reshape requires a target shape".into()))?;
            let numel = target
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .ok_or_else(|| shape_err(format!("reshape target {:?} overflows usize", target)))?;
            let in_numel = inputs[0]
                .checked_numel()
                .ok_or_else(|| shape_err(format!("element count of {} overflows usize", inputs[0])))?;
            if numel != in_numel {
                return Err(shape_err(format!(
                    "reshape of {} to {:?} changes element count",
                    inputs[0], target
                )));
            }
            Ok(vec![TensorShape::new(target.clone())])
        }

        OpKind::Flatten => {
            arity(1, 1)?;
            let x = &inputs[0];
            if x.rank() == 0 {
                return Ok(vec![TensorShape::new(vec![1, 1])]);
            }
            let rest: usize = x.dims()[1..].iter().product();
            Ok(vec![TensorShape::new(vec![x.dim(0), rest.max(1)])])
        }

        OpKind::Squeeze => {
            arity(1, 1)?;
            let x = &inputs[0];
            let dims: Vec<usize> = match attrs.axis {
                Some(a) => {
                    if a >= x.rank() || x.dim(a) != 1 {
                        return Err(shape_err(format!("cannot squeeze axis {a} of {x}")));
                    }
                    x.dims().iter().enumerate().filter(|&(i, _)| i != a).map(|(_, &d)| d).collect()
                }
                None => x.dims().iter().copied().filter(|&d| d != 1).collect(),
            };
            Ok(vec![TensorShape::new(dims)])
        }

        OpKind::Unsqueeze => {
            arity(1, 1)?;
            let x = &inputs[0];
            let axis = attrs.axis.unwrap_or(0);
            if axis > x.rank() {
                return Err(shape_err(format!("cannot unsqueeze axis {axis} of {x}")));
            }
            let mut dims = x.dims().to_vec();
            dims.insert(axis, 1);
            Ok(vec![TensorShape::new(dims)])
        }

        OpKind::Gather | OpKind::Embedding => {
            arity(2, 2)?;
            let (table, indices) = (&inputs[0], &inputs[1]);
            if table.rank() != 2 {
                return Err(shape_err(format!("Gather table must be rank 2, got {table}")));
            }
            let mut dims = indices.dims().to_vec();
            dims.push(table.dim(1));
            Ok(vec![TensorShape::new(dims)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(dims: &[usize]) -> TensorShape {
        TensorShape::new(dims.to_vec())
    }

    #[test]
    fn matmul_shapes() {
        let out = infer_output_shapes(OpKind::MatMul, &OpAttributes::default(), &[s(&[8, 64]), s(&[64, 32])])
            .unwrap();
        assert_eq!(out[0].dims(), &[8, 32]);
        // Batched lhs.
        let out =
            infer_output_shapes(OpKind::MatMul, &OpAttributes::default(), &[s(&[4, 8, 64]), s(&[64, 32])])
                .unwrap();
        assert_eq!(out[0].dims(), &[4, 8, 32]);
        assert!(infer_output_shapes(OpKind::MatMul, &OpAttributes::default(), &[s(&[8, 64]), s(&[63, 32])])
            .is_err());
    }

    #[test]
    fn batch_matmul_shapes() {
        let out = infer_output_shapes(
            OpKind::BatchMatMul,
            &OpAttributes::default(),
            &[s(&[12, 128, 64]), s(&[12, 64, 128])],
        )
        .unwrap();
        assert_eq!(out[0].dims(), &[12, 128, 128]);
        assert!(infer_output_shapes(
            OpKind::BatchMatMul,
            &OpAttributes::default(),
            &[s(&[12, 128, 64]), s(&[6, 64, 128])],
        )
        .is_err());
    }

    #[test]
    fn conv2d_same_and_valid() {
        let attrs = OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1);
        let out =
            infer_output_shapes(OpKind::Conv2d, &attrs, &[s(&[1, 3, 224, 224]), s(&[64, 3, 3, 3])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 64, 224, 224]);

        let attrs = OpAttributes::conv2d([3, 3], [2, 2], Padding::Valid, 1);
        let out =
            infer_output_shapes(OpKind::Conv2d, &attrs, &[s(&[1, 3, 224, 224]), s(&[64, 3, 3, 3])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 64, 111, 111]);
    }

    #[test]
    fn grouped_conv_channels() {
        let attrs = OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 32);
        let out =
            infer_output_shapes(OpKind::Conv2d, &attrs, &[s(&[1, 128, 56, 56]), s(&[128, 4, 3, 3])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 128, 56, 56]);
        // Wrong per-group channels must fail.
        assert!(
            infer_output_shapes(OpKind::Conv2d, &attrs, &[s(&[1, 128, 56, 56]), s(&[128, 8, 3, 3])]).is_err()
        );
    }

    #[test]
    fn elementwise_broadcast() {
        let out = infer_output_shapes(
            OpKind::Add,
            &OpAttributes::default(),
            &[s(&[1, 64, 56, 56]), s(&[64, 1, 1])],
        )
        .unwrap();
        assert_eq!(out[0].dims(), &[1, 64, 56, 56]);
        assert!(
            infer_output_shapes(OpKind::Add, &OpAttributes::default(), &[s(&[3, 4]), s(&[5, 4])]).is_err()
        );
    }

    #[test]
    fn concat_and_split_round_trip() {
        let cat = infer_output_shapes(
            OpKind::Concat,
            &OpAttributes::with_axis(1),
            &[s(&[1, 64, 28, 28]), s(&[1, 96, 28, 28])],
        )
        .unwrap();
        assert_eq!(cat[0].dims(), &[1, 160, 28, 28]);

        let split =
            infer_output_shapes(OpKind::Split, &OpAttributes::split(1, 2), &[s(&[1, 160, 28, 28])]).unwrap();
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].dims(), &[1, 80, 28, 28]);

        assert!(
            infer_output_shapes(OpKind::Split, &OpAttributes::split(1, 3), &[s(&[1, 160, 28, 28])]).is_err()
        );
    }

    #[test]
    fn pooling_and_global_pool() {
        let attrs = OpAttributes::pool([2, 2], [2, 2], Padding::Valid);
        let out = infer_output_shapes(OpKind::MaxPool2d, &attrs, &[s(&[1, 64, 56, 56])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 64, 28, 28]);
        let out = infer_output_shapes(OpKind::GlobalAvgPool, &OpAttributes::default(), &[s(&[1, 64, 7, 7])])
            .unwrap();
        assert_eq!(out[0].dims(), &[1, 64, 1, 1]);
    }

    #[test]
    fn transpose_reshape_flatten() {
        let out =
            infer_output_shapes(OpKind::Transpose, &OpAttributes::transpose(vec![0, 2, 1]), &[s(&[2, 3, 4])])
                .unwrap();
        assert_eq!(out[0].dims(), &[2, 4, 3]);

        let out = infer_output_shapes(OpKind::Reshape, &OpAttributes::reshape(vec![6, 4]), &[s(&[2, 3, 4])])
            .unwrap();
        assert_eq!(out[0].dims(), &[6, 4]);
        assert!(infer_output_shapes(OpKind::Reshape, &OpAttributes::reshape(vec![5, 4]), &[s(&[2, 3, 4])])
            .is_err());

        let out = infer_output_shapes(OpKind::Flatten, &OpAttributes::default(), &[s(&[2, 3, 4])]).unwrap();
        assert_eq!(out[0].dims(), &[2, 12]);
    }

    #[test]
    fn squeeze_unsqueeze() {
        let out =
            infer_output_shapes(OpKind::Squeeze, &OpAttributes::with_axis(1), &[s(&[2, 1, 4])]).unwrap();
        assert_eq!(out[0].dims(), &[2, 4]);
        let out = infer_output_shapes(OpKind::Unsqueeze, &OpAttributes::with_axis(0), &[s(&[2, 4])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 2, 4]);
        assert!(infer_output_shapes(OpKind::Squeeze, &OpAttributes::with_axis(0), &[s(&[2, 4])]).is_err());
    }

    #[test]
    fn gather_embedding() {
        let out = infer_output_shapes(
            OpKind::Embedding,
            &OpAttributes::default(),
            &[s(&[30522, 768]), s(&[1, 128])],
        )
        .unwrap();
        assert_eq!(out[0].dims(), &[1, 128, 768]);
    }

    #[test]
    fn reduction_keeps_rank() {
        let out =
            infer_output_shapes(OpKind::ReduceMean, &OpAttributes::with_axis(2), &[s(&[1, 8, 128])]).unwrap();
        assert_eq!(out[0].dims(), &[1, 8, 1]);
    }

    #[test]
    fn arity_errors() {
        let err = infer_output_shapes(OpKind::MatMul, &OpAttributes::default(), &[s(&[2, 2])]);
        assert!(matches!(err, Err(GraphError::Arity { .. })));
    }

    #[test]
    fn source_ops_reject_inference() {
        assert!(infer_output_shapes(OpKind::Input, &OpAttributes::default(), &[]).is_err());
    }
}
