//! Tensor operator vocabulary.
//!
//! The paper's environment one-hot encodes "around 40 different tensor
//! operators" as node attributes. This module defines that operator set,
//! together with the per-node attributes (kernel sizes, strides, axes, ...)
//! that the rewrite engine and the cost model need.

/// Activation function fused into a compute operator (TASO-style operator
/// fusion keeps the operator kind and records the fused epilogue here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedActivation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit.
    Gelu,
}

impl FusedActivation {
    /// Lower-case name used by the JSON graph interchange.
    pub fn name(self) -> &'static str {
        match self {
            FusedActivation::Relu => "relu",
            FusedActivation::Sigmoid => "sigmoid",
            FusedActivation::Tanh => "tanh",
            FusedActivation::Gelu => "gelu",
        }
    }

    /// Parses a fused activation from its [`FusedActivation::name`] string.
    pub fn from_name(name: &str) -> Option<FusedActivation> {
        match name {
            "relu" => Some(FusedActivation::Relu),
            "sigmoid" => Some(FusedActivation::Sigmoid),
            "tanh" => Some(FusedActivation::Tanh),
            "gelu" => Some(FusedActivation::Gelu),
            _ => None,
        }
    }
}

/// Padding mode for convolution and pooling operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Padding {
    /// Output spatial size equals input size divided by stride (TF "SAME").
    #[default]
    Same,
    /// No implicit padding (TF "VALID").
    Valid,
}

impl Padding {
    /// Lower-case name used by the JSON graph interchange.
    pub fn name(self) -> &'static str {
        match self {
            Padding::Same => "same",
            Padding::Valid => "valid",
        }
    }

    /// Parses a padding mode from its [`Padding::name`] string.
    pub fn from_name(name: &str) -> Option<Padding> {
        match name {
            "same" => Some(Padding::Same),
            "valid" => Some(Padding::Valid),
            _ => None,
        }
    }
}

/// The operator kinds supported by the graph IR.
///
/// This mirrors the operator set TASO's generator enumerates (convolutions,
/// matrix multiplication, element-wise arithmetic, activations, tensor
/// layout operators) plus the transformer-era operators needed by BERT,
/// ViT, DALL-E and the Transformer-Transducer (layer norm, GELU, softmax,
/// batched matmul, embedding gather).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum OpKind {
    // Graph sources.
    Input,
    Weight,
    Constant,
    // Dense linear algebra.
    MatMul,
    BatchMatMul,
    Conv2d,
    DepthwiseConv2d,
    // Element-wise arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Sqrt,
    // Activations.
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Gelu,
    Erf,
    Softmax,
    // Normalisation.
    BatchNorm,
    LayerNorm,
    // Pooling.
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool,
    // Reductions.
    ReduceSum,
    ReduceMean,
    // Layout and structure.
    Concat,
    Split,
    Slice,
    Pad,
    Transpose,
    Reshape,
    Flatten,
    Squeeze,
    Unsqueeze,
    // Misc.
    Identity,
    Dropout,
    Cast,
    Gather,
    Embedding,
}

impl OpKind {
    /// All operator kinds, in a fixed order used for one-hot encoding.
    pub const ALL: &'static [OpKind] = &[
        OpKind::Input,
        OpKind::Weight,
        OpKind::Constant,
        OpKind::MatMul,
        OpKind::BatchMatMul,
        OpKind::Conv2d,
        OpKind::DepthwiseConv2d,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Pow,
        OpKind::Sqrt,
        OpKind::Relu,
        OpKind::LeakyRelu,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Gelu,
        OpKind::Erf,
        OpKind::Softmax,
        OpKind::BatchNorm,
        OpKind::LayerNorm,
        OpKind::MaxPool2d,
        OpKind::AvgPool2d,
        OpKind::GlobalAvgPool,
        OpKind::ReduceSum,
        OpKind::ReduceMean,
        OpKind::Concat,
        OpKind::Split,
        OpKind::Slice,
        OpKind::Pad,
        OpKind::Transpose,
        OpKind::Reshape,
        OpKind::Flatten,
        OpKind::Squeeze,
        OpKind::Unsqueeze,
        OpKind::Identity,
        OpKind::Dropout,
        OpKind::Cast,
        OpKind::Gather,
        OpKind::Embedding,
    ];

    /// Number of distinct operator kinds (the one-hot encoding width).
    pub fn count() -> usize {
        Self::ALL.len()
    }

    /// Index of this operator in [`OpKind::ALL`] (stable one-hot position).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("operator missing from OpKind::ALL")
    }

    /// Parses an operator kind from its [`OpKind::name`] string — the
    /// inverse used by the JSON graph interchange.
    pub fn from_name(name: &str) -> Option<OpKind> {
        Self::ALL.iter().copied().find(|op| op.name() == name)
    }

    /// Returns `true` for graph-source operators that carry no computation
    /// (inputs, weights and constants).
    pub fn is_source(self) -> bool {
        matches!(self, OpKind::Input | OpKind::Weight | OpKind::Constant)
    }

    /// Returns `true` for operators whose output does not depend on any
    /// runtime input and can therefore be pre-computed (constant folded)
    /// when all of their operands are weights/constants.
    pub fn is_foldable(self) -> bool {
        !matches!(self, OpKind::Input) && !self.is_source()
    }

    /// Returns `true` for element-wise operators (same output shape as the
    /// broadcast of their inputs, negligible arithmetic intensity).
    pub fn is_elementwise(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Pow
                | OpKind::Sqrt
                | OpKind::Relu
                | OpKind::LeakyRelu
                | OpKind::Sigmoid
                | OpKind::Tanh
                | OpKind::Gelu
                | OpKind::Erf
                | OpKind::Identity
                | OpKind::Dropout
                | OpKind::Cast
        )
    }

    /// Returns `true` for compute-dense operators (convolutions and matrix
    /// multiplications) that dominate inference latency.
    pub fn is_compute_intensive(self) -> bool {
        matches!(self, OpKind::MatMul | OpKind::BatchMatMul | OpKind::Conv2d | OpKind::DepthwiseConv2d)
    }

    /// Returns `true` for pure layout operators that move or reinterpret
    /// data without arithmetic.
    pub fn is_layout(self) -> bool {
        matches!(
            self,
            OpKind::Concat
                | OpKind::Split
                | OpKind::Slice
                | OpKind::Pad
                | OpKind::Transpose
                | OpKind::Reshape
                | OpKind::Flatten
                | OpKind::Squeeze
                | OpKind::Unsqueeze
        )
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Input => "Input",
            OpKind::Weight => "Weight",
            OpKind::Constant => "Constant",
            OpKind::MatMul => "MatMul",
            OpKind::BatchMatMul => "BatchMatMul",
            OpKind::Conv2d => "Conv2d",
            OpKind::DepthwiseConv2d => "DepthwiseConv2d",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Pow => "Pow",
            OpKind::Sqrt => "Sqrt",
            OpKind::Relu => "Relu",
            OpKind::LeakyRelu => "LeakyRelu",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Tanh => "Tanh",
            OpKind::Gelu => "Gelu",
            OpKind::Erf => "Erf",
            OpKind::Softmax => "Softmax",
            OpKind::BatchNorm => "BatchNorm",
            OpKind::LayerNorm => "LayerNorm",
            OpKind::MaxPool2d => "MaxPool2d",
            OpKind::AvgPool2d => "AvgPool2d",
            OpKind::GlobalAvgPool => "GlobalAvgPool",
            OpKind::ReduceSum => "ReduceSum",
            OpKind::ReduceMean => "ReduceMean",
            OpKind::Concat => "Concat",
            OpKind::Split => "Split",
            OpKind::Slice => "Slice",
            OpKind::Pad => "Pad",
            OpKind::Transpose => "Transpose",
            OpKind::Reshape => "Reshape",
            OpKind::Flatten => "Flatten",
            OpKind::Squeeze => "Squeeze",
            OpKind::Unsqueeze => "Unsqueeze",
            OpKind::Identity => "Identity",
            OpKind::Dropout => "Dropout",
            OpKind::Cast => "Cast",
            OpKind::Gather => "Gather",
            OpKind::Embedding => "Embedding",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-node operator attributes.
///
/// Only the fields relevant to a node's [`OpKind`] are meaningful; the rest
/// keep their defaults. The struct is deliberately flat (rather than an enum
/// per operator) so the rewrite pattern matcher can compare attributes
/// field-by-field.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpAttributes {
    /// Convolution / pooling kernel size `[kh, kw]`.
    pub kernel: Option<[usize; 2]>,
    /// Convolution / pooling stride `[sh, sw]`.
    pub stride: Option<[usize; 2]>,
    /// Padding mode.
    pub padding: Padding,
    /// Number of convolution groups (grouped / ResNeXt-style convolutions).
    pub groups: usize,
    /// Axis for concat / split / softmax / reduction operators.
    pub axis: Option<usize>,
    /// Number of outputs for a `Split` node.
    pub num_splits: usize,
    /// Permutation for `Transpose`.
    pub perm: Option<Vec<usize>>,
    /// Target shape for `Reshape`.
    pub target_shape: Option<Vec<usize>>,
    /// Epsilon for normalisation operators.
    pub epsilon: f32,
    /// Activation fused into this operator's epilogue.
    pub fused_activation: Option<FusedActivation>,
    /// `true` when the rewrite engine has already marked this node as
    /// pre-computable (all transitive inputs are weights/constants).
    pub folded: bool,
}

/// Attributes participate in the graph's structural fingerprints
/// ([`crate::Graph::canonical_hash`], `GraphPatch::structural_hash`), which
/// run in the candidate-generation hot path — so hashing must not allocate.
/// `epsilon` is hashed by bit pattern, consistent with `PartialEq` for the
/// non-NaN constants it holds.
impl std::hash::Hash for OpAttributes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let Self {
            kernel,
            stride,
            padding,
            groups,
            axis,
            num_splits,
            perm,
            target_shape,
            epsilon,
            fused_activation,
            folded,
        } = self;
        kernel.hash(state);
        stride.hash(state);
        padding.hash(state);
        groups.hash(state);
        axis.hash(state);
        num_splits.hash(state);
        perm.hash(state);
        target_shape.hash(state);
        epsilon.to_bits().hash(state);
        fused_activation.hash(state);
        folded.hash(state);
    }
}

impl OpAttributes {
    /// Attributes for a 2-D convolution.
    pub fn conv2d(kernel: [usize; 2], stride: [usize; 2], padding: Padding, groups: usize) -> Self {
        Self { kernel: Some(kernel), stride: Some(stride), padding, groups, ..Default::default() }
    }

    /// Attributes for a pooling operator.
    pub fn pool(kernel: [usize; 2], stride: [usize; 2], padding: Padding) -> Self {
        Self { kernel: Some(kernel), stride: Some(stride), padding, ..Default::default() }
    }

    /// Attributes carrying only an axis (concat, softmax, reductions).
    pub fn with_axis(axis: usize) -> Self {
        Self { axis: Some(axis), ..Default::default() }
    }

    /// Attributes for a `Split` node producing `num_splits` outputs along `axis`.
    pub fn split(axis: usize, num_splits: usize) -> Self {
        Self { axis: Some(axis), num_splits, ..Default::default() }
    }

    /// Attributes for a `Reshape` node.
    pub fn reshape(target: Vec<usize>) -> Self {
        Self { target_shape: Some(target), ..Default::default() }
    }

    /// Attributes for a `Transpose` node.
    pub fn transpose(perm: Vec<usize>) -> Self {
        Self { perm: Some(perm), ..Default::default() }
    }

    /// Returns a copy with the given fused activation.
    pub fn with_fused_activation(mut self, act: FusedActivation) -> Self {
        self.fused_activation = Some(act);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_is_about_forty() {
        // The paper states "around 40 different tensor operators".
        let n = OpKind::count();
        assert!((38..=45).contains(&n), "expected ~40 operators, got {n}");
    }

    #[test]
    fn all_indices_are_unique_and_stable() {
        for (i, &op) in OpKind::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn categories_are_disjoint_for_compute_and_layout() {
        for &op in OpKind::ALL {
            assert!(
                !(op.is_compute_intensive() && op.is_layout()),
                "{op} cannot be both compute-intensive and layout"
            );
        }
    }

    #[test]
    fn sources_are_not_elementwise() {
        assert!(OpKind::Input.is_source());
        assert!(OpKind::Weight.is_source());
        assert!(!OpKind::Input.is_elementwise());
        assert!(!OpKind::Input.is_foldable());
        assert!(OpKind::MatMul.is_foldable());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(OpKind::Conv2d.to_string(), "Conv2d");
        assert_eq!(format!("{}", OpKind::BatchMatMul), "BatchMatMul");
    }

    #[test]
    fn attribute_constructors() {
        let a = OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 32);
        assert_eq!(a.kernel, Some([3, 3]));
        assert_eq!(a.groups, 32);
        let p = OpAttributes::pool([2, 2], [2, 2], Padding::Valid);
        assert_eq!(p.padding, Padding::Valid);
        let s = OpAttributes::split(1, 2);
        assert_eq!(s.num_splits, 2);
        let f = OpAttributes::default().with_fused_activation(FusedActivation::Relu);
        assert_eq!(f.fused_activation, Some(FusedActivation::Relu));
    }
}
